"""Trace Analyzer (Figure 1, left-hand loop).

"Execution traces are analyzed to identify candidate portions of an
application whose performance could be improved through
reconfigurability."  The analyzer consumes a :class:`MemoryTrace`
captured on the FPX (via the D-cache controller's hook) and produces an
:class:`AnalysisReport` with:

* the working-set size and the knee of the offline miss-rate curve →
  the recommended data-cache size (the paper's own example dimension);
* the dominant access stride → a prefetch-unit recommendation ("an
  alternative memory structure (such as a prefetch unit)");
* write-intensity → a note about the SDRAM adapter's RMW write penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import (
    MissCurvePoint,
    observed_miss_rate,
    simulate_miss_curve,
    stride_profile,
    working_set_bytes,
)
from repro.analysis.trace import MemoryTrace
from repro.core.config import ArchitectureConfig

DEFAULT_CANDIDATE_SIZES = [1024, 2048, 4096, 8192, 16384, 32768]


@dataclass(frozen=True)
class Recommendation:
    """One tuning suggestion with its expected effect."""

    dimension: str      # e.g. 'dcache_size', 'prefetch', 'write_path'
    value: object
    reason: str


@dataclass
class AnalysisReport:
    references: int
    working_set: int
    observed_miss_rate: float
    miss_curve: list[MissCurvePoint]
    dominant_strides: list[tuple[int, int]]
    write_fraction: float
    recommendations: list[Recommendation] = field(default_factory=list)

    def recommended_dcache_size(self) -> int | None:
        for rec in self.recommendations:
            if rec.dimension == "dcache_size":
                return int(rec.value)
        return None

    def summary_lines(self) -> list[str]:
        lines = [
            f"references      : {self.references}",
            f"working set     : {self.working_set} bytes",
            f"observed misses : {self.observed_miss_rate:.2%}",
            f"write fraction  : {self.write_fraction:.2%}",
            "miss-rate curve :",
        ]
        for point in self.miss_curve:
            bar = "#" * int(point.miss_rate * 40)
            lines.append(f"  {point.cache_bytes // 1024:>3} KB : "
                         f"{point.miss_rate:7.2%} {bar}")
        for rec in self.recommendations:
            lines.append(f"recommend {rec.dimension} = {rec.value} "
                         f"({rec.reason})")
        return lines


class TraceAnalyzer:
    """Turns traces into configuration advice."""

    def __init__(self, candidate_sizes: list[int] | None = None,
                 miss_rate_target: float = 0.02,
                 stride_threshold: float = 0.5):
        self.candidate_sizes = candidate_sizes or list(DEFAULT_CANDIDATE_SIZES)
        self.miss_rate_target = miss_rate_target
        self.stride_threshold = stride_threshold

    def analyze(self, trace: MemoryTrace,
                line_size: int = 32) -> AnalysisReport:
        curve = simulate_miss_curve(trace, self.candidate_sizes, line_size)
        # Stride detection over the *miss* stream when one exists: hits
        # (loop counters, stack slots) pollute the full reference stream,
        # but a hardware stride prefetcher trains on misses — and so does
        # the analyzer that decides whether to instantiate one.
        misses = trace.filter(~trace.hit)
        stride_basis = misses if len(misses) >= 16 else trace
        strides = stride_profile(stride_basis)
        write_fraction = float(trace.is_write.mean()) if len(trace) else 0.0
        report = AnalysisReport(
            references=len(trace),
            working_set=working_set_bytes(trace, line_size),
            observed_miss_rate=observed_miss_rate(trace),
            miss_curve=curve,
            dominant_strides=strides,
            write_fraction=write_fraction,
        )
        self._recommend(report, trace, stride_references=len(stride_basis))
        return report

    def _recommend(self, report: AnalysisReport, trace: MemoryTrace,
                   stride_references: int | None = None) -> None:
        # Cache size: smallest candidate under the target miss rate;
        # if none qualifies, the largest (diminishing-returns) point.
        chosen = None
        for point in report.miss_curve:
            if point.miss_rate <= self.miss_rate_target:
                chosen = point
                break
        if chosen is not None:
            report.recommendations.append(Recommendation(
                "dcache_size", chosen.cache_bytes,
                f"miss rate {chosen.miss_rate:.2%} <= target "
                f"{self.miss_rate_target:.0%}"))
        elif report.miss_curve:
            best = min(report.miss_curve, key=lambda p: p.miss_rate)
            report.recommendations.append(Recommendation(
                "dcache_size", best.cache_bytes,
                f"no candidate met the target; best is "
                f"{best.miss_rate:.2%}"))
        # Prefetch: a single stride dominating the (miss) stream.
        basis = stride_references if stride_references is not None \
            else report.references
        if report.dominant_strides and basis > 16:
            stride, count = report.dominant_strides[0]
            coverage = count / max(basis - 1, 1)
            if stride != 0 and coverage >= self.stride_threshold:
                report.recommendations.append(Recommendation(
                    "prefetch", stride,
                    f"stride {stride} covers {coverage:.0%} of the "
                    "miss stream"))
        # Write path: heavy write traffic suffers the SDRAM RMW penalty.
        if report.write_fraction > 0.5:
            report.recommendations.append(Recommendation(
                "write_path", "coalescing",
                f"{report.write_fraction:.0%} writes — each costs two "
                "SDRAM handshakes through the 32->64 bit adapter"))

    def pick_config(self, base: ArchitectureConfig,
                    report: AnalysisReport,
                    allow_prefetch: bool = True) -> ArchitectureConfig:
        """Apply the report's recommendations to *base*: cache size, and
        (when a dominant stride was found) the stride prefetch unit."""
        config = base
        size = report.recommended_dcache_size()
        if size is not None:
            config = config.with_dcache_size(size)
        if allow_prefetch and any(rec.dimension == "prefetch"
                                  for rec in report.recommendations):
            config = config.with_prefetch("stride")
        return config
