"""Sampled cycle-accurate simulation (SMARTS-style).

Whole-program cycle-accurate runs are the bottleneck of long-workload
sweeps.  This module trades a full-detail run for *interleaved phases*:

* **fast-forward** — the block-translating engine executes the bulk of
  the program (architecturally exact, no timing),
* **ramp** — a short cycle-accurate leg that re-warms the caches and
  pipeline after the handoff (the micro-architecture is not part of an
  :class:`~repro.cpu.archstate.ArchState`, so every window starts from
  the canonical flushed state and climbs back to steady state),
* **window** — a small cycle-accurate measured window contributing one
  CPI / stall / miss observation.

The program's first ``window_length`` steps — the cold start, whose
compulsory misses are *systematically* unlike steady state — are always
measured exactly as a **head** phase rather than estimated, so they
contribute bias-free cycles instead of skewing the window population.

A :class:`SamplingPlan` places ``n_windows`` windows over the remaining
tail in equal strides, each at an independent seeded random offset
(stratified systematic sampling); :class:`SampledRunner` executes
the plan via checkpoints captured on a translated pass, so every window
is resumable in isolation and the whole run is a pure function of
``(image, config, plan)`` — byte-identical serially, in parallel worker
processes, and across :class:`~repro.core.sweep.ResultCache` reruns.
Per-window observations are combined with CLT confidence intervals
(mean ± z·s/√n per metric) into a whole-program cycle estimate whose
claimed coverage is validated against ground-truth full-detail runs by
``tests/core/test_sampling_stats.py``.

Windows that hit IRQ/MMIO-dense code need no special casing: the ramp
and window legs are plain single-step accurate execution, and the
translated fast-forward legs already fall back to single-step dispatch
on MMIO touches and trap entries.
"""

from __future__ import annotations

import json
import math
import random
from collections import Counter
from dataclasses import dataclass, replace

from repro.core.config import ArchitectureConfig
from repro.core.sim import Simulator, _classify
from repro.toolchain.objfile import Image

__all__ = [
    "METRICS",
    "RECORD_SCHEMA",
    "Z_SCORES",
    "Estimate",
    "SampledRun",
    "SampledRunner",
    "SamplingPlan",
    "WindowSpec",
    "estimate_windows",
    "measure_window",
    "place_windows",
]

#: Layout version of :meth:`SampledRun.to_record` payloads.
RECORD_SCHEMA = 1

#: Two-sided normal z-scores for the supported confidence levels.
#: Hardcoded (no scipy in the image); values are ``norm.ppf((1+c)/2)``.
Z_SCORES = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}

#: Per-window ratio metrics the estimator reports, each per retired
#: instruction: cycles (CPI), stall cycles, data-cache misses,
#: instruction-cache misses.
METRICS = ("cpi", "stall_per_instruction", "dmiss_per_instruction",
           "imiss_per_instruction")

#: Default instruction budget for the survey pass.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


def z_score(confidence: float) -> float:
    try:
        return Z_SCORES[confidence]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence!r} "
            f"(have {sorted(Z_SCORES)})") from None


# ---------------------------------------------------------------------------
# Plans and window placement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingPlan:
    """How to sample one program: stratified systematic placement —
    equal strides, one independent seeded offset per stride — which
    dodges periodic-program aliasing without giving up determinism."""

    n_windows: int = 16
    window_length: int = 1_000
    ramp_length: int = 512
    seed: int = 0
    confidence: float = 0.95

    def __post_init__(self):
        if self.n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        if self.window_length < 1:
            raise ValueError("window_length must be >= 1")
        if self.ramp_length < 0:
            raise ValueError("ramp_length must be >= 0")
        z_score(self.confidence)

    def fingerprint_token(self) -> str:
        """Stable token appended to config fingerprints so sampled
        records never collide with full-detail ones in the cache."""
        return (f"smp{self.n_windows}w{self.window_length}"
                f"r{self.ramp_length}s{self.seed}"
                f"c{round(self.confidence * 100)}")

    def as_dict(self) -> dict:
        return {"n_windows": self.n_windows,
                "window_length": self.window_length,
                "ramp_length": self.ramp_length,
                "seed": self.seed,
                "confidence": self.confidence}


@dataclass(frozen=True)
class WindowSpec:
    """One placed window, in program-step coordinates: the accurate ramp
    covers ``[ramp_start, start)``, the measured window ``[start, end)``."""

    index: int
    ramp_start: int
    start: int
    end: int


#: The head spec's index in window observations (never a statistical
#: window).
HEAD_INDEX = -1


def head_spec(total_steps: int, plan: SamplingPlan) -> WindowSpec:
    """The measured head: ``[0, window_length)`` (clipped to the
    program), always executed cycle-accurately.  The program's cold
    start — compulsory misses, first-touch fills — is *systematically*
    different from steady state, so instead of letting it bias the
    window population it is measured exactly and added to the estimate
    as its own phase."""
    return WindowSpec(HEAD_INDEX, 0, 0, min(plan.window_length, total_steps))


def place_windows(total_steps: int, plan: SamplingPlan,
                  start: int = 0) -> tuple[int, list[WindowSpec]]:
    """Place *plan*'s windows over ``[start, total_steps)``.

    Returns ``(offset, specs)`` where *offset* is the first stride's
    draw.  Stratified systematic placement: the region is divided into
    ``n`` equal strides and every window sits at an *independent* seeded
    random offset inside its stride.  A single shared offset (classic
    systematic sampling) aliases against programs whose phase period
    divides the stride — every window lands at the same phase position,
    the between-window variance collapses, and the CI silently stops
    covering.  Independent per-stride offsets keep placement
    deterministic in ``plan.seed`` while giving each window a fresh
    phase position, so within-run variance honestly reflects program
    heterogeneity.  Windows never overlap and never extend past the
    program; a window at least as long as the region degenerates to one
    whole-region window.
    """
    region = total_steps - start
    if region <= 0:
        return 0, []
    length = plan.window_length
    if length >= region:
        return 0, [WindowSpec(0, start, start, total_steps)]
    n = min(plan.n_windows, max(1, region // length))
    spacing = region / n
    slack = max(int(spacing) - length, 0)
    rng = random.Random(f"sampling:{plan.seed}")
    first_offset = 0
    specs: list[WindowSpec] = []
    prev_end = start
    for i in range(n):
        offset = rng.randrange(slack + 1) if slack else 0
        if i == 0:
            first_offset = offset
        begin = max(start + int(i * spacing) + offset, prev_end)
        end = min(begin + length, total_steps)
        if end <= begin:
            continue
        ramp_start = max(begin - plan.ramp_length, prev_end)
        specs.append(WindowSpec(len(specs), ramp_start, begin, end))
        prev_end = end
    return first_offset, specs


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Estimate:
    """One per-instruction metric's CLT estimate over the windows.

    ``std``/``ci_half`` are ``None`` when only one window contributed —
    a single observation has no sample variance, so the estimate is a
    point with no claimed interval (and :meth:`covers` is vacuously
    true, which is the honest reading of "no claim")."""

    metric: str
    mean: float
    std: float | None
    ci_half: float | None
    n: int
    confidence: float

    @property
    def relative(self) -> float:
        """Half-interval relative to the mean (``inf`` with no interval
        or a zero mean)."""
        if self.ci_half is None or self.mean == 0.0:
            return math.inf
        return self.ci_half / abs(self.mean)

    def covers(self, true_value: float) -> bool:
        if self.ci_half is None:
            return True
        return abs(true_value - self.mean) <= self.ci_half

    def to_dict(self) -> dict:
        return {"metric": self.metric, "mean": self.mean, "std": self.std,
                "ci_half": self.ci_half, "n": self.n,
                "confidence": self.confidence}


def _metric_value(window: dict, metric: str) -> float:
    instructions = window["instructions"]
    if metric == "cpi":
        return window["cycles"] / instructions
    if metric == "stall_per_instruction":
        return ((window["fetch_stall_cycles"] + window["mem_stall_cycles"])
                / instructions)
    if metric == "dmiss_per_instruction":
        dcache = window["dcache"]
        return ((dcache["read_misses"] + dcache["write_misses"])
                / instructions)
    if metric == "imiss_per_instruction":
        return window["icache"]["read_misses"] / instructions
    raise ValueError(f"unknown metric '{metric}'")


def estimate_windows(windows: list[dict],
                     confidence: float = 0.95) -> dict[str, Estimate]:
    """CLT estimates over per-window observations, one per metric.

    Pure function of the observation dicts (see :func:`measure_window`
    for their shape), so degenerate inputs — one window, zero variance —
    are testable without a simulator.  Windows that retired zero
    instructions are excluded (their ratios are undefined)."""
    z = z_score(confidence)
    usable = [w for w in windows if w["instructions"] > 0]
    estimates: dict[str, Estimate] = {}
    for metric in METRICS:
        values = [_metric_value(w, metric) for w in usable]
        n = len(values)
        if n == 0:
            continue
        mean = math.fsum(values) / n
        if n > 1:
            variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(variance)
            ci_half = z * std / math.sqrt(n)
        else:
            std = None
            ci_half = None
        estimates[metric] = Estimate(metric=metric, mean=mean, std=std,
                                     ci_half=ci_half, n=n,
                                     confidence=confidence)
    return estimates


# ---------------------------------------------------------------------------
# Runs
# ---------------------------------------------------------------------------


@dataclass
class SampledRun:
    """One sampled execution: the survey totals, every per-window
    observation, the phase ledger partitioning the program, and the CLT
    estimates.  Everything here is simulation-derived and deterministic;
    :meth:`canonical_json` equality is the determinism contract."""

    plan: SamplingPlan
    total_steps: int
    total_instructions: int
    offset: int
    #: The exactly-measured head observation (cold start included).
    head: dict
    windows: list[dict]
    phases: list[dict]
    estimates: dict[str, Estimate]
    result_word: int | None
    uart_hex: str
    #: Auto-mode convergence log (``run_auto``): one entry per round.
    auto: list[dict] | None = None

    @property
    def cpi(self) -> float:
        est = self.estimates.get("cpi")
        return est.mean if est is not None else 0.0

    @property
    def tail_instructions(self) -> int:
        """Retired instructions outside the exactly-measured head — the
        part of the program the windows estimate."""
        return self.total_instructions - self.head["instructions"]

    @property
    def estimated_cycles(self) -> float:
        """Whole-program reconstruction: the head's exact cycles plus
        mean CPI x the tail's exact retired count (retired counts are
        architectural — the survey pass measured them exactly; only the
        tail's cycles are estimated)."""
        return self.head["cycles"] + self.cpi * self.tail_instructions

    @property
    def cycles_ci_half(self) -> float | None:
        est = self.estimates.get("cpi")
        if est is None or est.ci_half is None:
            return None
        return est.ci_half * self.tail_instructions

    def covers(self, true_cycles: float) -> bool:
        """Does the reported interval cover the ground-truth cycle
        count?  Vacuously true when no interval is claimed (n=1)."""
        half = self.cycles_ci_half
        if half is None:
            return True
        return abs(true_cycles - self.estimated_cycles) <= half

    def measured_steps(self) -> int:
        return self.head["steps"] + sum(w["steps"] for w in self.windows)

    def ramp_steps(self) -> int:
        return sum(w["ramp_steps"] for w in self.windows)

    def fast_forward_steps(self) -> int:
        return sum(p["steps"] for p in self.phases
                   if p["kind"] == "fast_forward")

    def instruction_mix(self) -> dict[str, int]:
        mix: Counter[str] = Counter()
        for window in (self.head, *self.windows):
            mix.update(window["instruction_mix"])
        return dict(mix)

    def cache_totals(self, which: str) -> dict[str, int]:
        """Integer cache counters summed over the measured legs."""
        totals: Counter[str] = Counter()
        for window in (self.head, *self.windows):
            for key, value in window[which].items():
                totals[key] += value
        return dict(totals)

    def to_record(self) -> dict:
        """JSON-able, deterministic payload (no host timing) persisted
        as the ``sampled`` section of schema-v5 sweep records."""
        record = {
            "schema": RECORD_SCHEMA,
            "plan": self.plan.as_dict(),
            "total_steps": self.total_steps,
            "total_instructions": self.total_instructions,
            "offset": self.offset,
            "estimated_cycles": self.estimated_cycles,
            "cycles_ci_half": self.cycles_ci_half,
            "estimates": {name: est.to_dict()
                          for name, est in sorted(self.estimates.items())},
            "head": self.head,
            "windows": self.windows,
            "phases": self.phases,
            "result_word": self.result_word,
            "uart_hex": self.uart_hex,
        }
        if self.auto is not None:
            record["auto"] = self.auto
        return record

    def canonical_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True,
                          separators=(",", ":"))

    def summary_lines(self) -> list[str]:
        est = self.estimates.get("cpi")
        half = self.cycles_ci_half
        lines = [
            f"sampled run  : {len(self.windows)} windows + "
            f"{self.head['steps']}-step head over "
            f"{self.total_steps} steps (offset {self.offset})",
            f"measured     : {self.measured_steps()} steps accurate, "
            f"{self.ramp_steps()} ramp, "
            f"{self.fast_forward_steps()} fast-forwarded",
            f"est. cycles  : {self.estimated_cycles:.0f}"
            + (f" +/- {half:.0f} ({self.plan.confidence:.0%} CI)"
               if half is not None else " (no interval claimed)"),
        ]
        if est is not None:
            lines.append(f"CPI          : {est.mean:.4f}"
                         + (f" +/- {est.ci_half:.4f}"
                            if est.ci_half is not None else ""))
        return lines


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _cache_counters(stats: dict) -> dict[str, int]:
    """The integer counters of a ``CacheController.stats_dict()`` —
    geometry and prefetch metadata dropped so window observations sum
    cleanly and stay schema-stable across configs."""
    return {key: value for key, value in stats.items()
            if isinstance(value, int)}


def measure_window(sim: Simulator, spec: WindowSpec, poll: int) -> dict:
    """Run *spec*'s ramp + measured window on *sim*'s cycle-accurate
    engine and return the window observation dict.

    The machine must already be positioned at ``spec.ramp_start`` in the
    canonical handoff state (:meth:`Simulator._normalize_window_start`).
    Shared between the checkpoint-resumed path and the straight-through
    path so the two are equal by construction — the determinism tests
    hold them against each other.
    """
    cpu = sim.cpu
    ramp_budget = spec.start - spec.ramp_start
    ramp_base = cpu.instret
    ramp_steps = 0
    while ramp_steps < ramp_budget and cpu.pc != poll:
        cpu.step()
        ramp_steps += 1
    ramp_instructions = cpu.instret - ramp_base
    # Keep the warmed cache *contents*, zero the accounting: the window
    # observation must cover exactly [start, end).
    sim.icache.reset_stats()
    sim.dcache.reset_stats()

    mix: Counter[str] = Counter()
    cpu.on_retire = lambda pc, inst: mix.update((_classify(inst),))
    cycles0, instret0 = cpu.cycles, cpu.instret
    fetch0, mem0 = cpu.fetch_stall_cycles, cpu.mem_stall_cycles
    traps0 = cpu.trap_count
    budget = spec.end - spec.start
    steps = 0
    try:
        while steps < budget and cpu.pc != poll:
            cpu.step()
            steps += 1
    finally:
        cpu.on_retire = None
    return {
        "index": spec.index,
        "ramp_start": spec.ramp_start,
        "start": spec.start,
        "end": spec.end,
        "planned_steps": budget,
        "steps": steps,
        "instructions": cpu.instret - instret0,
        "cycles": cpu.cycles - cycles0,
        "fetch_stall_cycles": cpu.fetch_stall_cycles - fetch0,
        "mem_stall_cycles": cpu.mem_stall_cycles - mem0,
        "traps": cpu.trap_count - traps0,
        "ramp_steps": ramp_steps,
        "ramp_instructions": ramp_instructions,
        "instruction_mix": dict(mix),
        "dcache": _cache_counters(sim.dcache.stats_dict()),
        "icache": _cache_counters(sim.icache.stats_dict()),
    }


class SampledRunner:
    """Execute sampling plans: survey, checkpoint, measure, estimate.

    Every pass runs in a *fresh* :class:`Simulator` built from the same
    config — no state leaks between passes or windows (a window's
    decode/block caches never see another window's self-modifying
    stores), which is what makes a sampled run a pure function of
    ``(image, config, plan)`` and lets sweep workers rebuild it
    bit-for-bit in parallel.

    The survey and checkpoint passes run on the translated engine,
    which has no timing model: their outputs (step totals, ArchStates,
    phase boundaries) are purely architectural, identical for every
    configuration of one architectural family (``arch_key()`` — the
    same contract the fast-forward sweep checkpoints rely on).  Both
    passes are therefore memoised on the runner, and :meth:`run`
    accepts a per-call ``config`` for the cycle-accurate measure phase
    — a serial sweep reuses one runner per (image, family) and pays
    for the survey and checkpoints once, not per point.
    """

    def __init__(self, config: ArchitectureConfig | None = None):
        self.config = config or ArchitectureConfig()
        self.counters = {"runs": 0, "windows": 0, "checkpoints": 0,
                         "survey_steps": 0, "ff_steps": 0, "ramp_steps": 0,
                         "measured_steps": 0}
        self._survey_memo: tuple[Image, int, dict] | None = None
        #: placement signature -> (image, states, boundary_retired);
        #: hit by auto-mode rounds repeating a placement and by sweep
        #: points sharing one plan across a config family.
        self._checkpoint_memo: dict[tuple, tuple] = {}

    # -- passes --------------------------------------------------------

    def _survey(self, image: Image, max_instructions: int) -> dict:
        """Translated full run: exact step/retired totals + the
        program's architectural outputs (memoised per image, so auto
        mode pays for it once)."""
        memo = self._survey_memo
        if (memo is not None and memo[0] is image
                and memo[1] == max_instructions):
            return memo[2]
        # Drive the translated engine directly: ``run_translated``
        # installs a per-instruction mix callback that knocks the
        # engine off its quiet blockwise path (~10x slower), and the
        # survey only needs totals and the architectural outputs.
        sim = Simulator(self.config, capture_memory_trace=False, obs=False)
        fast = sim._boot_and_dispatch(image, "translated")
        start_steps, start_instret = fast.cycles, fast.instret
        fast.run(max_instructions=max_instructions,
                 until_pc=sim.rom_info.poll_address)
        survey = {
            "steps": fast.cycles - start_steps,
            "instructions": fast.instret - start_instret,
            "result_word": sim.sram.host_read_word(sim.memmap.result_addr),
            "uart_hex": sim.uart.transmitted().hex(),
        }
        self._survey_memo = (image, max_instructions, survey)
        self._checkpoint_memo.clear()
        return survey

    def _checkpoint_pass(self, image: Image, specs: list[WindowSpec],
                         total_steps: int):
        """One translated pass over the program, capturing an ArchState
        at every window's ramp start and the retired-instruction count
        at every phase boundary.  Memoised per placement: the captured
        states are architectural, so repeat plans (auto-mode rounds, a
        sweep's config family) reuse them instead of re-traversing."""
        key = (total_steps,
               tuple((s.ramp_start, s.start, s.end) for s in specs))
        memo = self._checkpoint_memo.get(key)
        if memo is not None and memo[0] is image:
            return memo[1], memo[2]
        sim = Simulator(self.config, capture_memory_trace=False, obs=False)
        poll = sim.rom_info.poll_address
        fast = sim._boot_and_dispatch(image, "translated")
        base = fast.instret
        ramp_starts = {spec.ramp_start for spec in specs}
        marks = sorted({0, total_steps}
                       | {b for spec in specs
                          for b in (spec.ramp_start, spec.start, spec.end)})
        states: dict[int, object] = {}
        boundary_retired: dict[int, int] = {}
        position = 0
        for mark in marks:
            if mark > position:
                executed = fast.fast_forward(mark - position, stop_pc=poll)
                position += executed
                if position < mark:
                    raise RuntimeError(
                        f"program finished at step {position}, before the "
                        f"planned boundary {mark}")
            boundary_retired[mark] = fast.instret - base
            if mark in ramp_starts:
                states[mark] = sim.capture_state(engine=fast)
        self._checkpoint_memo[key] = (image, states, boundary_retired)
        return states, boundary_retired

    def _measure(self, specs: list[WindowSpec], states: dict,
                 config: ArchitectureConfig) -> list[dict]:
        windows = []
        for spec in specs:
            sim = Simulator(config, capture_memory_trace=False,
                            obs=False)
            sim.restore_state(states[spec.ramp_start])
            sim._normalize_window_start()
            windows.append(measure_window(sim, spec,
                                          sim.rom_info.poll_address))
        return windows

    @staticmethod
    def _phases(head: dict, specs: list[WindowSpec], windows: list[dict],
                boundary_retired: dict[int, int],
                total_steps: int) -> list[dict]:
        """The phase ledger: a partition of ``[0, total_steps)`` into
        head / fast-forward / ramp / window legs, each with its exact
        retired-instruction count.  Fast-forward counts come from the
        translated pass, head/ramp/window counts from the accurate
        engine — their sum equaling the survey total is the cross-engine
        step-exactness property the hypothesis suite asserts."""
        phases: list[dict] = []

        def add(kind: str, start: int, end: int, instructions: int,
                window: int | None = None) -> None:
            if end > start:
                phases.append({"kind": kind, "start": start, "end": end,
                               "steps": end - start,
                               "instructions": instructions,
                               "window": window})

        add("head", 0, head["end"], head["instructions"])
        position = head["end"]
        for spec, window in zip(specs, windows):
            add("fast_forward", position, spec.ramp_start,
                boundary_retired[spec.ramp_start]
                - boundary_retired[position])
            add("ramp", spec.ramp_start, spec.start,
                window["ramp_instructions"], spec.index)
            add("window", spec.start, spec.end, window["instructions"],
                spec.index)
            position = spec.end
        add("fast_forward", position, total_steps,
            boundary_retired[total_steps] - boundary_retired[position])
        return phases

    # -- entry points --------------------------------------------------

    def run(self, image: Image, plan: SamplingPlan,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            config: ArchitectureConfig | None = None) -> SampledRun:
        """Execute *plan* over *image*; returns the :class:`SampledRun`.

        *config*, when given, replaces the runner's config for the
        cycle-accurate measure phase only.  It must belong to the same
        architectural family (``arch_key()``) as the runner's config —
        the memoised survey and checkpoints are architectural, so they
        are valid for, and shared across, the whole family.
        """
        if config is not None and config.arch_key() != self.config.arch_key():
            raise ValueError(
                "config must share the runner's architectural family "
                f"({config.arch_key()!r} != {self.config.arch_key()!r})")
        survey = self._survey(image, max_instructions)
        total_steps = survey["steps"]
        head = head_spec(total_steps, plan)
        offset, specs = place_windows(total_steps, plan, start=head.end)
        states, boundary_retired = self._checkpoint_pass(
            image, [head, *specs], total_steps)
        measured = self._measure([head, *specs], states,
                                 config or self.config)
        head_obs, windows = measured[0], measured[1:]
        phases = self._phases(head_obs, specs, windows, boundary_retired,
                              total_steps)
        run = SampledRun(
            plan=plan,
            total_steps=total_steps,
            total_instructions=survey["instructions"],
            offset=offset,
            head=head_obs,
            windows=windows,
            phases=phases,
            estimates=estimate_windows(windows, plan.confidence),
            result_word=survey["result_word"],
            uart_hex=survey["uart_hex"],
        )
        counters = self.counters
        counters["runs"] += 1
        counters["windows"] += len(windows)
        counters["checkpoints"] += len(states)
        counters["survey_steps"] += total_steps
        counters["ff_steps"] += run.fast_forward_steps()
        counters["ramp_steps"] += run.ramp_steps()
        counters["measured_steps"] += run.measured_steps()
        return run

    def run_auto(self, image: Image, plan: SamplingPlan,
                 target_relative_error: float = 0.05,
                 max_windows: int = 256,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
                 ) -> SampledRun:
        """Auto mode: double ``n_windows`` until the CPI estimate's
        relative half-interval reaches *target_relative_error* (or the
        program can't supply more windows).  The convergence log lands
        on :attr:`SampledRun.auto`."""
        if target_relative_error <= 0:
            raise ValueError("target_relative_error must be > 0")
        log: list[dict] = []
        n = plan.n_windows
        while True:
            current = replace(plan, n_windows=n)
            run = self.run(image, current, max_instructions)
            est = run.estimates.get("cpi")
            relative = (est.relative if est is not None else math.inf)
            log.append({"n_windows": n, "windows": len(run.windows),
                        "relative_error": (None if math.isinf(relative)
                                           else relative)})
            if relative <= target_relative_error:
                break
            # The sampled tail only has so many distinct windows; past
            # that, growing n buys nothing.
            tail = run.total_steps - run.head["end"]
            limit = min(max_windows, max(1, tail // plan.window_length))
            if n >= limit:
                break
            n = min(n * 2, limit)
        run.auto = log
        return run

    def publish_obs(self, registry, counters: dict | None = None) -> None:
        """Publish the runner's accounting as ``sampling.*`` series
        (same names :func:`repro.obs.collect.collect_sampling` uses for
        a Simulator's counters).  *counters* overrides the runner's
        cumulative dict — sweep points publish per-run deltas so shared
        runners report exactly what a fresh one would."""
        counters = counters if counters is not None else self.counters
        registry.counter("sampling.runs").inc(counters["runs"])
        registry.counter("sampling.windows").inc(counters["windows"])
        registry.counter("sampling.checkpoints").inc(
            counters["checkpoints"])
        registry.counter("sampling.survey_steps").inc(
            counters["survey_steps"])
        registry.counter("sampling.ff_steps").inc(counters["ff_steps"])
        registry.counter("sampling.ramp_steps").inc(counters["ramp_steps"])
        registry.counter("sampling.measured_steps").inc(
            counters["measured_steps"])
