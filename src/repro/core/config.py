"""ArchitectureConfig: one point in the liquid configuration space.

The paper's §1 lists the dimensions a liquid architecture makes fluid:
"modifiable pipeline depth, variable instruction/data cache size,
specialized hardware to accelerate frequently used instructions or
instruction sequences, new instructions to the SPARC base instruction
set".  This dataclass names exactly those knobs, converts to the
platform's wiring parameters, and provides a canonical key used by the
reconfiguration cache and the synthesis model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.cache.cache import CacheGeometry
from repro.cpu.pipeline import TimingConfig
from repro.mem.adapter import AdapterConfig
from repro.utils import log2_exact

#: Multiplier implementation -> UMUL/SMUL issue cycles (LEON2 mul options).
MULTIPLIER_CYCLES = {"iterative": 35, "16x16": 5, "32x32": 2}

#: Divider implementation -> UDIV/SDIV issue cycles.
DIVIDER_CYCLES = {"radix2": 35, "none": 0}

#: Pipeline depth -> (taken-CTI bubbles beyond the delay slot,
#: load-use interlock present, relative clock-frequency factor).
#: 5 is the stock LEON2; 3 merges EX/ME (no interlock, slow clock);
#: 7 super-pipelines the IU (late branch resolve, fast clock) — the
#: paper's "modifiable pipeline depth" dimension.
PIPELINE_DEPTHS = {
    3: {"taken_cti_penalty": 0, "interlock": False, "clock_factor": 0.80},
    5: {"taken_cti_penalty": 0, "interlock": True, "clock_factor": 1.00},
    7: {"taken_cti_penalty": 2, "interlock": True, "clock_factor": 1.08},
}


@dataclass(frozen=True)
class ExtensionSpec:
    """A custom instruction added to the SPARC base set (CPop1 space).

    ``opf`` selects the operation; ``slice_cost`` feeds the synthesis
    area model; ``cycles`` is the issue cost of the custom datapath.
    The semantic callable itself is registered by the rewrite recipe
    (see :mod:`repro.core.rewriter`) since functions don't belong in a
    hashable config.
    """

    name: str
    opf: int
    slice_cost: int = 250
    cycles: int = 1


@dataclass(frozen=True)
class ArchitectureConfig:
    """A complete micro-architecture configuration of the Liquid system."""

    icache: CacheGeometry = CacheGeometry(size=1024, line_size=32)
    dcache: CacheGeometry = CacheGeometry(size=4096, line_size=32)
    nwindows: int = 8
    multiplier: str = "16x16"
    divider: str = "radix2"
    adapter_read_burst: int = 4
    extensions: tuple[ExtensionSpec, ...] = ()
    load_use_interlock: bool = True
    prefetch: str = "none"  # 'none' | 'nextline' | 'stride' (D-cache unit)
    pipeline_depth: int = 5

    def __post_init__(self) -> None:
        from repro.cache.prefetch import PREFETCH_POLICIES

        if self.prefetch not in PREFETCH_POLICIES:
            raise ValueError(f"unknown prefetch policy '{self.prefetch}'")
        if self.pipeline_depth not in PIPELINE_DEPTHS:
            raise ValueError(
                f"pipeline depth {self.pipeline_depth} unsupported "
                f"(have {sorted(PIPELINE_DEPTHS)})")
        if self.multiplier not in MULTIPLIER_CYCLES:
            raise ValueError(f"unknown multiplier '{self.multiplier}'")
        if self.divider not in DIVIDER_CYCLES:
            raise ValueError(f"unknown divider '{self.divider}'")
        if not 2 <= self.nwindows <= 32:
            raise ValueError(f"NWINDOWS {self.nwindows} out of range")
        log2_exact(self.nwindows)
        names = [ext.name for ext in self.extensions]
        if len(names) != len(set(names)):
            raise ValueError("duplicate extension names")
        opfs = [ext.opf for ext in self.extensions]
        if len(opfs) != len(set(opfs)):
            raise ValueError("duplicate extension opf codes")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def timing(self) -> TimingConfig:
        depth = PIPELINE_DEPTHS[self.pipeline_depth]
        return TimingConfig(
            mul_cycles=MULTIPLIER_CYCLES[self.multiplier],
            div_cycles=DIVIDER_CYCLES[self.divider] or 35,
            load_use_interlock=self.load_use_interlock
            and depth["interlock"],
            taken_cti_penalty=depth["taken_cti_penalty"],
            custom_op_cycles=max((ext.cycles for ext in self.extensions),
                                 default=1),
        )

    def adapter(self) -> AdapterConfig:
        return AdapterConfig(read_burst_words=self.adapter_read_burst)

    def platform_config(self, **overrides):
        """Build the :class:`~repro.fpx.platform.PlatformConfig` for this
        architecture (keyword overrides pass through, e.g. device_ip)."""
        from repro.fpx.platform import PlatformConfig

        return PlatformConfig(
            icache=self.icache,
            dcache=self.dcache,
            nwindows=self.nwindows,
            timing=self.timing(),
            adapter=self.adapter(),
            dcache_prefetch=self.prefetch,
            **overrides,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def key(self) -> str:
        """Canonical name: the reconfiguration-cache index and the
        bitfile filename stem."""

        def cache_key(tag: str, geometry: CacheGeometry) -> str:
            return (f"{tag}{geometry.size // 1024}k"
                    f"l{geometry.line_size}w{geometry.ways}"
                    f"{geometry.replacement[0]}")

        parts = [
            cache_key("ic", self.icache),
            cache_key("dc", self.dcache),
            f"nw{self.nwindows}",
            f"mul{self.multiplier}",
            f"div{self.divider}",
            f"rb{self.adapter_read_burst}",
        ]
        if self.pipeline_depth != 5:
            parts.append(f"p{self.pipeline_depth}")
        if self.prefetch != "none":
            parts.append(f"pf{self.prefetch}")
        if not self.load_use_interlock:
            parts.append("noilock")
        for ext in sorted(self.extensions, key=lambda e: e.opf):
            parts.append(f"x{ext.name}")
        return "-".join(parts)

    def fingerprint(self) -> str:
        """Stable content hash over *every* field, for result caching.

        ``key()`` stays the human-readable bitfile stem but omits fields
        that do not change the wiring name (an extension's ``cycles`` or
        ``slice_cost``); the fingerprint must distinguish those too, so
        it hashes the full canonical field dump.  Unlike Python's salted
        ``hash()`` it is identical across processes and sessions, which
        is what lets the on-disk sweep cache survive restarts.
        """
        payload = json.dumps(asdict(self), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def arch_key(self) -> str:
        """Stable hash of the *architectural* (timing-free) machine.

        Two configurations with the same arch_key compute identical
        results for every program: only the window count and the
        instruction-set extensions change what the software can observe.
        Caches, multiplier/divider datapaths, prefetchers and pipeline
        depth are timing dimensions (a divider of "none" still divides —
        it just costs differently).  This is the checkpoint-sharing key:
        one warmed :class:`~repro.cpu.archstate.ArchState` serves every
        config point with the same arch_key.
        """
        payload = json.dumps(
            {"nwindows": self.nwindows,
             "extensions": sorted((ext.name, ext.opf)
                                  for ext in self.extensions)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def with_dcache_size(self, size: int) -> "ArchitectureConfig":
        """The paper's own sweep axis, as a one-liner."""
        return replace(self, dcache=CacheGeometry(
            size=size, line_size=self.dcache.line_size,
            ways=self.dcache.ways, replacement=self.dcache.replacement))

    def with_extension(self, ext: ExtensionSpec) -> "ArchitectureConfig":
        return replace(self, extensions=self.extensions + (ext,))

    def with_prefetch(self, policy: str) -> "ArchitectureConfig":
        """Attach the §1 'alternative memory structure' to the D-cache."""
        return replace(self, prefetch=policy)

    def with_pipeline_depth(self, depth: int) -> "ArchitectureConfig":
        """The §1 'modifiable pipeline depth' dimension."""
        return replace(self, pipeline_depth=depth)


#: The configuration the paper synthesized and reported in Figure 10.
BASELINE = ArchitectureConfig()
