"""Reconfiguration cache (Figure 1, right-hand loop).

"As features are identified for reconfiguration, instances of those
features are pre-generated in the user- or application-defined parameter
space.  Each such instance requires ~1 hour to synthesize, and the
results are captured in the reconfiguration cache.  At runtime, an
application can switch between these pre-generated modules to improve
performance."

The cache maps a configuration key to its :class:`Bitfile`.  A miss
charges full synthesis time into the model-time ledger; a hit charges
nothing — that asymmetry (×1000s) *is* the paper's argument, and
``benchmarks/bench_recon_cache.py`` measures it.

The cache is shared fleet-wide (see :mod:`repro.control.fleet`), so it
is thread-safe: a lock guards the record store, statistics live in
lock-striped shards keyed by config, and concurrent requests for the
same not-yet-synthesized configuration are *coalesced* — one caller
pays the synthesis, the others wait on it and take the result as a hit
(``stats.coalesced`` counts those).  :meth:`get` reports hits with an
explicit flag rather than a ``synthesis_seconds == 0.0`` sentinel, so a
degenerate configuration whose synthesis model legitimately costs 0.0 s
is still reported as a miss the first time.
"""

from __future__ import annotations

import threading
import warnings
import zlib
from dataclasses import dataclass
from typing import NamedTuple

from repro.core.config import ArchitectureConfig
from repro.core.synthesis import Bitfile, SynthesisModel


class ReconCacheThrashWarning(RuntimeWarning):
    """A pregenerate batch exceeds the cache capacity: entries the batch
    just paid synthesis time for are being evicted by the same batch."""


@dataclass
class CacheRecord:
    bitfile: Bitfile
    hits: int = 0
    last_use: int = 0


class CacheOutcome(NamedTuple):
    """What :meth:`ReconfigurationCache.get` returns.

    ``hit`` is authoritative: it is True only when the bitfile came out
    of the cache, never inferred from ``synthesis_seconds`` (which a
    degenerate synthesis model may legitimately report as 0.0 on a
    miss).
    """

    bitfile: Bitfile
    synthesis_seconds: float
    hit: bool


@dataclass
class ReconStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Hits that waited on another caller's in-flight synthesis of the
    #: same configuration instead of synthesizing it twice.
    coalesced: int = 0
    #: Evictions of entries inserted by the same pregenerate batch that
    #: evicted them (the thrash :meth:`ReconfigurationCache.pregenerate`
    #: warns about).
    thrash_evictions: int = 0
    synthesis_seconds: float = 0.0
    seconds_saved: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _StatsShard:
    """One lock-striped statistics bucket (stats are written far more
    often than the record store is restructured, so they take a striped
    lock instead of the global one)."""

    __slots__ = ("lock", "stats")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.stats = ReconStats()


class ReconfigurationCache:
    """LRU-bounded, thread-safe store of pre-generated bitfiles."""

    def __init__(self, synthesizer: SynthesisModel | None = None,
                 capacity: int | None = None, stat_shards: int = 8):
        if stat_shards < 1:
            raise ValueError("stat_shards must be >= 1")
        self.synthesizer = synthesizer or SynthesisModel()
        self.capacity = capacity
        self._records: dict[str, CacheRecord] = {}
        self._clock = 0
        self._lock = threading.Lock()
        #: key -> Event set when that key's in-flight synthesis lands.
        self._in_flight: dict[str, threading.Event] = {}
        self._shards = tuple(_StatsShard() for _ in range(stat_shards))
        #: Keys inserted by the pregenerate batch currently running (for
        #: thrash accounting); None outside pregenerate.
        self._batch_keys: set[str] | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, config: ArchitectureConfig) -> bool:
        with self._lock:
            return config.key() in self._records

    @property
    def stats(self) -> ReconStats:
        """Aggregate view over the stat shards (a fresh snapshot)."""
        total = ReconStats()
        for shard in self._shards:
            with shard.lock:
                stats = shard.stats
                total.hits += stats.hits
                total.misses += stats.misses
                total.evictions += stats.evictions
                total.coalesced += stats.coalesced
                total.thrash_evictions += stats.thrash_evictions
                total.synthesis_seconds += stats.synthesis_seconds
                total.seconds_saved += stats.seconds_saved
        return total

    def _shard_for(self, key: str) -> _StatsShard:
        return self._shards[zlib.crc32(key.encode()) % len(self._shards)]

    def lookup(self, config: ArchitectureConfig) -> Bitfile | None:
        """Peek without synthesizing (no miss is recorded)."""
        with self._lock:
            record = self._records.get(config.key())
        if record is None:
            return None
        return record.bitfile

    def get(self, config: ArchitectureConfig) -> CacheOutcome:
        """Return ``(bitfile, model_seconds_spent, hit)``.

        A hit costs 0 s of synthesis; a miss runs the synthesis model,
        stores the result, and returns the full synthesis time.  When
        another caller is already synthesizing the same configuration,
        wait for it and take the result as a (coalesced) hit.
        """
        key = config.key()
        shard = self._shard_for(key)
        waited = False
        while True:
            with self._lock:
                self._clock += 1
                record = self._records.get(key)
                if record is not None:
                    record.hits += 1
                    record.last_use = self._clock
                    saved = record.bitfile.synthesis_seconds
                    bitfile = record.bitfile
                elif key in self._in_flight:
                    event = self._in_flight[key]
                    bitfile = None
                else:
                    # This caller owns the miss.
                    event = self._in_flight[key] = threading.Event()
                    break
            if record is not None:
                with shard.lock:
                    shard.stats.hits += 1
                    shard.stats.seconds_saved += saved
                    if waited:
                        shard.stats.coalesced += 1
                return CacheOutcome(bitfile, 0.0, True)
            # Someone else is synthesizing this key: wait, then re-read
            # (the record may also have been evicted meanwhile, in which
            # case the loop makes this caller the new owner).
            event.wait()
            waited = True
        try:
            bitfile = self.synthesizer.synthesize(config)
        except BaseException:
            with self._lock:
                del self._in_flight[key]
            event.set()
            raise
        with shard.lock:
            shard.stats.misses += 1
            shard.stats.synthesis_seconds += bitfile.synthesis_seconds
        with self._lock:
            self._insert(key, bitfile)
            del self._in_flight[key]
        event.set()
        return CacheOutcome(bitfile, bitfile.synthesis_seconds, False)

    def pregenerate(self, configs) -> float:
        """Ahead-of-time fill (the paper's workflow); returns the total
        synthesis seconds spent.

        A batch larger than the cache capacity cannot possibly stick:
        later entries evict earlier ones the batch just paid ~an hour of
        synthesis each for.  That thrash is detected up front (a
        :class:`ReconCacheThrashWarning`) and surfaced in
        ``stats.thrash_evictions`` instead of silently burning model
        time.
        """
        configs = list(configs)
        unique = {config.key() for config in configs}
        if self.capacity is not None and len(unique) > self.capacity:
            warnings.warn(ReconCacheThrashWarning(
                f"pregenerating {len(unique)} distinct configurations "
                f"into a cache of capacity {self.capacity}: "
                f"{len(unique) - self.capacity} freshly synthesized "
                f"entries will be evicted by this same batch"),
                stacklevel=2)
        with self._lock:
            self._batch_keys = set()
        try:
            total = 0.0
            for config in configs:
                _, seconds, _ = self.get(config)
                total += seconds
                with self._lock:
                    if self._batch_keys is not None:
                        self._batch_keys.add(config.key())
            return total
        finally:
            with self._lock:
                self._batch_keys = None

    def _insert(self, key: str, bitfile: Bitfile) -> None:
        # Caller holds self._lock.
        if self.capacity is not None and len(self._records) >= self.capacity:
            victim_key = min(self._records,
                             key=lambda k: self._records[k].last_use)
            del self._records[victim_key]
            victim_shard = self._shard_for(victim_key)
            thrashed = (self._batch_keys is not None
                        and victim_key in self._batch_keys)
            with victim_shard.lock:
                victim_shard.stats.evictions += 1
                if thrashed:
                    victim_shard.stats.thrash_evictions += 1
        self._records[key] = CacheRecord(bitfile, last_use=self._clock)
        if self._batch_keys is not None:
            self._batch_keys.add(key)

    def contents(self) -> list[str]:
        with self._lock:
            return sorted(self._records)
