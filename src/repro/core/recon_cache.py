"""Reconfiguration cache (Figure 1, right-hand loop).

"As features are identified for reconfiguration, instances of those
features are pre-generated in the user- or application-defined parameter
space.  Each such instance requires ~1 hour to synthesize, and the
results are captured in the reconfiguration cache.  At runtime, an
application can switch between these pre-generated modules to improve
performance."

The cache maps a configuration key to its :class:`Bitfile`.  A miss
charges full synthesis time into the model-time ledger; a hit charges
nothing — that asymmetry (×1000s) *is* the paper's argument, and
``benchmarks/bench_recon_cache.py`` measures it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArchitectureConfig
from repro.core.synthesis import Bitfile, SynthesisModel


@dataclass
class CacheRecord:
    bitfile: Bitfile
    hits: int = 0
    last_use: int = 0


@dataclass
class ReconStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    synthesis_seconds: float = 0.0
    seconds_saved: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReconfigurationCache:
    """LRU-bounded store of pre-generated bitfiles."""

    def __init__(self, synthesizer: SynthesisModel | None = None,
                 capacity: int | None = None):
        self.synthesizer = synthesizer or SynthesisModel()
        self.capacity = capacity
        self._records: dict[str, CacheRecord] = {}
        self._clock = 0
        self.stats = ReconStats()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, config: ArchitectureConfig) -> bool:
        return config.key() in self._records

    def lookup(self, config: ArchitectureConfig) -> Bitfile | None:
        """Peek without synthesizing (no miss is recorded)."""
        record = self._records.get(config.key())
        if record is None:
            return None
        return record.bitfile

    def get(self, config: ArchitectureConfig) -> tuple[Bitfile, float]:
        """Return (bitfile, model_seconds_spent).

        A hit costs 0 s of synthesis; a miss runs the synthesis model,
        stores the result, and returns the full synthesis time.
        """
        self._clock += 1
        key = config.key()
        record = self._records.get(key)
        if record is not None:
            record.hits += 1
            record.last_use = self._clock
            self.stats.hits += 1
            self.stats.seconds_saved += record.bitfile.synthesis_seconds
            return record.bitfile, 0.0
        bitfile = self.synthesizer.synthesize(config)
        self.stats.misses += 1
        self.stats.synthesis_seconds += bitfile.synthesis_seconds
        self._insert(key, bitfile)
        return bitfile, bitfile.synthesis_seconds

    def pregenerate(self, configs) -> float:
        """Ahead-of-time fill (the paper's workflow); returns the total
        synthesis seconds spent."""
        total = 0.0
        for config in configs:
            _, seconds = self.get(config)
            total += seconds
        return total

    def _insert(self, key: str, bitfile: Bitfile) -> None:
        if self.capacity is not None and len(self._records) >= self.capacity:
            victim_key = min(self._records,
                             key=lambda k: self._records[k].last_use)
            del self._records[victim_key]
            self.stats.evictions += 1
        self._records[key] = CacheRecord(bitfile, last_use=self._clock)

    def contents(self) -> list[str]:
        return sorted(self._records)
