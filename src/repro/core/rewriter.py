"""Application rewriting for custom instructions (Figure 1's "recipe").

"A recipe for rewriting the application is specified, so that the
application can take advantage of the reconfigured architecture.  ...
that recipe is provided to the compiler so that the application's
instructions can be tailored for the architecture."

A :class:`RewriteRecipe` couples three things that must travel together:

1. the *architecture side* — an :class:`ExtensionSpec` (CPop1 ``opf``,
   area cost) plus the Python semantic executed by the simulator when
   the custom instruction issues;
2. the *compiler side* — a peephole rule over generated assembly that
   replaces a recognised instruction sequence with the ``custom`` form
   (and/or a C-source mapping ``function name -> __builtin_custom``);
3. bookkeeping so the synthesis model charges for the accelerator.

Built-in recipes implement the paper's example of "specialized hardware
to accelerate frequently used instructions or instruction sequences":
a population-count accelerator and a multiply-accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.core.config import ArchitectureConfig, ExtensionSpec
from repro.cpu.decode import DecodedInstruction
from repro.cpu.iu import IntegerUnit
from repro.utils import popcount32, u32

Semantics = Callable[[IntegerUnit, DecodedInstruction], None]


@dataclass(frozen=True)
class RewriteRecipe:
    """A custom instruction plus how to rewrite code to use it."""

    extension: ExtensionSpec
    semantics: Semantics
    #: regex over a *window* of assembly lines -> replacement lines.
    asm_pattern: str | None = None
    asm_replacement: str | None = None
    #: C function name whose calls become __builtin_custom(opf, a, b).
    c_function: str | None = None

    def apply_to_config(self, config: ArchitectureConfig
                        ) -> ArchitectureConfig:
        if any(ext.opf == self.extension.opf for ext in config.extensions):
            return config
        return config.with_extension(self.extension)

    def install(self, iu: IntegerUnit) -> None:
        """Register the simulator semantics on an integer unit."""
        iu.extensions[self.extension.opf] = self.semantics

    # -- assembly rewriting ---------------------------------------------------

    def rewrite_asm(self, asm_text: str) -> tuple[str, int]:
        """Apply the peephole rule; returns (new_text, substitutions)."""
        if self.asm_pattern is None:
            return asm_text, 0
        pattern = re.compile(self.asm_pattern, re.MULTILINE)
        new_text, count = pattern.subn(self.asm_replacement, asm_text)
        return new_text, count

    def legal_sites(self, image) -> list:
        """Binary-side legality verdicts for this recipe's candidates.

        Scans *image* (the linked, unrewritten program) for the
        instruction shape this recipe's peephole targets and checks
        each site against the dataflow facts — see
        :mod:`repro.analysis.legality`.  Returns one
        :class:`~repro.analysis.legality.LegalityResult` per site, in
        address order; empty for pure C-level recipes.
        """
        if self.asm_pattern is None:
            return []
        from repro.analysis.legality import legal_sites, mac_candidates

        # The MAC shape is the only asm peephole today; recipes adding
        # new patterns must register a matching binary-side finder.
        return legal_sites(image, finder=mac_candidates)

    def verified_rewrite_asm(self, asm_text: str, image
                             ) -> tuple[str, int, list]:
        """Apply the peephole only at sites the legality checker
        accepts.

        *image* must be the linked image of the **unrewritten**
        *asm_text* program: textual matches pair with binary candidates
        in order, and each pairing is cross-checked by register operand
        before a substitution is allowed — a mismatch (or an illegal
        verdict) skips the site rather than guessing.

        Returns ``(new_text, substitutions, skipped)`` where *skipped*
        lists the :class:`LegalityResult` of every rejected site.
        """
        if self.asm_pattern is None:
            return asm_text, 0, []
        from repro.analysis.dataflow import reg_number

        verdicts = self.legal_sites(image)
        pattern = re.compile(self.asm_pattern, re.MULTILINE)
        matches = list(pattern.finditer(asm_text))
        skipped: list = []
        legal_spans: set[int] = set()
        for index, match in enumerate(matches):
            if index >= len(verdicts):
                break  # textual match with no binary candidate: skip
            verdict = verdicts[index]
            try:
                # MAC groups: (indent, a, b, t, acc).
                operands = (reg_number(match.group(2)),
                            reg_number(match.group(3)),
                            reg_number(match.group(5)))
            except (ValueError, IndexError):
                operands = None
            candidate = verdict.candidate
            aligned = operands == (candidate.inputs[0],
                                   candidate.inputs[1],
                                   candidate.output)
            if verdict.ok and aligned:
                legal_spans.add(match.start())
            else:
                skipped.append(verdict)

        count = 0

        def substitute(match: re.Match) -> str:
            nonlocal count
            if match.start() not in legal_spans:
                return match.group(0)
            count += 1
            return match.expand(self.asm_replacement)

        new_text = pattern.sub(substitute, asm_text)
        return new_text, count, skipped

    # -- C rewriting --------------------------------------------------------------

    def rewrite_c(self, c_source: str) -> tuple[str, int]:
        """Replace *calls* to :attr:`c_function` with the builtin.

        Definition/declaration sites (where the name is preceded by a
        type keyword) are left alone — the software fallback stays in
        the program, it just stops being called.
        """
        if self.c_function is None:
            return c_source, 0
        type_words = {"int", "unsigned", "char", "void", "short", "long",
                      "signed", "volatile", "const", "static", "extern"}
        pattern = re.compile(rf"(\w+\s+)?\b{re.escape(self.c_function)}\s*\(")
        count = 0

        def substitute(match: re.Match) -> str:
            nonlocal count
            prefix = (match.group(1) or "").strip()
            if prefix in type_words:
                return match.group(0)  # a definition, not a call
            count += 1
            return (match.group(1) or "") + \
                f"__builtin_custom({self.extension.opf}, "

        new_source = pattern.sub(substitute, c_source)
        return new_source, count


# ---------------------------------------------------------------------------
# Built-in recipes
# ---------------------------------------------------------------------------

OPF_POPCOUNT = 0x01
OPF_MAC = 0x02
OPF_SATADD = 0x03


def _popcount_semantics(iu: IntegerUnit, inst: DecodedInstruction) -> None:
    value = iu.regs.read(inst.rs1) ^ iu.regs.read(inst.rs2)
    iu.regs.write(inst.rd, popcount32(value))


def _mac_semantics(iu: IntegerUnit, inst: DecodedInstruction) -> None:
    """rd += rs1 * rs2 (a one-cycle multiply-accumulate datapath)."""
    product = u32(iu.regs.read(inst.rs1) * iu.regs.read(inst.rs2))
    iu.regs.write(inst.rd, u32(iu.regs.read(inst.rd) + product))


def _satadd_semantics(iu: IntegerUnit, inst: DecodedInstruction) -> None:
    """Signed saturating add — common in DSP kernels."""
    from repro.utils import s32

    total = s32(iu.regs.read(inst.rs1)) + s32(iu.regs.read(inst.rs2))
    total = max(-0x8000_0000, min(0x7FFF_FFFF, total))
    iu.regs.write(inst.rd, u32(total))


POPCOUNT_RECIPE = RewriteRecipe(
    extension=ExtensionSpec("popc", OPF_POPCOUNT, slice_cost=180, cycles=1),
    semantics=_popcount_semantics,
    c_function="popcount_xor",
)

MAC_RECIPE = RewriteRecipe(
    extension=ExtensionSpec("mac", OPF_MAC, slice_cost=420, cycles=1),
    semantics=_mac_semantics,
    # smul a, b, t ; add acc, t, acc  =>  custom MAC a, b, acc
    asm_pattern=(r"^(\s*)smul (%\w+), (%\w+), (%\w+)\n"
                 r"\s*add (%\w+), \4, \5$"),
    asm_replacement=rf"\1custom {OPF_MAC}, \2, \3, \5",
)

SATADD_RECIPE = RewriteRecipe(
    extension=ExtensionSpec("satadd", OPF_SATADD, slice_cost=150, cycles=1),
    semantics=_satadd_semantics,
    c_function="saturating_add",
)

BUILTIN_RECIPES = {
    "popc": POPCOUNT_RECIPE,
    "mac": MAC_RECIPE,
    "satadd": SATADD_RECIPE,
}


def install_recipes(iu: IntegerUnit,
                    config: ArchitectureConfig,
                    recipes: dict[str, RewriteRecipe] | None = None) -> int:
    """Register simulator semantics for every extension in *config*.

    Returns the number of extensions installed.  Unknown extension names
    raise — a config that names an accelerator nobody implemented is the
    hardware equivalent of an unresolved symbol.
    """
    recipes = recipes or BUILTIN_RECIPES
    installed = 0
    for ext in config.extensions:
        recipe = recipes.get(ext.name)
        if recipe is None:
            raise KeyError(f"no rewrite recipe implements extension "
                           f"'{ext.name}'")
        recipe.install(iu)
        installed += 1
    return installed
