"""Reconfiguration Server: sequencing access to the FPX platform.

"The Reconfiguration Server controls access to the FPX Platform,
sequencing the loading and execution of applications."  The server owns
the (single) FPX node, a reconfiguration cache, and a model-time ledger:

* :meth:`configure` — ensure the RAD runs the requested architecture:
  reconfiguration-cache lookup (miss → synthesis time), then SelectMap
  programming time, then re-instantiating the platform model (our
  software analogue of loading a new bitfile);
* :meth:`submit` / :meth:`run_job` — queued load-and-execute jobs, each
  returning the measured cycle count.

Model time is wall-clock *in the model* (synthesis hours, programming
milliseconds, program cycles at the bitfile's clock rate) — the currency
in which the reconfiguration cache pays off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.control.client import ControlTimeout, DeviceError, LiquidClient
from repro.control.transport import DirectTransport
from repro.core.config import ArchitectureConfig
from repro.core.recon_cache import ReconfigurationCache
from repro.core.synthesis import Bitfile
from repro.fpx.platform import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.protocol import LeonState
from repro.toolchain.objfile import Image


@dataclass
class Job:
    """One load-and-execute request against a given architecture."""

    image: Image
    config: ArchitectureConfig
    name: str = "job"
    result_addr: int | None = DEFAULT_MAP.result_addr
    max_instructions: int = 50_000_000


@dataclass
class JobResult:
    name: str
    config_key: str
    state: LeonState
    cycles: int
    result_word: int | None
    seconds_synthesis: float
    seconds_programming: float
    seconds_execution: float
    cache_hit: bool
    #: False when the job was recorded as failed (control-plane timeout
    #: or device error that survived the restart-and-retry).
    ok: bool = True
    #: Human-readable failure cause when ``ok`` is False.
    error: str | None = None
    #: Times the job was attempted (2 = failed once, retried).
    attempts: int = 1

    @property
    def total_model_seconds(self) -> float:
        return (self.seconds_synthesis + self.seconds_programming
                + self.seconds_execution)


class ReconfigurationServer:
    def __init__(self, cache: ReconfigurationCache | None = None,
                 client_factory: Callable[[FPXPlatform],
                                          LiquidClient] | None = None):
        self.cache = cache or ReconfigurationCache()
        self.platform: FPXPlatform | None = None
        self.client: LiquidClient | None = None
        # Builds the control client for a freshly configured platform.
        # The default drives the node over a lossless DirectTransport;
        # override to interpose a lossy/chaos transport or custom retry
        # policies (tests inject failures this way).
        self.client_factory = client_factory or self._default_client
        self.current_bitfile: Bitfile | None = None
        self.model_seconds = 0.0
        self.reconfigurations = 0
        self.jobs_failed = 0
        self.jobs_retried = 0
        self._queue: deque[Job] = deque()
        self.results: list[JobResult] = []

    @staticmethod
    def _default_client(platform: FPXPlatform) -> LiquidClient:
        return LiquidClient(DirectTransport(
            platform, platform.config.device_ip,
            platform.config.control_port))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure(self, config: ArchitectureConfig) -> tuple[float, float, bool]:
        """Make the RAD run *config*; returns (synthesis_s, program_s,
        cache_hit).  A no-op if the right bitfile is already loaded."""
        if (self.current_bitfile is not None
                and self.current_bitfile.config == config
                and self.platform is not None):
            return 0.0, 0.0, True
        bitfile, synthesis_seconds = self.cache.get(config)
        cache_hit = synthesis_seconds == 0.0
        # Instantiate the new architecture (= full RAD reconfiguration).
        platform = FPXPlatform(config.platform_config())
        program_seconds = platform.rad.program(platform, bitfile.name,
                                               bitfile.size_bytes)
        platform.boot()
        self.platform = platform
        self.client = self.client_factory(platform)
        self.current_bitfile = bitfile
        self.reconfigurations += 1
        self.model_seconds += synthesis_seconds + program_seconds
        return synthesis_seconds, program_seconds, cache_hit

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> None:
        self._queue.append(job)

    def run_queue(self) -> list[JobResult]:
        """Run all queued jobs, degrading gracefully: a job that fails
        with a control-plane timeout or device error is retried once
        after a device restart; a second failure is recorded as a failed
        :class:`JobResult` instead of aborting the rest of the queue."""
        results = []
        while self._queue:
            job = self._queue.popleft()
            try:
                result = self.run_job(job)
            except (ControlTimeout, DeviceError) as first_error:
                result = self._retry_job(job, first_error)
            results.append(result)
        return results

    def _retry_job(self, job: Job, first_error: Exception) -> JobResult:
        """Second (and last) chance for a failed job: restart the device
        to shed wedged state, rerun, and on repeat failure record the
        job as failed."""
        self.jobs_retried += 1
        try:
            if self.client is not None:
                self.client.restart()
            result = self.run_job(job)
        except (ControlTimeout, DeviceError) as exc:
            self.jobs_failed += 1
            result = JobResult(
                name=job.name,
                config_key=job.config.key(),
                state=LeonState.ERROR,
                cycles=0,
                result_word=None,
                seconds_synthesis=0.0,
                seconds_programming=0.0,
                seconds_execution=0.0,
                cache_hit=False,
                ok=False,
                error=f"{type(exc).__name__}: {exc} "
                      f"(first failure: {type(first_error).__name__}: "
                      f"{first_error})",
                attempts=2,
            )
            self.results.append(result)
            return result
        result.attempts = 2
        return result

    def run_job(self, job: Job) -> JobResult:
        synthesis_s, program_s, cache_hit = self.configure(job.config)
        platform, client = self.platform, self.client
        run = client.run_image(job.image, result_addr=job.result_addr,
                               max_instructions=job.max_instructions)
        frequency_hz = self.current_bitfile.utilization.frequency_mhz * 1e6
        execution_s = run.cycles / frequency_hz
        self.model_seconds += execution_s
        result = JobResult(
            name=job.name,
            config_key=job.config.key(),
            state=platform.leon_ctrl.state,
            cycles=run.cycles,
            result_word=run.result_word,
            seconds_synthesis=synthesis_s,
            seconds_programming=program_s,
            seconds_execution=execution_s,
            cache_hit=cache_hit,
        )
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def ledger(self) -> dict:
        return {
            "model_seconds": round(self.model_seconds, 3),
            "reconfigurations": self.reconfigurations,
            "jobs_retried": self.jobs_retried,
            "jobs_failed": self.jobs_failed,
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "synthesis_seconds": round(
                    self.cache.stats.synthesis_seconds, 1),
                "seconds_saved": round(self.cache.stats.seconds_saved, 1),
            },
        }
