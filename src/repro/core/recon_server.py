"""Reconfiguration Server: the per-device runtime of the liquid lab.

"The Reconfiguration Server controls access to the FPX Platform,
sequencing the loading and execution of applications."  The server owns
one FPX node, a reconfiguration cache (possibly shared fleet-wide, see
:mod:`repro.control.fleet`), and a model-time ledger:

* :meth:`configure` — ensure the RAD runs the requested architecture:
  reconfiguration-cache lookup (miss → synthesis time), then SelectMap
  programming time, then re-instantiating the platform model (our
  software analogue of loading a new bitfile);
* :meth:`submit` / :meth:`run_job` — queued load-and-execute jobs, each
  returning the measured cycle count;
* :meth:`invalidate` — forget the loaded bitfile/platform/client so the
  next configure rebuilds the node from scratch (the supervisor's hard
  restart after a wedged run).

Model time is wall-clock *in the model* (synthesis hours, programming
milliseconds, program cycles at the bitfile's clock rate) — the currency
in which the reconfiguration cache pays off.

Accounting is explicit about three distinct cheap paths: a *no-op*
configure (the right bitfile is already loaded; the cache is never
consulted), a *cache hit* (new bitfile, no synthesis), and a genuine
miss.  ``JobResult.cache_hit`` and ``JobResult.already_loaded`` report
them separately, and the ledger counts no-ops in ``configs_noop``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, NamedTuple

from repro.control.client import ControlTimeout, DeviceError, LiquidClient
from repro.control.transport import DirectTransport
from repro.core.config import ArchitectureConfig
from repro.core.recon_cache import ReconfigurationCache
from repro.core.synthesis import Bitfile
from repro.fpx.platform import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.protocol import LeonState
from repro.toolchain.objfile import Image


@dataclass
class Job:
    """One load-and-execute request against a given architecture."""

    image: Image
    config: ArchitectureConfig
    name: str = "job"
    result_addr: int | None = DEFAULT_MAP.result_addr
    max_instructions: int = 50_000_000


class ConfigureOutcome(NamedTuple):
    """What :meth:`ReconfigurationServer.configure` returns.

    Exactly one of ``cache_hit`` / ``already_loaded`` can be True:
    a no-op configure never consults the cache, so it is not a hit.
    """

    synthesis_seconds: float
    program_seconds: float
    cache_hit: bool
    already_loaded: bool = False


@dataclass
class JobResult:
    name: str
    config_key: str
    state: LeonState
    cycles: int
    result_word: int | None
    seconds_synthesis: float
    seconds_programming: float
    seconds_execution: float
    #: True only when the bitfile came out of the reconfiguration cache
    #: (synthesis skipped, SelectMap programming still paid).
    cache_hit: bool
    #: True when the right bitfile was already on the RAD: no cache
    #: lookup, no programming — distinct from a cache hit.
    already_loaded: bool = False
    #: False when the job was recorded as failed (control-plane timeout
    #: or device error that survived the restart-and-retry).
    ok: bool = True
    #: Human-readable failure cause when ``ok`` is False.
    error: str | None = None
    #: Times the job was attempted (2 = failed once, retried).
    attempts: int = 1

    @property
    def total_model_seconds(self) -> float:
        return (self.seconds_synthesis + self.seconds_programming
                + self.seconds_execution)


class ReconfigurationServer:
    def __init__(self, cache: ReconfigurationCache | None = None,
                 client_factory: Callable[[FPXPlatform],
                                          LiquidClient] | None = None):
        # `cache or ...` would silently discard a shared cache: an
        # empty ReconfigurationCache is falsy through __len__, and a
        # fleet hands every runtime exactly such a cache at start-up.
        self.cache = cache if cache is not None else ReconfigurationCache()
        self.platform: FPXPlatform | None = None
        self.client: LiquidClient | None = None
        # Builds the control client for a freshly configured platform.
        # The default drives the node over a lossless DirectTransport;
        # override to interpose a lossy/chaos transport or custom retry
        # policies (tests and the fleet inject failures this way).
        self.client_factory = client_factory or self._default_client
        self.current_bitfile: Bitfile | None = None
        self.model_seconds = 0.0
        self.reconfigurations = 0
        self.noop_configs = 0
        self.jobs_failed = 0
        self.jobs_retried = 0
        self._queue: deque[Job] = deque()
        self.results: list[JobResult] = []

    @staticmethod
    def _default_client(platform: FPXPlatform) -> LiquidClient:
        return LiquidClient(DirectTransport(
            platform, platform.config.device_ip,
            platform.config.control_port))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure(self, config: ArchitectureConfig) -> ConfigureOutcome:
        """Make the RAD run *config*.  A no-op if the right bitfile is
        already loaded (reported as ``already_loaded``, not as a cache
        hit — the cache is never consulted on that path)."""
        if (self.current_bitfile is not None
                and self.current_bitfile.config == config
                and self.platform is not None):
            self.noop_configs += 1
            return ConfigureOutcome(0.0, 0.0, cache_hit=False,
                                    already_loaded=True)
        bitfile, synthesis_seconds, cache_hit = self.cache.get(config)
        # Instantiate the new architecture (= full RAD reconfiguration).
        platform = FPXPlatform(config.platform_config())
        program_seconds = platform.rad.program(platform, bitfile.name,
                                               bitfile.size_bytes)
        platform.boot()
        self.platform = platform
        self.client = self.client_factory(platform)
        self.current_bitfile = bitfile
        self.reconfigurations += 1
        self.model_seconds += synthesis_seconds + program_seconds
        return ConfigureOutcome(synthesis_seconds, program_seconds,
                                cache_hit=cache_hit)

    def invalidate(self) -> None:
        """Forget the loaded bitfile, platform and client.

        The next :meth:`configure` rebuilds the node from scratch — the
        hard-restart a supervisor applies after a failure, and the only
        safe response to a wedged platform: restarting through the
        existing client would trust the very control path that just
        timed out, and keeping ``current_bitfile`` would let the no-op
        check happily reuse the wedged platform.
        """
        self.current_bitfile = None
        self.platform = None
        self.client = None

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> None:
        self._queue.append(job)

    def run_queue(self) -> list[JobResult]:
        """Run all queued jobs, degrading gracefully: a job that fails
        with a control-plane timeout or device error is retried once
        after a device rebuild; a second failure is recorded as a failed
        :class:`JobResult` instead of aborting the rest of the queue."""
        results = []
        while self._queue:
            job = self._queue.popleft()
            try:
                result = self.run_job(job)
            except (ControlTimeout, DeviceError) as first_error:
                result = self._retry_job(job, first_error)
            results.append(result)
        return results

    def _retry_job(self, job: Job, first_error: Exception) -> JobResult:
        """Second (and last) chance for a failed job: invalidate the
        wedged platform so the retry reconfigures from scratch (fresh
        platform, fresh client), rerun, and on repeat failure record the
        job as failed."""
        self.jobs_retried += 1
        self.invalidate()
        try:
            result = self.run_job(job)
        except (ControlTimeout, DeviceError) as exc:
            self.jobs_failed += 1
            result = JobResult(
                name=job.name,
                config_key=job.config.key(),
                state=LeonState.ERROR,
                cycles=0,
                result_word=None,
                seconds_synthesis=0.0,
                seconds_programming=0.0,
                seconds_execution=0.0,
                cache_hit=False,
                ok=False,
                error=f"{type(exc).__name__}: {exc} "
                      f"(first failure: {type(first_error).__name__}: "
                      f"{first_error})",
                attempts=2,
            )
            self.results.append(result)
            return result
        result.attempts = 2
        return result

    def run_job(self, job: Job) -> JobResult:
        outcome = self.configure(job.config)
        platform, client = self.platform, self.client
        run = client.run_image(job.image, result_addr=job.result_addr,
                               max_instructions=job.max_instructions)
        frequency_hz = self.current_bitfile.utilization.frequency_mhz * 1e6
        execution_s = run.cycles / frequency_hz
        self.model_seconds += execution_s
        result = JobResult(
            name=job.name,
            config_key=job.config.key(),
            state=platform.leon_ctrl.state,
            cycles=run.cycles,
            result_word=run.result_word,
            seconds_synthesis=outcome.synthesis_seconds,
            seconds_programming=outcome.program_seconds,
            seconds_execution=execution_s,
            cache_hit=outcome.cache_hit,
            already_loaded=outcome.already_loaded,
        )
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def ledger(self) -> dict:
        cache_stats = self.cache.stats
        return {
            "model_seconds": round(self.model_seconds, 3),
            "reconfigurations": self.reconfigurations,
            "configs_noop": self.noop_configs,
            "jobs_retried": self.jobs_retried,
            "jobs_failed": self.jobs_failed,
            "cache": {
                "entries": len(self.cache),
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "coalesced": cache_stats.coalesced,
                "synthesis_seconds": round(
                    cache_stats.synthesis_seconds, 1),
                "seconds_saved": round(cache_stats.seconds_saved, 1),
            },
        }
