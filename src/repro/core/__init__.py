"""The liquid-architecture contribution: configuration space, synthesis
model, reconfiguration cache/server, trace analyzer, architecture
generator, rewrite recipes, and the top-level system facade."""

from repro.core.config import (
    BASELINE,
    ArchitectureConfig,
    ExtensionSpec,
)
from repro.core.generator import ArchitectureGenerator, ExplorationResult
from repro.core.liquid import LiquidProcessorSystem, ProgramRun
from repro.core.recon_cache import (
    CacheOutcome,
    ReconCacheThrashWarning,
    ReconfigurationCache,
)
from repro.core.sampling import (
    Estimate,
    SampledRun,
    SampledRunner,
    SamplingPlan,
    WindowSpec,
    estimate_windows,
    place_windows,
)
from repro.core.sim import SimReport, Simulator, simulate
from repro.core.recon_server import (
    ConfigureOutcome,
    Job,
    JobResult,
    ReconfigurationServer,
)
from repro.core.rewriter import (
    BUILTIN_RECIPES,
    MAC_RECIPE,
    POPCOUNT_RECIPE,
    SATADD_RECIPE,
    RewriteRecipe,
    install_recipes,
)
from repro.core.space import ConfigurationSpace
from repro.core.sweep import (
    MatrixCell,
    MatrixOutcome,
    ResultCache,
    SweepOutcome,
    SweepPoint,
    SweepRunner,
    SweepStats,
    best_point,
    image_digest,
    pareto_front,
)
from repro.core.synthesis import (
    Bitfile,
    DeviceUtilization,
    SynthesisError,
    SynthesisModel,
    figure10_table,
)
from repro.core.trace_analyzer import (
    AnalysisReport,
    Recommendation,
    TraceAnalyzer,
)

__all__ = [
    "BASELINE",
    "ArchitectureConfig",
    "ExtensionSpec",
    "ArchitectureGenerator",
    "ExplorationResult",
    "LiquidProcessorSystem",
    "ProgramRun",
    "CacheOutcome",
    "ReconCacheThrashWarning",
    "ReconfigurationCache",
    "Estimate",
    "SampledRun",
    "SampledRunner",
    "SamplingPlan",
    "WindowSpec",
    "estimate_windows",
    "place_windows",
    "SimReport",
    "Simulator",
    "simulate",
    "ConfigureOutcome",
    "Job",
    "JobResult",
    "ReconfigurationServer",
    "BUILTIN_RECIPES",
    "MAC_RECIPE",
    "POPCOUNT_RECIPE",
    "SATADD_RECIPE",
    "RewriteRecipe",
    "install_recipes",
    "ConfigurationSpace",
    "ResultCache",
    "MatrixCell",
    "MatrixOutcome",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "SweepStats",
    "best_point",
    "image_digest",
    "pareto_front",
    "Bitfile",
    "DeviceUtilization",
    "SynthesisError",
    "SynthesisModel",
    "figure10_table",
    "AnalysisReport",
    "Recommendation",
    "TraceAnalyzer",
]
