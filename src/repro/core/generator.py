"""Architecture Generator: exploring the configuration space (Figure 1).

"The applications developer explores reconfigurability options."  Two
strategies are provided:

* :meth:`sweep` — run the application on *every* point of a
  :class:`ConfigurationSpace` via the reconfiguration server, measuring
  real cycle counts (this is how Figures 8/9 are produced);
* :meth:`trace_guided` — run once under an instrumented configuration,
  let the :class:`TraceAnalyzer` shortlist candidates from the offline
  miss curve, then measure only the shortlist.  Far fewer syntheses for
  the same answer — the quantitative version of the paper's "identify
  candidate portions ... whose performance could be improved".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.trace import TraceRecorder
from repro.control.client import LiquidClient
from repro.control.transport import DirectTransport
from repro.core.config import ArchitectureConfig
from repro.core.recon_server import Job, ReconfigurationServer
from repro.core.space import ConfigurationSpace
from repro.core.trace_analyzer import AnalysisReport, TraceAnalyzer
from repro.fpx.platform import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.toolchain.objfile import Image


@dataclass(frozen=True)
class Measurement:
    config: ArchitectureConfig
    cycles: int
    seconds: float          # at the bitfile's synthesized frequency
    frequency_mhz: float
    result_word: int | None
    cache_hit: bool


@dataclass
class ExplorationResult:
    measurements: list[Measurement] = field(default_factory=list)
    trace_report: AnalysisReport | None = None
    configs_considered: int = 0
    configs_measured: int = 0

    @property
    def best(self) -> Measurement:
        if not self.measurements:
            raise ValueError("nothing measured")
        return min(self.measurements, key=lambda m: m.seconds)

    def best_by_cycles(self) -> Measurement:
        return min(self.measurements, key=lambda m: m.cycles)

    def table(self) -> list[tuple[str, int, float]]:
        return [(m.config.key(), m.cycles, m.seconds)
                for m in self.measurements]


class ArchitectureGenerator:
    def __init__(self, server: ReconfigurationServer | None = None,
                 analyzer: TraceAnalyzer | None = None):
        self.server = server or ReconfigurationServer()
        self.analyzer = analyzer or TraceAnalyzer()

    # ------------------------------------------------------------------
    # Exhaustive sweep
    # ------------------------------------------------------------------

    def sweep(self, image: Image, space: ConfigurationSpace,
              name: str = "sweep",
              max_instructions: int = 50_000_000) -> ExplorationResult:
        result = ExplorationResult()
        for config in space:
            measurement = self._measure(image, config, name,
                                        max_instructions)
            result.measurements.append(measurement)
            result.configs_considered += 1
            result.configs_measured += 1
        return result

    def _measure(self, image: Image, config: ArchitectureConfig,
                 name: str, max_instructions: int) -> Measurement:
        job = Job(image=image, config=config, name=name,
                  max_instructions=max_instructions)
        job_result = self.server.run_job(job)
        frequency = self.server.current_bitfile.utilization.frequency_mhz
        return Measurement(
            config=config,
            cycles=job_result.cycles,
            seconds=job_result.seconds_execution,
            frequency_mhz=frequency,
            result_word=job_result.result_word,
            cache_hit=job_result.cache_hit,
        )

    # ------------------------------------------------------------------
    # Trace-guided exploration
    # ------------------------------------------------------------------

    def trace_guided(self, image: Image, space: ConfigurationSpace,
                     name: str = "trace-guided",
                     shortlist: int = 2,
                     max_instructions: int = 50_000_000) -> ExplorationResult:
        """Capture one trace under the base config, rank the space's
        dcache sizes by the offline miss curve, and measure only the
        most promising *shortlist* points (plus the base)."""
        result = ExplorationResult()
        configs = space.points()
        result.configs_considered = len(configs)

        # 1. Instrumented run under the base configuration.
        base_config = space.base
        platform = FPXPlatform(base_config.platform_config())
        platform.boot()
        recorder = TraceRecorder().attach(platform.dcache)
        client = LiquidClient(DirectTransport(
            platform, platform.config.device_ip,
            platform.config.control_port))
        base_run = client.run_image(image,
                                    result_addr=DEFAULT_MAP.result_addr,
                                    max_instructions=max_instructions)
        trace = recorder.trace()

        # 2. Offline analysis over the candidate cache sizes in the space.
        sizes = sorted({config.dcache.size for config in configs})
        analyzer = TraceAnalyzer(candidate_sizes=sizes,
                                 miss_rate_target=self.analyzer.miss_rate_target,
                                 stride_threshold=self.analyzer.stride_threshold)
        report = analyzer.analyze(trace,
                                  line_size=base_config.dcache.line_size)
        result.trace_report = report

        # 3. Shortlist: configs whose dcache size ranks best on the curve.
        ranked_sizes = [point.cache_bytes
                        for point in sorted(report.miss_curve,
                                            key=lambda p: (p.miss_rate,
                                                           p.cache_bytes))]
        chosen_sizes = ranked_sizes[:shortlist]
        shortlist_configs = [config for config in configs
                             if config.dcache.size in chosen_sizes]

        # 4. Measure the shortlist on real (model) hardware.
        for config in shortlist_configs:
            measurement = self._measure(image, config, name,
                                        max_instructions)
            result.measurements.append(measurement)
            result.configs_measured += 1
        # Include the instrumented base run as a measurement too.
        base_frequency = 30.0
        result.measurements.append(Measurement(
            config=base_config,
            cycles=base_run.cycles,
            seconds=base_run.cycles / (base_frequency * 1e6),
            frequency_mhz=base_frequency,
            result_word=base_run.result_word,
            cache_hit=True,
        ))
        result.configs_measured += 1
        return result
