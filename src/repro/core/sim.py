"""Sim — the simulation box of Figure 1.

"Based on the reconfigured architecture and the automatically rewritten
application, simulation can provide additional instruction traces to
assist the developer in evaluating the effectiveness of the current
configuration."

:class:`Simulator` runs an image on a standalone Liquid processor
system — same CPU, caches, buses, boot ROM and memory as the FPX node,
but with no network stack and no leon_ctrl, so it is the fast inner
loop of architecture exploration and it can capture *instruction*
traces (the FPX streams only memory traces off the board).  A
:class:`SimReport` carries cycles, CPI, per-class instruction mix,
cache statistics, and the raw traces for the Trace Analyzer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from dataclasses import field as dataclass_field

import numpy as np

from repro.analysis.trace import MemoryTrace, TraceRecorder
from repro.bus.ahb import AhbBus
from repro.bus.apb import ApbBridge
from repro.cache import CacheController
from repro.core.config import ArchitectureConfig
from repro.core.rewriter import BUILTIN_RECIPES, install_recipes
from repro.cpu import IntegerUnit
from repro.cpu.isa import (
    OP_BRANCH_SETHI,
    OP_CALL,
    OP_MEM,
    OP2_BICC,
    Op3,
    Op3Mem,
)
from repro.mem.bootrom import BootRom, build_boot_rom
from repro.mem.memmap import (
    CYCLE_COUNTER_OFFSET,
    IOPORT_OFFSET,
    UART_OFFSET,
    MemoryMap,
)
from repro.mem.sram import SramBank
from repro.obs.collect import point_snapshot, simulator_snapshot
from repro.obs.events import EventTrace
from repro.peripherals import Clock, CycleCounter, LedPort, Uart
from repro.toolchain.objfile import Image

_LOAD_OPS = {Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
             Op3Mem.LDD, Op3Mem.LDSTUB, Op3Mem.SWAP}
_STORE_OPS = {Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD}
_MUL_DIV = {Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC,
            Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC}


def _classify(inst) -> str:
    if inst.op == OP_CALL:
        return "call"
    if inst.op == OP_BRANCH_SETHI:
        return "branch" if inst.op2 == OP2_BICC else "sethi"
    if inst.op == OP_MEM:
        if inst.op3 in _LOAD_OPS:
            return "load"
        if inst.op3 in _STORE_OPS:
            return "store"
        return "mem-other"
    if inst.op3 in _MUL_DIV:
        return "muldiv"
    if inst.op3 in (Op3.SAVE, Op3.RESTORE):
        return "window"
    if inst.op3 in (Op3.CPOP1, Op3.CPOP2):
        return "custom"
    if inst.op3 in (Op3.JMPL, Op3.RETT, Op3.TICC):
        return "jump"
    return "alu"


@dataclass
class SimReport:
    """What one simulated execution measured."""

    cycles: int
    instructions: int
    instruction_mix: dict[str, int]
    dcache: dict
    icache: dict
    memory_trace: MemoryTrace
    result_word: int | None
    uart_output: bytes
    #: Program-window metrics snapshot (repro.obs schema: counters /
    #: gauges / histograms), covering exactly the measured execution —
    #: the same window the FPX cycle counter arms over.  Empty when the
    #: simulator was built with ``obs=False``.
    obs: dict = dataclass_field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"cycles       : {self.cycles}",
            f"instructions : {self.instructions}",
            f"CPI          : {self.cpi:.3f}",
            f"D-cache      : {self.dcache['read_hits']} hits / "
            f"{self.dcache['read_misses']} misses",
            "instruction mix:",
        ]
        total = max(self.instructions, 1)
        for name, count in sorted(self.instruction_mix.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {name:<9} {count:>8}  ({count / total:.1%})")
        return lines


class Simulator:
    """Standalone Liquid processor system (no network, no leon_ctrl)."""

    def __init__(self, config: ArchitectureConfig | None = None,
                 capture_memory_trace: bool = True, recipes=None,
                 obs: bool = True):
        self.config = config or ArchitectureConfig()
        cfg = self.config
        self.memmap = MemoryMap()
        memmap = self.memmap

        rom_info = build_boot_rom(memmap, cfg.nwindows, modified=True)
        self.rom_info = rom_info
        self.clock = Clock()
        self.uart = Uart()
        self.leds = LedPort(self.clock)
        self.cycle_counter = CycleCounter(self.clock)

        self.bus = AhbBus()
        self.bus.attach(BootRom(memmap.prom_base, memmap.prom_size,
                                rom_info.image),
                        memmap.prom_base, memmap.prom_size, "prom")
        self.sram = SramBank(memmap.sram_base, memmap.sram_size)
        self.bus.attach(self.sram, memmap.sram_base, memmap.sram_size,
                        "sram")
        self.apb = apb = ApbBridge(memmap.apb_base)
        apb.attach(self.uart, UART_OFFSET, 0x10, "uart")
        apb.attach(self.leds, IOPORT_OFFSET, 0x10, "ioport")
        apb.attach(self.cycle_counter, CYCLE_COUNTER_OFFSET, 0x10,
                   "cycle_counter")
        self.bus.attach(apb, memmap.apb_base, memmap.apb_size, "apb")

        self.icache = CacheController(cfg.icache, self.bus, memmap.cacheable,
                                      name="icache")
        self.dcache = CacheController(cfg.dcache, self.bus, memmap.cacheable,
                                      name="dcache", prefetch=cfg.prefetch)
        self.cpu = IntegerUnit(self.icache, self.dcache,
                               nwindows=cfg.nwindows, timing=cfg.timing(),
                               reset_pc=memmap.prom_base)
        install_recipes(self.cpu, cfg, recipes or BUILTIN_RECIPES)

        self.recorder = TraceRecorder() if capture_memory_trace else None
        if self.recorder is not None:
            self.recorder.attach(self.dcache)

        # Telemetry (repro.obs): cycle-stamped control-plane events plus
        # per-point metrics snapshots.  Disabled, both are no-ops.
        self.obs_enabled = obs
        self.events = EventTrace(enabled=obs)
        if obs:
            self.cpu.on_trap = lambda tt, pc: self.events.record(
                self.cpu.cycles, "trap", tt=tt, pc=pc)

    # ------------------------------------------------------------------

    def run(self, image: Image,
            max_instructions: int = 50_000_000) -> SimReport:
        """Boot, dispatch *image*, run it to completion, report."""
        cpu = self.cpu
        poll = self.rom_info.poll_address

        # Boot to the polling loop.
        cpu.run(max_instructions=100_000, until_pc=poll)

        # Load the program and set the mailbox directly (the Sim box has
        # no network: it plays leon_ctrl's role itself).
        for base, blob in image.segments.items():
            self.sram.host_write(base, blob)
        self.sram.host_write_word(self.memmap.mailbox_start, image.entry)

        # Instrument the program's execution only.
        mix: Counter[str] = Counter()
        cpu.on_retire = lambda pc, inst: mix.update((_classify(inst),))
        if self.recorder is not None:
            self.recorder.clear()

        # Run to the program entry, snapshot, run until return-to-poll.
        cpu.run(max_instructions=10_000, until_pc=image.entry)
        start_cycles, start_instret = cpu.cycles, cpu.instret
        mix.clear()
        if self.recorder is not None:
            self.recorder.clear()
        before = simulator_snapshot(self) if self.obs_enabled else None
        self.events.record(cpu.cycles, "dispatch", entry=image.entry)
        cpu.run(max_instructions=max_instructions, until_pc=poll)
        cpu.on_retire = None
        self.events.record(cpu.cycles, "done",
                           cycles=cpu.cycles - start_cycles)
        obs = (point_snapshot(simulator_snapshot(self), before)
               if self.obs_enabled else {})

        # Clear the mailbox so the polling loop parks instead of
        # re-dispatching (leon_ctrl's job on the real platform).
        self.sram.host_write_word(self.memmap.mailbox_start, 0)

        if self.recorder is not None:
            trace = self.recorder.trace()
        else:
            trace = MemoryTrace(np.zeros(0, np.uint64), np.zeros(0, np.uint8),
                                np.zeros(0, bool), np.zeros(0, bool))
        return SimReport(
            cycles=cpu.cycles - start_cycles,
            instructions=cpu.instret - start_instret,
            instruction_mix=dict(mix),
            dcache=self.dcache.stats_dict(),
            icache=self.icache.stats_dict(),
            memory_trace=trace,
            result_word=self.sram.host_read_word(self.memmap.result_addr),
            uart_output=self.uart.transmitted(),
            obs=obs,
        )


def simulate(image: Image, config: ArchitectureConfig | None = None,
             max_instructions: int = 50_000_000) -> SimReport:
    """One-call Sim-box run: fresh simulator, one image, one report."""
    return Simulator(config).run(image, max_instructions)
