"""Sim — the simulation box of Figure 1.

"Based on the reconfigured architecture and the automatically rewritten
application, simulation can provide additional instruction traces to
assist the developer in evaluating the effectiveness of the current
configuration."

:class:`Simulator` runs an image on a standalone Liquid processor
system — same CPU, caches, buses, boot ROM and memory as the FPX node,
but with no network stack and no leon_ctrl, so it is the fast inner
loop of architecture exploration and it can capture *instruction*
traces (the FPX streams only memory traces off the board).  A
:class:`SimReport` carries cycles, CPI, per-class instruction mix,
cache statistics, and the raw traces for the Trace Analyzer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from dataclasses import field as dataclass_field

import numpy as np

from repro.analysis.trace import MemoryTrace, TraceRecorder
from repro.bus.ahb import AhbBus
from repro.bus.apb import ApbBridge
from repro.cache import CacheController
from repro.core.config import ArchitectureConfig
from repro.core.rewriter import BUILTIN_RECIPES, install_recipes
from repro.cpu import IntegerUnit
from repro.cpu.archstate import ArchState
from repro.cpu.blockcache import TranslatedUnit
from repro.cpu.fastpath import FastMemory, FunctionalUnit
from repro.cpu.isa import (
    OP_BRANCH_SETHI,
    OP_CALL,
    OP_MEM,
    OP2_BICC,
    Op3,
    Op3Mem,
)
from repro.mem.bootrom import BootRom, build_boot_rom
from repro.mem.memmap import (
    CYCLE_COUNTER_OFFSET,
    IOPORT_OFFSET,
    UART_OFFSET,
    MemoryMap,
)
from repro.mem.sram import SramBank
from repro.obs.collect import point_snapshot, simulator_snapshot
from repro.obs.events import EventTrace
from repro.peripherals import Clock, CycleCounter, LedPort, Uart
from repro.toolchain.objfile import Image

_LOAD_OPS = {Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
             Op3Mem.LDD, Op3Mem.LDSTUB, Op3Mem.SWAP}
_STORE_OPS = {Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD}
_MUL_DIV = {Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC,
            Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC}


def _classify(inst) -> str:
    if inst.op == OP_CALL:
        return "call"
    if inst.op == OP_BRANCH_SETHI:
        return "branch" if inst.op2 == OP2_BICC else "sethi"
    if inst.op == OP_MEM:
        if inst.op3 in _LOAD_OPS:
            return "load"
        if inst.op3 in _STORE_OPS:
            return "store"
        return "mem-other"
    if inst.op3 in _MUL_DIV:
        return "muldiv"
    if inst.op3 in (Op3.SAVE, Op3.RESTORE):
        return "window"
    if inst.op3 in (Op3.CPOP1, Op3.CPOP2):
        return "custom"
    if inst.op3 in (Op3.JMPL, Op3.RETT, Op3.TICC):
        return "jump"
    return "alu"


@dataclass
class SimReport:
    """What one simulated execution measured."""

    cycles: int
    instructions: int
    instruction_mix: dict[str, int]
    dcache: dict
    icache: dict
    memory_trace: MemoryTrace
    result_word: int | None
    uart_output: bytes
    #: Program-window metrics snapshot (repro.obs schema: counters /
    #: gauges / histograms), covering exactly the measured execution —
    #: the same window the FPX cycle counter arms over.  Empty when the
    #: simulator was built with ``obs=False``.
    obs: dict = dataclass_field(default_factory=dict)
    #: Two-speed provenance: how the machine reached the measured window
    #: (warmup engine, fast-forwarded steps).  Empty for a cold whole-
    #: program run; never part of the report's identity.
    fastpath: dict = dataclass_field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"cycles       : {self.cycles}",
            f"instructions : {self.instructions}",
            f"CPI          : {self.cpi:.3f}",
            f"D-cache      : {self.dcache['read_hits']} hits / "
            f"{self.dcache['read_misses']} misses",
            "instruction mix:",
        ]
        total = max(self.instructions, 1)
        for name, count in sorted(self.instruction_mix.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {name:<9} {count:>8}  ({count / total:.1%})")
        return lines


class Simulator:
    """Standalone Liquid processor system (no network, no leon_ctrl)."""

    def __init__(self, config: ArchitectureConfig | None = None,
                 capture_memory_trace: bool = True, recipes=None,
                 obs: bool = True):
        self.config = config or ArchitectureConfig()
        cfg = self.config
        self.memmap = MemoryMap()
        memmap = self.memmap

        rom_info = build_boot_rom(memmap, cfg.nwindows, modified=True)
        self.rom_info = rom_info
        self.clock = Clock()
        self.uart = Uart()
        self.leds = LedPort(self.clock)
        self.cycle_counter = CycleCounter(self.clock)

        self.bus = AhbBus()
        self.prom = BootRom(memmap.prom_base, memmap.prom_size,
                            rom_info.image)
        self.bus.attach(self.prom, memmap.prom_base, memmap.prom_size,
                        "prom")
        self.sram = SramBank(memmap.sram_base, memmap.sram_size)
        self.bus.attach(self.sram, memmap.sram_base, memmap.sram_size,
                        "sram")
        self.apb = apb = ApbBridge(memmap.apb_base)
        apb.attach(self.uart, UART_OFFSET, 0x10, "uart")
        apb.attach(self.leds, IOPORT_OFFSET, 0x10, "ioport")
        apb.attach(self.cycle_counter, CYCLE_COUNTER_OFFSET, 0x10,
                   "cycle_counter")
        self.bus.attach(apb, memmap.apb_base, memmap.apb_size, "apb")

        self.icache = CacheController(cfg.icache, self.bus, memmap.cacheable,
                                      name="icache")
        self.dcache = CacheController(cfg.dcache, self.bus, memmap.cacheable,
                                      name="dcache", prefetch=cfg.prefetch)
        self.cpu = IntegerUnit(self.icache, self.dcache,
                               nwindows=cfg.nwindows, timing=cfg.timing(),
                               reset_pc=memmap.prom_base)
        install_recipes(self.cpu, cfg, recipes or BUILTIN_RECIPES)

        self.recorder = TraceRecorder() if capture_memory_trace else None
        if self.recorder is not None:
            self.recorder.attach(self.dcache)

        # Two-speed execution accounting (published as the fastpath.*
        # obs series).  Native ints, same convention as the CPU's stall
        # counters.
        self.fastpath_instructions = 0   # steps executed functionally
        self.fastpath_retired = 0        # of which retired instructions
        self.fastpath_handoffs = 0       # fast->accurate engine handoffs
        self.fastpath_blocks_translated = 0   # blocks compiled
        self.fastpath_blocks_executed = 0     # block executions
        self.fastpath_blocks_invalidated = 0  # blocks dropped (SMC/flush)
        self.checkpoint_captures = 0
        self.checkpoint_restores = 0

        # Sampled-simulation accounting (published as the sampling.*
        # obs series by repro.obs.collect.collect_sampling).
        self.sampling_runs = 0
        self.sampling_windows = 0
        self.sampling_checkpoints = 0
        self.sampling_survey_steps = 0
        self.sampling_ff_steps = 0
        self.sampling_ramp_steps = 0
        self.sampling_measured_steps = 0

        # Telemetry (repro.obs): cycle-stamped control-plane events plus
        # per-point metrics snapshots.  Disabled, both are no-ops.
        self.obs_enabled = obs
        self.events = EventTrace(enabled=obs)
        if obs:
            self.cpu.on_trap = lambda tt, pc: self.events.record(
                self.cpu.cycles, "trap", tt=tt, pc=pc)

    # ------------------------------------------------------------------
    # Two-speed execution: functional fast path + checkpoints
    # ------------------------------------------------------------------

    def functional_unit(self) -> FunctionalUnit:
        """A functional executor over this simulator's *live* machine.

        Registers, control registers, decode cache, extensions and ASRs
        are shared by reference with the cycle-accurate unit; memory is
        the same SRAM/PROM byte arrays viewed flat, with the APB mapped
        through so peripheral side effects land on the same devices.
        Only PC/nPC/annul (copied in here) and the retirement counters
        are private — :meth:`_sync_from_functional` copies them back.
        """
        return self._fast_unit(FunctionalUnit)

    def translated_unit(self) -> TranslatedUnit:
        """Like :meth:`functional_unit`, but with the basic-block
        translation cache (:class:`~repro.cpu.blockcache.TranslatedUnit`)
        — same architectural results, roughly an order of magnitude
        faster on straight-line-heavy code."""
        return self._fast_unit(TranslatedUnit)

    def _fast_unit(self, factory):
        cpu = self.cpu
        mem = FastMemory()
        mem.add_region(self.memmap.prom_base, self.prom.data,
                       writable=False, name="prom")
        mem.add_region(self.memmap.sram_base, self.sram.data, name="sram")
        mem.add_mmio(self.memmap.apb_base, self.memmap.apb_size, self.apb,
                     name="apb")
        fast = factory(mem, regs=cpu.regs, ctrl=cpu.ctrl,
                       decode_cache=cpu.decode_cache,
                       extensions=cpu.extensions, asr=cpu.asr,
                       reset_pc=self.memmap.prom_base)
        fast.pc, fast.npc, fast.annul = cpu.pc, cpu.npc, cpu.annul
        fast.halted, fast.error_tt = cpu.halted, cpu.error_tt
        fast.interrupt_source = cpu.interrupt_source
        return fast

    def _sync_from_functional(self, fast: FunctionalUnit) -> None:
        """Fold a functional execution leg back into the live machine."""
        cpu = self.cpu
        cpu.pc, cpu.npc, cpu.annul = fast.pc, fast.npc, fast.annul
        cpu.halted, cpu.error_tt = fast.halted, fast.error_tt
        cpu.trap_count += fast.trap_count
        self.fastpath_instructions += fast.cycles
        self.fastpath_retired += fast.instret
        self.fastpath_blocks_translated += getattr(
            fast, "blocks_translated", 0)
        self.fastpath_blocks_executed += getattr(fast, "blocks_executed", 0)
        self.fastpath_blocks_invalidated += getattr(
            fast, "blocks_invalidated", 0)

    @staticmethod
    def _warmup(engine, budget: int, poll: int) -> int:
        """Advance *engine* up to *budget* steps, stopping early if the
        program finishes (returns to the boot ROM's polling loop).
        Returns the steps actually executed.  Step-for-step identical on
        every engine, so ``fast_forward=N`` lands on the same
        architectural state no matter who executes the N steps."""
        fast_forward = getattr(engine, "fast_forward", None)
        if fast_forward is not None:
            return fast_forward(budget, stop_pc=poll)
        executed = 0
        while executed < budget and engine.pc != poll:
            engine.step()
            executed += 1
        return executed

    def _normalize_window_start(self) -> None:
        """Put the micro-architecture into the canonical handoff state.

        The architectural state at a handoff is exact; the caches,
        prefetchers and pipeline are not warmed by functional execution,
        so a measured window always begins from flushed-and-reset
        machinery.  Applying the same normalization after an *accurate*
        warmup (or a checkpoint restore) is what makes the measured
        window's report byte-identical across warmup engines.
        """
        self.icache.flush()
        self.dcache.flush()
        self.icache.reset_stats()
        self.dcache.reset_stats()
        self.cpu.pipeline.reset()

    def checkpoint_memory(self) -> dict:
        """ArchState protocol: name -> live byte buffer."""
        return {"sram": self.sram.data}

    def checkpoint_peripherals(self) -> dict:
        """ArchState protocol: name -> device with state()/load_state()."""
        return {"uart": self.uart, "leds": self.leds,
                "cycle_counter": self.cycle_counter}

    def checkpoint_rngs(self) -> dict:
        """ArchState protocol: name -> seeded RNG holder."""
        return {"icache": self.icache.cache, "dcache": self.dcache.cache}

    def capture_state(self, engine=None) -> ArchState:
        """Checkpoint the current architectural state.

        *engine* optionally names the executor whose position to
        capture (a functional/translated unit mid fast-forward) — see
        :meth:`ArchState.capture`."""
        state = ArchState.capture(self, engine=engine)
        self.checkpoint_captures += 1
        self.events.record(self.cpu.cycles, "checkpoint",
                           retired=state.retired)
        return state

    def restore_state(self, state: ArchState) -> None:
        """Adopt a previously captured architectural state."""
        state.restore(self)
        self.checkpoint_restores += 1

    def checkpoint(self, image: Image, fast_forward: int,
                   warmup_engine: str = "translated") -> ArchState:
        """Boot, dispatch *image*, execute *fast_forward* steps of the
        program, and capture the state at the handoff point.

        The returned :class:`ArchState` can be restored into any
        simulator whose configuration shares this one's *architectural*
        shape (:meth:`ArchitectureConfig.arch_key`) — timing dimensions
        like cache geometry are free to differ, which is what lets one
        warmed checkpoint serve a whole sweep.
        """
        poll = self.rom_info.poll_address
        engine = self._boot_and_dispatch(image, warmup_engine)
        self._warmup(engine, fast_forward, poll)
        if isinstance(engine, FunctionalUnit):
            self._sync_from_functional(engine)
        return self.capture_state()

    def _boot_and_dispatch(self, image: Image, warmup_engine: str):
        """Boot to the polling loop, load *image*, run to its entry.
        Returns the engine (functional or cycle-accurate) that did it,
        positioned at the program's first instruction."""
        if warmup_engine not in ("fast", "translated", "accurate"):
            raise ValueError(f"unknown warmup engine '{warmup_engine}'")
        poll = self.rom_info.poll_address
        if warmup_engine == "translated":
            engine = self.translated_unit()
        elif warmup_engine == "fast":
            engine = self.functional_unit()
        else:
            engine = self.cpu
        engine.run(max_instructions=100_000, until_pc=poll)
        self._load_image(image)
        engine.run(max_instructions=10_000, until_pc=image.entry)
        return engine

    def _load_image(self, image: Image) -> None:
        """Deposit the program and set the mailbox (the Sim box has no
        network: it plays leon_ctrl's role itself)."""
        for base, blob in image.segments.items():
            self.sram.host_write(base, blob)
        self.sram.host_write_word(self.memmap.mailbox_start, image.entry)

    # ------------------------------------------------------------------

    def run(self, image: Image | None = None,
            max_instructions: int = 50_000_000, *,
            fast_forward: int = 0,
            warmup_engine: str = "translated",
            from_checkpoint: ArchState | None = None) -> SimReport:
        """Boot, dispatch *image*, run it to completion, report.

        Two-speed execution: with ``fast_forward=N``, the boot sequence
        and the program's first N steps execute on the block-translating
        fast path (``warmup_engine="fast"`` uses single-instruction
        functional dispatch instead; ``"accurate"`` keeps them
        cycle-accurate — the differential baseline), then the machine is
        normalized
        (caches flushed, statistics zeroed) and handed to the
        cycle-accurate engine, whose *measured window* covers only the
        rest of the program.  ``from_checkpoint`` skips warmup entirely
        by restoring an :class:`~repro.cpu.archstate.ArchState` captured
        by :meth:`checkpoint` — no ``image`` needed, it lives in the
        checkpoint's memory.  All three warm starts produce
        byte-identical reports for the same window.

        The default (``fast_forward=0``, no checkpoint) measures the
        whole program cycle-accurately, exactly as before.
        """
        if fast_forward < 0:
            raise ValueError("fast_forward must be >= 0")
        cpu = self.cpu
        poll = self.rom_info.poll_address

        warmup_instructions = 0
        if from_checkpoint is not None:
            self.restore_state(from_checkpoint)
            windowed = True
            provenance = "checkpoint"
        else:
            if image is None:
                raise ValueError(
                    "run() needs an image unless from_checkpoint is given")
            engine = self._boot_and_dispatch(image, warmup_engine
                                             if fast_forward else "accurate")
            if fast_forward:
                warmup_instructions = self._warmup(engine, fast_forward, poll)
            if isinstance(engine, FunctionalUnit):
                self._sync_from_functional(engine)
            windowed = fast_forward > 0
            provenance = warmup_engine if windowed else "none"
        if windowed:
            self.fastpath_handoffs += 1
            self._normalize_window_start()
            self.events.record(cpu.cycles, "handoff", engine=provenance,
                               warmup_instructions=warmup_instructions)

        # Instrument the measured window only.
        mix: Counter[str] = Counter()
        cpu.on_retire = lambda pc, inst: mix.update((_classify(inst),))
        if self.recorder is not None:
            self.recorder.clear()

        start_cycles, start_instret = cpu.cycles, cpu.instret
        before = simulator_snapshot(self) if self.obs_enabled else None
        self.events.record(cpu.cycles, "dispatch", entry=cpu.pc)
        cpu.run(max_instructions=max_instructions, until_pc=poll)
        cpu.on_retire = None
        self.events.record(cpu.cycles, "done",
                           cycles=cpu.cycles - start_cycles)
        obs = (point_snapshot(simulator_snapshot(self), before)
               if self.obs_enabled else {})

        # Clear the mailbox so the polling loop parks instead of
        # re-dispatching (leon_ctrl's job on the real platform).
        self.sram.host_write_word(self.memmap.mailbox_start, 0)

        if self.recorder is not None:
            trace = self.recorder.trace()
        else:
            trace = MemoryTrace(np.zeros(0, np.uint64), np.zeros(0, np.uint8),
                                np.zeros(0, bool), np.zeros(0, bool))
        fastpath = ({"fast_forward": fast_forward,
                     "warmup_engine": provenance,
                     "warmup_instructions": warmup_instructions}
                    if windowed else {})
        return SimReport(
            cycles=cpu.cycles - start_cycles,
            instructions=cpu.instret - start_instret,
            instruction_mix=dict(mix),
            dcache=self.dcache.stats_dict(),
            icache=self.icache.stats_dict(),
            memory_trace=trace,
            result_word=self.sram.host_read_word(self.memmap.result_addr),
            uart_output=self.uart.transmitted(),
            obs=obs,
            fastpath=fastpath,
        )

    def run_sampled(self, image: Image, plan,
                    max_instructions: int = 50_000_000):
        """SMARTS-style sampled run: execute *image* under *plan* (a
        :class:`~repro.core.sampling.SamplingPlan`) — translated
        fast-forward between checkpointed, cycle-accurate measurement
        windows — and return the :class:`~repro.core.sampling.SampledRun`
        carrying per-window observations and CLT confidence intervals.

        The measurement itself runs in fresh simulators built from this
        one's config (a pure function of ``(image, config, plan)``);
        this simulator accumulates the ``sampling.*`` accounting so its
        obs snapshots cover the sampled work.
        """
        from repro.core.sampling import SampledRunner

        runner = SampledRunner(self.config)
        run = runner.run(image, plan, max_instructions=max_instructions)
        counters = runner.counters
        self.sampling_runs += counters["runs"]
        self.sampling_windows += counters["windows"]
        self.sampling_checkpoints += counters["checkpoints"]
        self.sampling_survey_steps += counters["survey_steps"]
        self.sampling_ff_steps += counters["ff_steps"]
        self.sampling_ramp_steps += counters["ramp_steps"]
        self.sampling_measured_steps += counters["measured_steps"]
        self.events.record(self.cpu.cycles, "sampled",
                           windows=len(run.windows),
                           estimated_cycles=round(run.estimated_cycles))
        return run

    def run_functional(self, image: Image,
                       max_instructions: int = 50_000_000) -> SimReport:
        """Run *image* to completion entirely on the functional fast
        path: full architectural fidelity (registers, traps, memory,
        peripheral side effects), no timing at all.  ``cycles`` in the
        report equals the window's step count (CPI 1.0 by construction)
        and the cache sections are all-zero — this mode answers "what
        does the program compute", not "how fast".
        """
        return self._run_fast(image, max_instructions, "fast")

    def run_translated(self, image: Image,
                       max_instructions: int = 50_000_000) -> SimReport:
        """Like :meth:`run_functional`, on the block-translating engine:
        byte-identical architectural results (the differential suite
        holds both against the accurate engine), several times faster,
        with the block-cache counters in the report's ``fastpath``
        section."""
        return self._run_fast(image, max_instructions, "translated")

    def _run_fast(self, image: Image, max_instructions: int,
                  engine_name: str) -> SimReport:
        poll = self.rom_info.poll_address
        fast = self._boot_and_dispatch(image, engine_name)

        mix: Counter[str] = Counter()
        fast.on_retire = lambda pc, inst: mix.update((_classify(inst),))
        start_steps, start_instret = fast.cycles, fast.instret
        self.events.record(fast.cycles, "dispatch", entry=image.entry)
        fast.run(max_instructions=max_instructions, until_pc=poll)
        fast.on_retire = None
        window = fast.cycles - start_steps
        retired = fast.instret - start_instret
        self.events.record(fast.cycles, "done", cycles=window)
        self._sync_from_functional(fast)
        self.sram.host_write_word(self.memmap.mailbox_start, 0)

        fastpath = {"engine": engine_name, "steps": window}
        if engine_name == "translated":
            fastpath["blocks_translated"] = fast.blocks_translated
            fastpath["blocks_executed"] = fast.blocks_executed
            fastpath["blocks_invalidated"] = fast.blocks_invalidated
        empty_trace = MemoryTrace(np.zeros(0, np.uint64),
                                  np.zeros(0, np.uint8),
                                  np.zeros(0, bool), np.zeros(0, bool))
        return SimReport(
            cycles=window,
            instructions=retired,
            instruction_mix=dict(mix),
            dcache=self.dcache.stats_dict(),
            icache=self.icache.stats_dict(),
            memory_trace=empty_trace,
            result_word=self.sram.host_read_word(self.memmap.result_addr),
            uart_output=self.uart.transmitted(),
            obs={},
            fastpath=fastpath,
        )


def simulate(image: Image, config: ArchitectureConfig | None = None,
             max_instructions: int = 50_000_000) -> SimReport:
    """One-call Sim-box run: fresh simulator, one image, one report."""
    return Simulator(config).run(image, max_instructions)
