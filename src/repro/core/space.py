"""ConfigurationSpace: the enumerable parameter space of Figure 1.

"We are currently experimenting with an approach based on precompiled
FPGA images for many points in a configuration space."  A space is a set
of named dimensions over a base :class:`ArchitectureConfig`; iterating
yields the cross product.  The paper's own experiment is
:meth:`ConfigurationSpace.paper_cache_sweep`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.cache.cache import CacheGeometry
from repro.core.config import ArchitectureConfig

Setter = Callable[[ArchitectureConfig, object], ArchitectureConfig]


def _set_dcache_size(config: ArchitectureConfig, size) -> ArchitectureConfig:
    return config.with_dcache_size(int(size))


def _set_icache_size(config: ArchitectureConfig, size) -> ArchitectureConfig:
    return replace(config, icache=CacheGeometry(
        size=int(size), line_size=config.icache.line_size,
        ways=config.icache.ways, replacement=config.icache.replacement))


def _set_dcache_ways(config: ArchitectureConfig, ways) -> ArchitectureConfig:
    return replace(config, dcache=CacheGeometry(
        size=config.dcache.size, line_size=config.dcache.line_size,
        ways=int(ways), replacement="lru" if int(ways) > 1
        else config.dcache.replacement))


def _set_line_size(config: ArchitectureConfig, line) -> ArchitectureConfig:
    return replace(
        config,
        dcache=CacheGeometry(config.dcache.size, int(line),
                             config.dcache.ways, config.dcache.replacement),
        icache=CacheGeometry(config.icache.size, int(line),
                             config.icache.ways, config.icache.replacement),
    )


def _set_multiplier(config: ArchitectureConfig, mul) -> ArchitectureConfig:
    return replace(config, multiplier=str(mul))


def _set_nwindows(config: ArchitectureConfig, nw) -> ArchitectureConfig:
    return replace(config, nwindows=int(nw))


def _set_read_burst(config: ArchitectureConfig, words) -> ArchitectureConfig:
    return replace(config, adapter_read_burst=int(words))


def _set_prefetch(config: ArchitectureConfig, policy) -> ArchitectureConfig:
    return replace(config, prefetch=str(policy))


def _set_pipeline_depth(config: ArchitectureConfig, depth) -> ArchitectureConfig:
    return replace(config, pipeline_depth=int(depth))


#: Dimension name -> setter.  New dimensions register here.
DIMENSION_SETTERS: dict[str, Setter] = {
    "dcache_size": _set_dcache_size,
    "icache_size": _set_icache_size,
    "dcache_ways": _set_dcache_ways,
    "line_size": _set_line_size,
    "multiplier": _set_multiplier,
    "nwindows": _set_nwindows,
    "adapter_read_burst": _set_read_burst,
    "prefetch": _set_prefetch,
    "pipeline_depth": _set_pipeline_depth,
}


@dataclass
class ConfigurationSpace:
    """Cross product of dimension values over a base configuration."""

    base: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    dimensions: dict[str, list] = field(default_factory=dict)

    def add_dimension(self, name: str, values: list) -> "ConfigurationSpace":
        if name not in DIMENSION_SETTERS:
            raise KeyError(f"unknown dimension '{name}' "
                           f"(have {sorted(DIMENSION_SETTERS)})")
        if not values:
            raise ValueError(f"dimension '{name}' needs at least one value")
        self.dimensions[name] = list(values)
        return self

    @property
    def size(self) -> int:
        total = 1
        for values in self.dimensions.values():
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[ArchitectureConfig]:
        names = list(self.dimensions)
        for combo in itertools.product(*(self.dimensions[n] for n in names)):
            config = self.base
            for name, value in zip(names, combo):
                config = DIMENSION_SETTERS[name](config, value)
            yield config

    def points(self) -> list[ArchitectureConfig]:
        return list(self)

    # ------------------------------------------------------------------
    # The paper's experiment
    # ------------------------------------------------------------------

    @classmethod
    def paper_cache_sweep(cls, base: ArchitectureConfig | None = None
                          ) -> "ConfigurationSpace":
        """§4: 'we changed the data cache size between 1KB and 16KB while
        keeping the cache line size constant at 32B and the instruction
        cache size constant at 1KB.'"""
        space = cls(base or ArchitectureConfig())
        space.add_dimension("dcache_size", [1024, 2048, 4096, 8192, 16384])
        return space
