"""Parallel sweep engine with a persistent result cache.

The paper's workflow evaluates an application across a pre-computed
configuration space: bitfiles are synthesized once per point, captured
in the reconfiguration cache, and re-used at runtime (Figure 1's
right-hand loop, the Figure 8 cache sweep).  This module is the software
analogue for the *evaluation* side of that loop:

* :class:`SweepRunner` evaluates every point of a
  :class:`~repro.core.space.ConfigurationSpace` against one or more
  images, either serially or across worker processes.  Both executors
  produce byte-identical results in the deterministic order of the
  space, so parallelism is purely a wall-clock optimisation.
* :class:`ResultCache` memoises finished points under
  ``(image digest, config fingerprint)`` with an in-memory layer and an
  optional on-disk JSON layer, so re-running a sweep skips
  already-simulated points the way the paper skips re-synthesis.
* :func:`best_point` and :func:`pareto_front` are the selection helpers
  the architecture-exploration loop ends with: fastest point, and the
  cycles-vs-area frontier from the :class:`~repro.core.synthesis`
  model.

Per-point wall timing, cache hit/miss counters and a progress callback
make long sweeps observable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.config import ArchitectureConfig
from repro.core.sampling import SampledRunner, SamplingPlan
from repro.core.sim import Simulator
from repro.core.synthesis import SynthesisModel
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.toolchain.objfile import Image

#: Bumped whenever the cached record layout changes; stale on-disk
#: records are treated as misses rather than mis-parsed.
#: v2: records carry the per-point ``obs`` metrics snapshot.
#: v3: fingerprints gain a ``-ff<N>`` suffix for fast-forwarded sweeps,
#: so windowed and whole-program measurements never collide.
#: v4: checkpoint-building warmups run on the block-translating engine
#: (architecturally identical, but conservatively invalidate anything
#: produced before the translator existed).
#: v5: sampled sweeps (``sweep(sampling=...)``): records may carry a
#: ``sampled`` section (point estimate + CI + per-window observations),
#: and every point snapshot gains the ``sampling.*`` counter series.
SCHEMA_VERSION = 5

#: Layout version of persisted warmed checkpoints (see
#: :meth:`ResultCache.put_checkpoint`); the wrapped
#: :class:`~repro.cpu.archstate.ArchState` payload carries its own
#: schema number on top of this.  v2: built by the translated engine.
CHECKPOINT_SCHEMA = 2

#: Default instruction budget per simulated point.
DEFAULT_MAX_INSTRUCTIONS = 20_000_000

ProgressCallback = Callable[[int, int, "SweepPoint"], None]


def image_digest(image: Image) -> str:
    """Stable identity of a linked image (entry + every placed byte)."""
    h = hashlib.sha256()
    h.update(image.entry.to_bytes(4, "big"))
    for base in sorted(image.segments):
        data = image.segments[base]
        h.update(base.to_bytes(4, "big"))
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated (image, configuration) pair."""

    index: int
    config: ArchitectureConfig
    image_digest: str
    fingerprint: str
    cycles: int
    instructions: int
    instruction_mix: dict
    dcache: dict
    icache: dict
    result_word: int | None
    uart_hex: str
    frequency_mhz: float
    slices: int
    block_rams: int
    #: Program-window metrics snapshot (repro.obs schema).  Built purely
    #: from simulation-derived counters, so it is part of the
    #: determinism contract and persists with the cached record.
    obs: dict
    #: Sampled-simulation section (``SampledRun.to_record()``) for
    #: points evaluated under a :class:`SamplingPlan`: point estimate,
    #: confidence intervals and per-window observations.  ``None`` for
    #: full-detail points.
    sampled: dict | None
    #: 'simulated' | 'memory' | 'disk' — where this point came from.
    source: str
    #: Host seconds spent producing the point (≈0 for cache hits).
    wall_seconds: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def seconds(self) -> float:
        """Model time at the synthesis model's clock for this config."""
        return self.cycles / (self.frequency_mhz * 1e6)

    def report_fields(self) -> dict:
        """Everything the simulation measured — the identity-relevant
        fields, excluding provenance (``source``) and host timing."""
        fields = {
            "image_digest": self.image_digest,
            "fingerprint": self.fingerprint,
            "config_key": self.config.key(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": self.cpi,
            "instruction_mix": dict(self.instruction_mix),
            "dcache": self.dcache,
            "icache": self.icache,
            "result_word": self.result_word,
            "uart_hex": self.uart_hex,
            "frequency_mhz": self.frequency_mhz,
            "slices": self.slices,
            "block_rams": self.block_rams,
            "obs": self.obs,
        }
        if self.sampled is not None:
            fields["sampled"] = self.sampled
        return fields

    def canonical_json(self) -> str:
        """Byte-stable serialization of :meth:`report_fields` — equality
        of these strings is the sweep determinism contract."""
        return json.dumps(self.report_fields(), sort_keys=True,
                          separators=(",", ":"))


def best_point(points: Sequence[SweepPoint],
               metric: str = "seconds") -> SweepPoint:
    """The winning point by *metric* ('seconds', 'cycles', 'cpi', ...);
    ties break toward the earlier point in sweep order."""
    if not points:
        raise ValueError("no points to choose from")
    return min(points, key=lambda p: (getattr(p, metric), p.index))


def pareto_front(points: Sequence[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated on (cycles, slices) — the speed/area
    frontier, smallest-cycles first."""
    front: list[SweepPoint] = []
    best_slices = None
    for point in sorted(points, key=lambda p: (p.cycles, p.slices, p.index)):
        if best_slices is None or point.slices < best_slices:
            front.append(point)
            best_slices = point.slices
    return front


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    checkpoint_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "checkpoint_hits": self.checkpoint_hits,
                "checkpoint_misses": self.checkpoint_misses,
                "checkpoint_stores": self.checkpoint_stores}


class ResultCache:
    """Two-layer memo of finished sweep points.

    Layer 1 is a process-local dict; layer 2 (optional) is JSON files
    under ``cache_dir/<image_digest>/<fingerprint>.json`` so results
    persist across runs — the same economics as the paper's
    reconfiguration cache, where everything already synthesized is free.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: dict[tuple[str, str], dict] = {}
        self._checkpoints: dict[tuple[str, str, int], dict] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, digest: str, fingerprint: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / digest / f"{fingerprint}.json"

    def get(self, digest: str, fingerprint: str) -> tuple[dict, str] | None:
        """Return ``(record, layer)`` on a hit, ``None`` on a miss."""
        record = self._memory.get((digest, fingerprint))
        if record is not None:
            self.stats.memory_hits += 1
            return record, "memory"
        if self.cache_dir is not None:
            path = self._path(digest, fingerprint)
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = None
            if (isinstance(record, dict)
                    and record.get("schema") == SCHEMA_VERSION):
                self._memory[(digest, fingerprint)] = record
                self.stats.disk_hits += 1
                return record, "disk"
        self.stats.misses += 1
        return None

    def put(self, digest: str, fingerprint: str, record: dict) -> None:
        self._memory[(digest, fingerprint)] = record
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        self._write(self._path(digest, fingerprint), record)

    def _write(self, path: Path, record: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(record, sort_keys=True, indent=1)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(blob)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see halves

    # -- warmed checkpoints --------------------------------------------

    def _checkpoint_path(self, digest: str, arch_key: str,
                         fast_forward: int) -> Path:
        assert self.cache_dir is not None
        return (self.cache_dir / digest
                / f"checkpoint-{arch_key}-ff{fast_forward}.json")

    def get_checkpoint(self, digest: str, arch_key: str,
                       fast_forward: int) -> dict | None:
        """Return a warmed :class:`~repro.cpu.archstate.ArchState`
        payload, or ``None``.  Keyed by (image digest, architectural
        key, warmup length): every config sharing an ``arch_key()``
        computes the same functional state, so one checkpoint serves
        the whole family."""
        key = (digest, arch_key, fast_forward)
        payload = self._checkpoints.get(key)
        if payload is not None:
            self.stats.checkpoint_hits += 1
            return payload
        if self.cache_dir is not None:
            path = self._checkpoint_path(digest, arch_key, fast_forward)
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                record = None
            if (isinstance(record, dict)
                    and record.get("schema") == CHECKPOINT_SCHEMA
                    and record.get("fast_forward") == fast_forward):
                payload = record["archstate"]
                self._checkpoints[key] = payload
                self.stats.checkpoint_hits += 1
                return payload
        self.stats.checkpoint_misses += 1
        return None

    def put_checkpoint(self, digest: str, arch_key: str, fast_forward: int,
                       payload: dict) -> None:
        """Persist a warmed ArchState payload (``ArchState.to_payload``)."""
        self._checkpoints[(digest, arch_key, fast_forward)] = payload
        self.stats.checkpoint_stores += 1
        if self.cache_dir is None:
            return
        record = {"schema": CHECKPOINT_SCHEMA, "arch_key": arch_key,
                  "fast_forward": fast_forward, "archstate": payload}
        self._write(self._checkpoint_path(digest, arch_key, fast_forward),
                    record)


# ---------------------------------------------------------------------------
# Evaluation (runs in worker processes — must stay module-level picklable)
# ---------------------------------------------------------------------------


def _sampled_record(config: ArchitectureConfig, run, runner,
                    counters: dict, utilization) -> dict:
    """The cacheable record of one sampled point.  *counters* is the
    per-run slice of the runner's accounting — a fresh runner's totals,
    or a shared runner's delta; both publish identical values because
    the counters are derived from the run, not from memo hits."""
    registry = MetricsRegistry()
    runner.publish_obs(registry, counters=counters)
    return {
        "schema": SCHEMA_VERSION,
        "config_key": config.key(),
        "cycles": int(round(run.estimated_cycles)),
        "instructions": run.total_instructions,
        "instruction_mix": run.instruction_mix(),
        "dcache": run.cache_totals("dcache"),
        "icache": run.cache_totals("icache"),
        "result_word": run.result_word,
        "uart_hex": run.uart_hex,
        "frequency_mhz": utilization.frequency_mhz,
        "slices": utilization.slices,
        "block_rams": utilization.block_rams,
        "obs": registry.snapshot(),
        "sampled": run.to_record(),
    }


def _evaluate_sampled_shared(tasks) -> "Iterable[tuple[dict, float]]":
    """Serial sampled evaluation: one :class:`SampledRunner` per
    (image, architectural family), so every config point of a family
    shares the memoised survey and checkpoint passes and pays only for
    its own cycle-accurate measure phase.  Records stay byte-identical
    to the parallel path (which rebuilds the passes per worker): the
    shared passes are architectural, and obs counters are published as
    per-run deltas."""
    runners: dict[tuple[int, str], SampledRunner] = {}
    for config, image, max_instructions, _, sampling in tasks:
        start = time.perf_counter()
        utilization = SynthesisModel().estimate(config)
        key = (id(image), config.arch_key())
        runner = runners.get(key)
        if runner is None:
            runner = runners[key] = SampledRunner(config)
        before = dict(runner.counters)
        run = runner.run(image, sampling,
                         max_instructions=max_instructions, config=config)
        delta = {name: runner.counters[name] - before[name]
                 for name in before}
        record = _sampled_record(config, run, runner, delta, utilization)
        yield record, time.perf_counter() - start


def _evaluate_task(task: tuple[ArchitectureConfig, Image, int, dict | None,
                               SamplingPlan | None]
                   ) -> tuple[dict, float]:
    """Simulate one point; returns (cacheable record, wall seconds).

    The memory trace is deliberately not captured: sweep points must be
    small, picklable and JSON-serializable, and the exploration loop
    only needs the aggregate report.

    When *checkpoint* (a JSON-able ArchState payload) is present, the
    simulator restores it and measures only from there — the two-speed
    fast path.  The payload travels to worker processes as a plain dict,
    which is what keeps this function picklable.

    When *sampling* (a :class:`SamplingPlan`, frozen and picklable) is
    present, the whole sampled run is rebuilt in-process from
    ``(config, image, plan)`` — nothing host-dependent ships to the
    worker, which is what makes serial and parallel sampled sweeps
    byte-identical.  ``cycles`` becomes the rounded point estimate,
    ``instructions`` stays exact (the survey pass measured it), and the
    full estimate (CI, windows, phases) lands in the record's
    ``sampled`` section.
    """
    config, image, max_instructions, checkpoint, sampling = task
    start = time.perf_counter()
    utilization = SynthesisModel().estimate(config)
    if sampling is not None:
        runner = SampledRunner(config)
        run = runner.run(image, sampling, max_instructions=max_instructions)
        record = _sampled_record(config, run, runner, runner.counters,
                                 utilization)
        return record, time.perf_counter() - start
    sim = Simulator(config, capture_memory_trace=False)
    if checkpoint is not None:
        from repro.cpu.archstate import ArchState

        report = sim.run(max_instructions=max_instructions,
                         from_checkpoint=ArchState.from_payload(checkpoint))
    else:
        report = sim.run(image, max_instructions=max_instructions)
    record = {
        "schema": SCHEMA_VERSION,
        "config_key": config.key(),
        "cycles": report.cycles,
        "instructions": report.instructions,
        "instruction_mix": dict(report.instruction_mix),
        "dcache": report.dcache,
        "icache": report.icache,
        "result_word": report.result_word,
        "uart_hex": report.uart_output.hex(),
        "frequency_mhz": utilization.frequency_mhz,
        "slices": utilization.slices,
        "block_rams": utilization.block_rams,
        "obs": report.obs,
    }
    return record, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class SweepStats:
    points: int = 0
    simulated: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: Warmed checkpoints built fresh this sweep (one per distinct
    #: (image, arch_key) family) vs. served from the result cache.
    checkpoints_built: int = 0
    checkpoint_hits: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        return {
            "points": self.points, "simulated": self.simulated,
            "memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
            "wall_seconds": round(self.wall_seconds, 6),
            "sim_seconds": round(self.sim_seconds, 6),
            "checkpoints_built": self.checkpoints_built,
            "checkpoint_hits": self.checkpoint_hits,
        }


@dataclass
class SweepOutcome:
    """Ordered points plus the counters that prove what was reused."""

    points: list[SweepPoint]
    stats: SweepStats

    def best_point(self, metric: str = "seconds") -> SweepPoint:
        return best_point(self.points, metric)

    def pareto_front(self) -> list[SweepPoint]:
        return pareto_front(self.points)

    def by_key(self) -> dict[str, SweepPoint]:
        return {point.config.key(): point for point in self.points}


# ---------------------------------------------------------------------------
# Workload x configuration matrices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixCell:
    """One (workload, config) evaluation of a matrix sweep."""

    workload: str
    wclass: str
    point: SweepPoint
    #: The workload's self-check verdict over the point's RESULT word —
    #: a sweep that makes a kernel compute the wrong answer is reported,
    #: not silently ranked.
    check_ok: bool


@dataclass
class MatrixOutcome:
    """A full workload x configuration sweep, with per-class winners.

    The registry's promise is that every cell is self-checked; the
    ranking helpers answer the paper's actual question — *which
    architectural family wins for which workload class*.
    """

    cells: list[MatrixCell]
    stats: SweepStats
    #: workload name -> static-analysis DiagnosticReport, populated when
    #: the matrix ran with ``analyze=True`` (else empty).
    analysis: dict = field(default_factory=dict)

    def failed_checks(self) -> list[MatrixCell]:
        return [cell for cell in self.cells if not cell.check_ok]

    def workloads(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.workload)
        return list(seen)

    def config_keys(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.point.config.key())
        return list(seen)

    def cells_for(self, workload: str) -> list[MatrixCell]:
        return [cell for cell in self.cells if cell.workload == workload]

    def winner_by_workload(self, metric: str = "seconds"
                           ) -> dict[str, SweepPoint]:
        """Per workload: the winning point by *metric* (sweep-order
        tie-break, same rule as :func:`best_point`)."""
        return {name: best_point([c.point for c in self.cells_for(name)],
                                 metric)
                for name in self.workloads()}

    def winner_by_class(self, metric: str = "seconds") -> dict[str, str]:
        """Per workload class: the config key minimizing the *summed*
        metric across the class's workloads.  Ties break toward the
        earlier config in sweep order."""
        totals: dict[str, dict[str, list]] = {}
        for cell in self.cells:
            key = cell.point.config.key()
            entry = totals.setdefault(cell.wclass, {}).setdefault(
                key, [0.0, cell.point.index])
            entry[0] += getattr(cell.point, metric)
        return {wclass: min(per_config.items(),
                            key=lambda kv: (kv[1][0], kv[1][1]))[0]
                for wclass, per_config in totals.items()}

    def report(self, metric: str = "seconds") -> dict:
        """Everything deterministic about the matrix: every cell's
        measured fields plus the winner tables (and, when the matrix
        ran with ``analyze=True``, per-workload verifier summaries)."""
        report = {
            "metric": metric,
            "cells": [{
                "workload": cell.workload,
                "wclass": cell.wclass,
                "check_ok": cell.check_ok,
                **cell.point.report_fields(),
            } for cell in self.cells],
            "winner_by_workload": {
                name: point.config.key()
                for name, point in self.winner_by_workload(metric).items()},
            "winner_by_class": self.winner_by_class(metric),
        }
        if self.analysis:
            report["analysis"] = {
                name: {"errors": len(diag.errors),
                       "warnings": len(diag.warnings),
                       "codes": diag.codes()}
                for name, diag in sorted(self.analysis.items())}
        return report

    def canonical_json(self, metric: str = "seconds") -> str:
        """Byte-stable serialization of :meth:`report` — equality of
        these strings is the matrix determinism contract."""
        return json.dumps(self.report(metric), sort_keys=True,
                          separators=(",", ":"))

    def report_text(self, metric: str = "seconds") -> str:
        """The per-class winner table, human-shaped."""
        lines = [f"workload x config matrix ({len(self.workloads())} "
                 f"workloads x {len(self.config_keys())} configs, "
                 f"metric={metric})"]
        by_workload = self.winner_by_workload(metric)
        for name in self.workloads():
            cells = self.cells_for(name)
            winner = by_workload[name]
            checks = "all-ok" if all(c.check_ok for c in cells) else "CHECK-FAILED"
            lines.append(f"  {name:<12} [{cells[0].wclass:<6}] "
                         f"winner={winner.config.key()} "
                         f"cycles={winner.cycles} ({checks})")
        lines.append("  per-class winners:")
        for wclass, key in sorted(self.winner_by_class(metric).items()):
            lines.append(f"    {wclass:<8} -> {key}")
        return "\n".join(lines)


class SweepRunner:
    """Evaluate a configuration space over one or more images.

    ``workers <= 1`` runs serially in-process; ``workers > 1`` fans the
    uncached points out over a :class:`ProcessPoolExecutor`.  Results
    come back in the deterministic order of the space regardless of the
    executor, and both paths produce byte-identical
    :meth:`SweepPoint.canonical_json` strings.
    """

    def __init__(self, workers: int = 0,
                 cache: ResultCache | None = None,
                 progress: ProgressCallback | None = None,
                 obs: MetricsRegistry | None = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        # Host-side sweep telemetry (wall time, cache reuse, worker
        # utilization).  Never persisted into point records — those hold
        # only simulation-derived series, keeping them deterministic.
        self.obs = obs if obs is not None else NULL_REGISTRY

    # ------------------------------------------------------------------

    def sweep(self, space: Iterable[ArchitectureConfig],
              images: Image | Sequence[Image],
              max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
              fast_forward: int = 0,
              sampling: SamplingPlan | None = None) -> SweepOutcome:
        """Evaluate every (image, config) pair; image-major order.

        ``fast_forward > 0`` switches every point to two-speed mode:
        per (image, ``arch_key()``) family one warmed checkpoint is
        built (functional engine, no timing model), then every config
        point of that family restores it and measures only the window
        after it on the cycle-accurate engine.  Fingerprints gain a
        ``-ff<N>`` suffix, so windowed results never collide with
        whole-program records in the :class:`ResultCache`.

        ``sampling=`` (a :class:`~repro.core.sampling.SamplingPlan`)
        switches every point to *sampled* mode instead: cycle estimates
        with confidence intervals from checkpointed measurement windows,
        at a fraction of the full-detail cost.  Fingerprints gain the
        plan's token, so sampled records never collide with exact ones.
        The two modes are mutually exclusive — a sampled run does its
        own fast-forwarding.
        """
        started = time.perf_counter()
        if fast_forward < 0:
            raise ValueError("fast_forward must be >= 0")
        if sampling is not None and fast_forward:
            raise ValueError(
                "sampling and fast_forward are mutually exclusive")
        configs = list(space)
        if isinstance(images, Image):
            images = [images]
        else:
            images = list(images)
        if not configs or not images:
            raise ValueError("sweep needs at least one config and one image")

        # Deterministic work list: (index, image, digest, config, fp).
        if sampling is not None:
            suffix = f"-{sampling.fingerprint_token()}"
        else:
            suffix = f"-ff{fast_forward}" if fast_forward else ""
        entries = []
        for image in images:
            digest = image_digest(image)
            for config in configs:
                entries.append((len(entries), image, digest, config,
                                config.fingerprint() + suffix))

        # Resolve cache hits up front; only misses are dispatched.
        cached: dict[int, tuple[dict, str]] = {}
        if self.cache is not None:
            for index, _, digest, _, fingerprint in entries:
                hit = self.cache.get(digest, fingerprint)
                if hit is not None:
                    cached[index] = hit

        stats = SweepStats(points=len(entries))

        # One warmed checkpoint per (image, arch_key) family — built
        # only if some point of the family actually needs simulating.
        checkpoints: dict[tuple[str, str], dict] = {}
        if fast_forward:
            for index, image, digest, config, _ in entries:
                if index in cached:
                    continue
                key = (digest, config.arch_key())
                if key in checkpoints:
                    continue
                checkpoints[key] = self._warm_checkpoint(
                    image, digest, config, fast_forward, stats)

        tasks = [(config, image, max_instructions,
                  checkpoints.get((digest, config.arch_key())), sampling)
                 for index, image, digest, config, _ in entries
                 if index not in cached]

        fresh = self._evaluate(tasks)
        points: list[SweepPoint] = []
        for index, _, digest, config, fingerprint in entries:
            if index in cached:
                record, layer = cached[index]
                wall = 0.0
                if layer == "memory":
                    stats.memory_hits += 1
                else:
                    stats.disk_hits += 1
            else:
                record, wall = next(fresh)
                stats.simulated += 1
                stats.sim_seconds += wall
                layer = "simulated"
                self.obs.histogram("sweep.point_wall_ms").observe(
                    int(wall * 1000))
                if self.cache is not None:
                    self.cache.put(digest, fingerprint, record)
            point = self._point(index, config, digest, fingerprint,
                                record, layer, wall)
            points.append(point)
            if self.progress is not None:
                self.progress(len(points), len(entries), point)

        stats.wall_seconds = time.perf_counter() - started
        self._publish_obs(stats)
        return SweepOutcome(points=points, stats=stats)

    def sweep_matrix(self, workloads: Sequence, space,
                     max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                     seed: int = 0,
                     fast_forward: int = 0,
                     sampling: SamplingPlan | None = None,
                     analyze: bool = False) -> MatrixOutcome:
        """Evaluate every (workload, config) pair of the matrix.

        *workloads* are :class:`repro.workloads.Workload` objects (any
        object with ``name``/``wclass``/``image(seed)``/
        ``check(result_word, seed)`` works); *space* is a configuration
        iterable, evaluated once per workload image.  Every cell is
        **self-checked** against the workload's reference model, and
        every point persists through the runner's :class:`ResultCache`
        exactly like a plain sweep — a re-run of the same matrix is all
        cache hits and a byte-identical
        :meth:`MatrixOutcome.canonical_json`.  ``sampling=`` evaluates
        every cell in sampled mode (cycle estimates with confidence
        intervals); each cell still self-checks — the RESULT word comes
        from the survey pass, which runs the whole program exactly.

        ``analyze=True`` additionally runs the machine-code verifier
        once per workload image, stores the reports on
        :attr:`MatrixOutcome.analysis`, and publishes ``analysis.*``
        series into the runner's obs registry.
        """
        configs = list(space)
        workloads = list(workloads)
        if not workloads:
            raise ValueError("sweep_matrix needs at least one workload")
        cells: list[MatrixCell] = []
        analysis: dict = {}
        totals = SweepStats()
        started = time.perf_counter()
        for workload in workloads:
            if analyze:
                from repro.analysis.verify import analyze_image
                from repro.obs.collect import collect_analysis

                diag = analyze_image(workload.image(seed),
                                     subject=workload.name).report
                analysis[workload.name] = diag
                collect_analysis(diag, self.obs)
            outcome = self.sweep(configs, workload.image(seed),
                                 max_instructions=max_instructions,
                                 fast_forward=fast_forward,
                                 sampling=sampling)
            for point in outcome.points:
                cells.append(MatrixCell(
                    workload=workload.name, wclass=workload.wclass,
                    point=point,
                    check_ok=workload.check(point.result_word, seed)))
            totals.points += outcome.stats.points
            totals.simulated += outcome.stats.simulated
            totals.memory_hits += outcome.stats.memory_hits
            totals.disk_hits += outcome.stats.disk_hits
            totals.sim_seconds += outcome.stats.sim_seconds
            totals.checkpoints_built += outcome.stats.checkpoints_built
            totals.checkpoint_hits += outcome.stats.checkpoint_hits
        totals.wall_seconds = time.perf_counter() - started
        return MatrixOutcome(cells=cells, stats=totals, analysis=analysis)

    def _warm_checkpoint(self, image: Image, digest: str,
                         config: ArchitectureConfig, fast_forward: int,
                         stats: SweepStats) -> dict:
        """Fetch or build the warmed ArchState payload for *config*'s
        architectural family, updating *stats* and the result cache."""
        arch_key = config.arch_key()
        if self.cache is not None:
            payload = self.cache.get_checkpoint(digest, arch_key,
                                                fast_forward)
            if payload is not None:
                stats.checkpoint_hits += 1
                return payload
        state = Simulator(config, capture_memory_trace=False).checkpoint(
            image, fast_forward)
        payload = state.to_payload()
        stats.checkpoints_built += 1
        if self.cache is not None:
            self.cache.put_checkpoint(digest, arch_key, fast_forward,
                                      payload)
        return payload

    def _publish_obs(self, stats: SweepStats) -> None:
        obs = self.obs
        obs.counter("sweep.points").inc(stats.points)
        obs.counter("sweep.simulated").inc(stats.simulated)
        obs.counter("sweep.memory_hits").inc(stats.memory_hits)
        obs.counter("sweep.disk_hits").inc(stats.disk_hits)
        obs.counter("sweep.checkpoints_built").inc(stats.checkpoints_built)
        obs.counter("sweep.checkpoint_hits").inc(stats.checkpoint_hits)
        obs.gauge("sweep.workers").set(self.workers)
        if stats.simulated and stats.wall_seconds > 0:
            lanes = max(self.workers, 1)
            obs.gauge("sweep.worker_utilization").set(round(
                stats.sim_seconds / (stats.wall_seconds * lanes), 6))

    # ------------------------------------------------------------------

    def _evaluate(self, tasks):
        """Yield (record, wall) per task, in task order."""
        if not tasks:
            return iter(())
        if self.workers <= 1:
            if tasks[0][4] is not None:
                # All tasks of one sweep share the same sampling plan;
                # the shared path amortizes survey/checkpoint passes
                # across each (image, family) group.
                return _evaluate_sampled_shared(tasks)
            return map(_evaluate_task, tasks)
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(tasks)))

        def results():
            with pool:
                # Executor.map preserves submission order, so consuming
                # it keeps the sweep deterministic while points complete
                # out of order across workers.
                yield from pool.map(_evaluate_task, tasks, chunksize=1)

        return results()

    @staticmethod
    def _point(index: int, config: ArchitectureConfig, digest: str,
               fingerprint: str, record: dict, source: str,
               wall_seconds: float) -> SweepPoint:
        return SweepPoint(
            index=index,
            config=config,
            image_digest=digest,
            fingerprint=fingerprint,
            cycles=record["cycles"],
            instructions=record["instructions"],
            instruction_mix=dict(record["instruction_mix"]),
            dcache=record["dcache"],
            icache=record["icache"],
            result_word=record["result_word"],
            uart_hex=record["uart_hex"],
            frequency_mhz=record["frequency_mhz"],
            slices=record["slices"],
            block_rams=record["block_rams"],
            obs=record.get("obs", {}),
            sampled=record.get("sampled"),
            source=source,
            wall_seconds=wall_seconds,
        )
