"""LiquidProcessorSystem: the one-object facade over the whole stack.

This is the "Figure 3" object: one configured FPX node with its LEON
core, plus the toolchain and control client bound to it.  Most users
(and the examples) want exactly this:

    system = LiquidProcessorSystem(config)
    result = system.run_c(source)
    print(result.cycles)

It also installs custom-instruction semantics for any extensions named
by the configuration, so a config with the ``mac`` extension *just
works* end to end: the rewriter's recipe supplies the simulator
semantics and the synthesis model charges its area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.client import LiquidClient, RunResult
from repro.control.listener import ResponseListener
from repro.control.transport import DirectTransport, LossyTransport
from repro.core.config import ArchitectureConfig
from repro.core.rewriter import BUILTIN_RECIPES, install_recipes
from repro.core.synthesis import Bitfile, SynthesisModel
from repro.fpx.platform import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.toolchain.driver import SourceFile, build_image
from repro.toolchain.objfile import Image


@dataclass
class ProgramRun:
    """Everything one remote execution produced."""

    result: int | None
    cycles: int
    seconds: float
    image: Image
    state: str

    def __repr__(self) -> str:
        return (f"ProgramRun(result={self.result}, cycles={self.cycles}, "
                f"seconds={self.seconds:.6f}, state={self.state})")


class LiquidProcessorSystem:
    """A configured Liquid node + toolchain + control client."""

    def __init__(self, config: ArchitectureConfig | None = None,
                 channel: ChannelConfig | None = None, seed: int = 7,
                 recipes=None):
        self.config = config or ArchitectureConfig()
        self.platform = FPXPlatform(self.config.platform_config())
        install_recipes(self.platform.cpu, self.config,
                        recipes or BUILTIN_RECIPES)
        self.bitfile: Bitfile = SynthesisModel().synthesize(self.config)
        self.platform.rad.program(self.platform, self.bitfile.name,
                                  self.bitfile.size_bytes)
        self.platform.boot()
        self.listener = ResponseListener()
        if channel is None:
            transport = DirectTransport(self.platform,
                                        self.platform.config.device_ip,
                                        self.platform.config.control_port)
        else:
            transport = LossyTransport(self.platform,
                                       self.platform.config.device_ip,
                                       self.platform.config.control_port,
                                       channel_config=channel, seed=seed)
        self.client = LiquidClient(transport, self.listener)

    # ------------------------------------------------------------------
    # Compile + run
    # ------------------------------------------------------------------

    def compile_c(self, source: str, extra_asm: str | None = None) -> Image:
        sources = [SourceFile(source, "c", "app.c")]
        if extra_asm:
            sources.append(SourceFile(extra_asm, "asm", "app_extra.s"))
        return build_image(sources, self.platform.config.memmap)

    def compile_asm(self, source: str, with_crt0: bool = False) -> Image:
        return build_image([SourceFile(source, "asm", "app.s")],
                           self.platform.config.memmap,
                           with_crt0=with_crt0)

    def run_image(self, image: Image,
                  max_instructions: int = 50_000_000) -> ProgramRun:
        run: RunResult = self.client.run_image(
            image, result_addr=DEFAULT_MAP.result_addr,
            max_instructions=max_instructions)
        frequency_hz = self.bitfile.utilization.frequency_mhz * 1e6
        return ProgramRun(
            result=run.result_word,
            cycles=run.cycles,
            seconds=run.cycles / frequency_hz,
            image=image,
            state=self.platform.leon_ctrl.state.name,
        )

    def run_c(self, source: str,
              max_instructions: int = 50_000_000) -> ProgramRun:
        return self.run_image(self.compile_c(source), max_instructions)

    def run_asm(self, source: str,
                max_instructions: int = 50_000_000) -> ProgramRun:
        return self.run_image(self.compile_asm(source, with_crt0=True),
                              max_instructions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilization_table(self) -> str:
        from repro.core.synthesis import figure10_table

        return figure10_table(self.config)

    def statistics(self) -> dict:
        stats = self.platform.statistics()
        stats["bitfile"] = self.bitfile.name
        stats["frequency_mhz"] = self.bitfile.utilization.frequency_mhz
        return stats
