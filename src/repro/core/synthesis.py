"""Synthesis / place-and-route cost model → Bitfile (Figure 10, and the
"~1 hour to synthesize" economics of the reconfiguration cache).

The paper reports post-PAR utilization of the baseline Liquid Processor
System on the Xilinx Virtex XCV2000E:

    =============  ===================  ===========
    Resource       Device Utilization   Percent
    =============  ===================  ===========
    Logic Slices   7900 of 19200        41 %
    BlockRAMs      54 of 160            (reported)
    External IOBs  309 of 404           (reported)
    Frequency      30 MHz               —
    =============  ===================  ===========

The model is additive over components (FPX infrastructure, LEON integer
unit, multiplier/divider options, per-cache control + RAM, custom
extensions) with constants calibrated so the *baseline configuration
reproduces Figure 10 exactly*; other points move in the directions real
synthesis moves (bigger caches → more BlockRAMs and a slower clock,
bigger multiplier → more slices but a faster multiply, etc.).  Synthesis
time is the paper's ~1 hour, scaled mildly with area — charged in *model
seconds*, which the reconfiguration server accumulates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.cache import CacheGeometry
from repro.core.config import ArchitectureConfig

# Xilinx Virtex XCV2000E device capacity.
DEVICE_SLICES = 19200
DEVICE_BLOCK_RAMS = 160
DEVICE_IOBS = 404
BLOCK_RAM_BITS = 4096

# Component area constants (slices), calibrated to Figure 10.
FPX_INFRA_SLICES = 2650        # wrappers + CPP + SDRAM ctrl + leon_ctrl
LEON_IU_SLICES = 3800          # integer unit, 8 windows
SLICES_PER_EXTRA_WINDOW = 160
PERIPHERAL_SLICES = 520        # UART, timers, IRQ ctrl, IOPORT, AHB/APB glue
CACHE_CTRL_SLICES = 120        # per cache controller
MULTIPLIER_SLICES = {"iterative": 150, "16x16": 450, "32x32": 1100}
DIVIDER_SLICES = {"radix2": 220, "none": 0}
PREFETCH_SLICES = {"none": 0, "nextline": 120, "stride": 260}
PIPELINE_DEPTH_SLICES = {3: -250, 5: 0, 7: 350}  # pipeline registers

# BlockRAM constants.
FPX_INFRA_BRAMS = 38           # packet buffers, reassembly, SDRAM FIFOs
LEON_IU_BRAMS_BASE = 2         # register file etc. at 8 windows
TAG_BITS_OVERHEAD = 22         # tag + valid + replacement state per line

# Timing model (MHz).
BASE_FREQUENCY = 30.0
PAPER_SYNTHESIS_SECONDS = 3600.0


@dataclass(frozen=True)
class DeviceUtilization:
    """Post-PAR resource usage (the Figure 10 table for one bitfile)."""

    slices: int
    block_rams: int
    iobs: int
    frequency_mhz: float

    @property
    def slice_percent(self) -> float:
        return 100.0 * self.slices / DEVICE_SLICES

    @property
    def block_ram_percent(self) -> float:
        return 100.0 * self.block_rams / DEVICE_BLOCK_RAMS

    @property
    def iob_percent(self) -> float:
        return 100.0 * self.iobs / DEVICE_IOBS

    def fits(self) -> bool:
        return (self.slices <= DEVICE_SLICES
                and self.block_rams <= DEVICE_BLOCK_RAMS
                and self.iobs <= DEVICE_IOBS)

    def table_rows(self) -> list[tuple[str, str, str]]:
        """Figure-10-shaped rows: (resource, utilization, percent)."""
        return [
            ("Logic Slices", f"{self.slices} of {DEVICE_SLICES}",
             f"{self.slice_percent:.0f}%"),
            ("BlockRAMs", f"{self.block_rams} of {DEVICE_BLOCK_RAMS}",
             f"{self.block_ram_percent:.0f}%"),
            ("External IOBs", f"{self.iobs} of {DEVICE_IOBS}",
             f"{self.iob_percent:.0f}%"),
            ("Frequency", f"{self.frequency_mhz:.0f} MHz", "NA"),
        ]


@dataclass(frozen=True)
class Bitfile:
    """A pre-generated FPGA image for one configuration."""

    name: str
    config: ArchitectureConfig
    utilization: DeviceUtilization
    synthesis_seconds: float
    size_bytes: int = 1_261_980  # XCV2000E bitstream


class SynthesisError(Exception):
    """The configuration does not fit the device."""


def _cache_brams(geometry: CacheGeometry) -> int:
    data_bits = geometry.size * 8
    lines = geometry.size // geometry.line_size
    tag_bits = lines * TAG_BITS_OVERHEAD
    return (math.ceil(data_bits / BLOCK_RAM_BITS)
            + math.ceil(tag_bits / BLOCK_RAM_BITS))


def _cache_slices(geometry: CacheGeometry) -> int:
    return (CACHE_CTRL_SLICES + geometry.sets // 8
            + 40 * (geometry.ways - 1))


class SynthesisModel:
    """Deterministic config → Bitfile transform (the Synthesis box of
    Figure 1)."""

    def synthesize(self, config: ArchitectureConfig) -> Bitfile:
        utilization = self.estimate(config)
        if not utilization.fits():
            raise SynthesisError(
                f"configuration '{config.key()}' does not fit the "
                f"XCV2000E ({utilization.slices} slices, "
                f"{utilization.block_rams} BlockRAMs)")
        return Bitfile(
            name=f"liquid_{config.key()}.bit",
            config=config,
            utilization=utilization,
            synthesis_seconds=self.synthesis_seconds(config, utilization),
        )

    # -- area ---------------------------------------------------------------

    def estimate(self, config: ArchitectureConfig) -> DeviceUtilization:
        slices = (
            FPX_INFRA_SLICES
            + LEON_IU_SLICES
            + SLICES_PER_EXTRA_WINDOW * (config.nwindows - 8)
            + PERIPHERAL_SLICES
            + MULTIPLIER_SLICES[config.multiplier]
            + DIVIDER_SLICES[config.divider]
            + _cache_slices(config.icache)
            + _cache_slices(config.dcache)
            + PREFETCH_SLICES[config.prefetch]
            + PIPELINE_DEPTH_SLICES[config.pipeline_depth]
            + sum(ext.slice_cost for ext in config.extensions)
        )
        block_rams = (
            FPX_INFRA_BRAMS
            + LEON_IU_BRAMS_BASE
            + config.nwindows // 4
            + _cache_brams(config.icache)
            + _cache_brams(config.dcache)
        )
        return DeviceUtilization(
            slices=slices,
            block_rams=block_rams,
            iobs=309,  # board pinout: independent of the configuration
            frequency_mhz=self._frequency(config),
        )

    @staticmethod
    def _frequency(config: ArchitectureConfig) -> float:
        """Critical-path model: bigger/more-associative caches and wide
        multipliers slow the clock; the baseline hits exactly 30 MHz."""
        frequency = BASE_FREQUENCY
        frequency -= 0.6 * max(0.0, math.log2(config.dcache.size / 4096))
        frequency -= 0.6 * max(0.0, math.log2(config.icache.size / 1024))
        frequency -= 0.4 * (config.dcache.ways - 1)
        frequency -= 0.4 * (config.icache.ways - 1)
        if config.multiplier == "32x32":
            frequency -= 1.5
        frequency -= 0.2 * len(config.extensions)
        if config.prefetch == "stride":
            frequency -= 0.2
        frequency -= 0.15 * max(0, config.nwindows - 8)
        from repro.core.config import PIPELINE_DEPTHS

        frequency *= PIPELINE_DEPTHS[config.pipeline_depth]["clock_factor"]
        return round(max(frequency, 10.0), 2)

    # -- time ------------------------------------------------------------------

    @staticmethod
    def synthesis_seconds(config: ArchitectureConfig,
                          utilization: DeviceUtilization) -> float:
        """~1 hour per instance (paper), scaling mildly with design size,
        with a deterministic per-config perturbation (real PAR time is
        noisy; a *stable* digest of the key — not Python's salted
        ``hash()`` — keeps the number identical across processes)."""
        import zlib

        scale = (utilization.slices / 7900.0) ** 1.2
        digest = zlib.crc32(config.key().encode())
        jitter = 1.0 + ((digest % 1000) / 1000.0 - 0.5) * 0.2
        return round(PAPER_SYNTHESIS_SECONDS * scale * jitter, 1)


def figure10_table(config: ArchitectureConfig | None = None) -> str:
    """Render the Figure 10 table for *config* (baseline by default)."""
    from repro.core.config import BASELINE

    bitfile = SynthesisModel().synthesize(config or BASELINE)
    lines = [f"{'Resources':<15}{'Device Utilization':<22}{'Utilization %':<12}"]
    for resource, used, percent in bitfile.utilization.table_rows():
        lines.append(f"{resource:<15}{used:<22}{percent:<12}")
    return "\n".join(lines)
