"""Bit-manipulation helpers shared across the simulator.

Everything in the model operates on Python integers constrained to 32-bit
(or 64-bit, for the FPX SDRAM data path) unsigned values.  These helpers
centralise masking, sign extension and field extraction so the instruction
semantics in :mod:`repro.cpu.execute` read like the SPARC V8 manual.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def u32(value: int) -> int:
    """Truncate *value* to an unsigned 32-bit integer."""
    return value & MASK32


def u64(value: int) -> int:
    """Truncate *value* to an unsigned 64-bit integer."""
    return value & MASK64


def s32(value: int) -> int:
    """Reinterpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def bit(value: int, index: int) -> int:
    """Return bit *index* of *value* (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the inclusive bit-field ``value[hi:lo]`` as an unsigned int."""
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def set_field(value: int, hi: int, lo: int, field: int) -> int:
    """Return *value* with the inclusive bit-field ``[hi:lo]`` replaced."""
    width = hi - lo + 1
    mask = ((1 << width) - 1) << lo
    return (value & ~mask) | ((field << lo) & mask)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True when *value* is a multiple of *alignment* (a power of two)."""
    return (value & (alignment - 1)) == 0


def rotate_left32(value: int, count: int) -> int:
    """Rotate a 32-bit value left by *count* bits."""
    count &= 31
    value &= MASK32
    return u32((value << count) | (value >> (32 - count)))


def popcount32(value: int) -> int:
    """Population count of the low 32 bits (used by the custom-insn demo)."""
    return bin(value & MASK32).count("1")


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` requiring *value* to be a power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
