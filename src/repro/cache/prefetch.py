"""Prefetch units — the paper's "alternative memory structure".

§1 names prefetching as a liquid dimension: "The application's
performance can be improved by reconfiguring the hardware to use a cache
scheme or alternative memory structure (such as a prefetch unit) better
tailored to the application."  Two hardware-realistic policies:

* :class:`NextLinePrefetcher` — on a demand miss, also fetch the next
  sequential line (the classic one-block-lookahead).
* :class:`StridePrefetcher` — a reference-prediction table of one entry:
  detects a constant stride in the demand-miss stream and fetches
  ``miss + stride``.  This is the unit the Trace Analyzer recommends
  when one stride dominates a trace.

Timing model: the prefetch engine has its own AHB grant slots, so a
*correct* prefetch overlaps with execution and the CPU never stalls for
it; the demand miss that triggers it pays a fixed ``issue_cycles`` for
the extra tag-port/bus arbitration.  Background bus occupancy is
accounted in :attr:`background_cycles` (it shows up in bus statistics,
not in CPU stalls).  Wrong prefetches pollute the cache — the real
hazard of prefetching — because fills go through the normal replacement
path.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cost added to the triggering demand miss (arbitration + tag port).
ISSUE_CYCLES = 1


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0          # prefetched lines later hit by a demand read
    background_cycles: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class NextLinePrefetcher:
    """One-block-lookahead: prefetch line N+1 on a miss to line N, and
    chain on prefetch hits (tagged prefetching) so a sequential stream
    stays one line ahead after the first miss."""

    name = "nextline"

    def __init__(self, line_size: int):
        self.line_size = line_size
        self.stats = PrefetchStats()

    def predict(self, miss_address: int) -> int | None:
        return (miss_address & ~(self.line_size - 1)) + self.line_size

    def advance(self, hit_line_base: int) -> int | None:
        """A demand hit on a prefetched line: keep running ahead."""
        return hit_line_base + self.line_size


class StridePrefetcher:
    """Single-entry reference-prediction table over demand misses.

    Two consecutive misses with the same delta arm the predictor; while
    armed, each miss prefetches ``miss + stride``.  A delta change
    disarms and retrains, so irregular streams degrade to no prefetching
    instead of to pollution.
    """

    name = "stride"

    def __init__(self, line_size: int):
        self.line_size = line_size
        self.stats = PrefetchStats()
        self._last_miss: int | None = None
        self._stride: int | None = None
        self._confident = False

    def predict(self, miss_address: int) -> int | None:
        prediction = None
        if self._last_miss is not None:
            delta = miss_address - self._last_miss
            if delta != 0 and delta == self._stride:
                self._confident = True
            elif self._stride is not None and delta != self._stride:
                self._confident = False
            self._stride = delta if delta != 0 else self._stride
            if self._confident and self._stride:
                prediction = miss_address + self._stride
        self._last_miss = miss_address
        return prediction

    def advance(self, hit_line_base: int) -> int | None:
        """Chained prefetch: a hit on a prefetched line means the stream
        is following the stride; stay one step ahead.  The "last miss"
        moves with it so the pattern isn't treated as broken when the
        next real miss eventually arrives."""
        if not (self._confident and self._stride):
            return None
        self._last_miss = hit_line_base
        return hit_line_base + self._stride


def make_prefetcher(policy: str, line_size: int):
    """Factory keyed by the ArchitectureConfig 'prefetch' value."""
    if policy == "none":
        return None
    if policy == "nextline":
        return NextLinePrefetcher(line_size)
    if policy == "stride":
        return StridePrefetcher(line_size)
    raise ValueError(f"unknown prefetch policy '{policy}'")


PREFETCH_POLICIES = ("none", "nextline", "stride")
