"""Configurable instruction/data caches (the paper's headline tunable)."""

from repro.cache.cache import (
    REPLACEMENT_POLICIES,
    CacheGeometry,
    CacheStats,
    SetAssociativeCache,
)
from repro.cache.controller import CacheController
from repro.cache.prefetch import (
    PREFETCH_POLICIES,
    NextLinePrefetcher,
    StridePrefetcher,
    make_prefetcher,
)

__all__ = [
    "REPLACEMENT_POLICIES",
    "CacheGeometry",
    "CacheStats",
    "SetAssociativeCache",
    "CacheController",
    "PREFETCH_POLICIES",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
]
