"""Set-associative cache data structure with pluggable replacement.

This is the tunable structure at the heart of the paper's evaluation: the
Figure 8/9 experiment sweeps the data-cache size from 1 KB to 16 KB with a
fixed 32-byte line and observes the running-time knee at the working-set
size.  The LEON2 defaults are direct-mapped with LRR replacement for
multi-way configurations; we support LRU/LRR/random (random is seeded and
deterministic, as a hardware LFSR would be).

The cache stores actual line data, so it can sit transparently between
the CPU and the AHB (the controller in
:mod:`repro.cache.controller` handles timing and write policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import log2_exact

REPLACEMENT_POLICIES = ("lru", "lrr", "random")


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache (sizes in bytes).

    ``ways = 1`` is direct-mapped.  All three parameters must be powers of
    two and ``size`` must be divisible by ``line_size * ways``.
    """

    size: int = 4096
    line_size: int = 32
    ways: int = 1
    replacement: str = "lru"

    def __post_init__(self) -> None:
        log2_exact(self.size)
        log2_exact(self.line_size)
        log2_exact(self.ways)
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ValueError(f"unknown replacement '{self.replacement}'")
        if self.size % (self.line_size * self.ways):
            raise ValueError(
                f"cache size {self.size} not divisible by "
                f"line_size*ways = {self.line_size * self.ways}")
        if self.sets < 1:
            raise ValueError("cache must have at least one set")

    @property
    def sets(self) -> int:
        return self.size // (self.line_size * self.ways)

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.line_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.sets)

    def split(self, address: int) -> tuple[int, int, int]:
        """Return ``(tag, set_index, line_offset)`` for *address*."""
        offset = address & (self.line_size - 1)
        index = (address >> self.offset_bits) & (self.sets - 1)
        tag = address >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def line_base(self, address: int) -> int:
        return address & ~(self.line_size - 1)


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting, queried by the trace analyzer."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def read_miss_rate(self) -> float:
        return self.read_misses / self.reads if self.reads else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "read_hits": self.read_hits, "read_misses": self.read_misses,
            "write_hits": self.write_hits, "write_misses": self.write_misses,
            "evictions": self.evictions, "flushes": self.flushes,
            "read_miss_rate": self.read_miss_rate,
        }


@dataclass
class _Line:
    valid: bool = False
    tag: int = 0
    data: bytearray = field(default_factory=bytearray)
    last_use: int = 0     # LRU timestamp
    fill_order: int = 0   # LRR round counter


class SetAssociativeCache:
    """Tag + data store.  Timing lives in the controller, not here."""

    def __init__(self, geometry: CacheGeometry, seed: int = 0x5EED):
        self.geometry = geometry
        self.stats = CacheStats()
        self._lines = [
            [_Line(data=bytearray(geometry.line_size))
             for _ in range(geometry.ways)]
            for _ in range(geometry.sets)
        ]
        self._clock = 0
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # -- lookup -------------------------------------------------------------

    def probe(self, address: int) -> _Line | None:
        """Return the valid line holding *address*, or None.  No stats."""
        tag, index, _ = self.geometry.split(address)
        for line in self._lines[index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def read(self, address: int, size: int) -> int | None:
        """Read *size* bytes if cached, else None (recording hit/miss)."""
        self._clock += 1
        line = self.probe(address)
        if line is None:
            self.stats.read_misses += 1
            return None
        self.stats.read_hits += 1
        line.last_use = self._clock
        _, _, offset = self.geometry.split(address)
        return int.from_bytes(line.data[offset:offset + size], "big")

    def write(self, address: int, size: int, value: int) -> bool:
        """Update the cached copy if present (write-through, no-allocate).

        Returns True on write hit.  The controller always forwards the
        write to memory regardless.
        """
        self._clock += 1
        line = self.probe(address)
        if line is None:
            self.stats.write_misses += 1
            return False
        self.stats.write_hits += 1
        line.last_use = self._clock
        _, _, offset = self.geometry.split(address)
        line.data[offset:offset + size] = \
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")
        return True

    # -- fill / eviction -----------------------------------------------------

    def fill(self, line_base: int, data: bytes) -> int | None:
        """Install a full line; return the evicted line's base address (or
        None if an invalid way was used)."""
        geometry = self.geometry
        if len(data) != geometry.line_size:
            raise ValueError("fill data must be exactly one line")
        tag, index, _ = geometry.split(line_base)
        ways = self._lines[index]
        victim = self._choose_victim(ways)
        evicted = None
        if victim.valid:
            self.stats.evictions += 1
            evicted = ((victim.tag << geometry.index_bits) | index) \
                << geometry.offset_bits
        self._clock += 1
        victim.valid = True
        victim.tag = tag
        victim.data[:] = data
        victim.last_use = self._clock
        victim.fill_order = self._clock
        return evicted

    def _choose_victim(self, ways: list[_Line]) -> _Line:
        for line in ways:
            if not line.valid:
                return line
        policy = self.geometry.replacement
        if policy == "lru":
            return min(ways, key=lambda line: line.last_use)
        if policy == "lrr":
            return min(ways, key=lambda line: line.fill_order)
        return ways[int(self._rng.integers(len(ways)))]

    # -- maintenance ---------------------------------------------------------

    def invalidate_all(self) -> None:
        """FLUSH semantics: every line becomes invalid (write-through cache
        has no dirty data to write back)."""
        self.stats.flushes += 1
        for ways in self._lines:
            for line in ways:
                line.valid = False

    def reset_replacement_state(self) -> None:
        """Return the replacement machinery (LRU/LRR clock, seeded RNG)
        to its power-on state.  Only meaningful right after
        :meth:`invalidate_all` — with no valid lines the timestamps
        carry no information — so this is purely a canonicalization step
        for the fast-forward handoff."""
        self._clock = 0
        self._rng = np.random.default_rng(self._seed)
        for ways in self._lines:
            for line in ways:
                line.last_use = 0
                line.fill_order = 0

    def rng_state(self) -> dict:
        """Deterministic-RNG cursor (ArchState checkpointing)."""
        return self._rng.bit_generator.state

    def load_rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def invalidate_line(self, address: int) -> None:
        line = self.probe(address)
        if line is not None:
            line.valid = False

    @property
    def valid_lines(self) -> int:
        return sum(line.valid for ways in self._lines for line in ways)

    def contents_summary(self) -> dict[int, list[int]]:
        """Map set index -> list of resident tags (tests / debugging)."""
        return {
            index: [line.tag for line in ways if line.valid]
            for index, ways in enumerate(self._lines)
            if any(line.valid for line in ways)
        }
