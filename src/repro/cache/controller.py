"""Cache controller: the timing/policy layer between the IU and the AHB.

Implements the LEON2 cache behaviour the paper relies on:

* write-through with no-allocate-on-write-miss;
* read miss triggers a full line fill over the AHB using a burst
  (``hburst = INCR``), critical-word cycle accounting;
* a *cacheability* predicate from the memory map — APB peripherals and
  the leon_ctrl mailbox region bypass the cache;
* ``flush`` (the FLUSH instruction / LEON flush ASIs) invalidates
  everything, which the modified boot ROM uses in its polling loop so it
  observes mailbox writes made while LEON was disconnected from memory.

The controller implements :class:`repro.mem.interface.MemoryPort`, so the
IU is oblivious to whether it talks to a cache, a flat test memory, or
the full platform.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cache import CacheGeometry, CacheStats, SetAssociativeCache
from repro.cache.prefetch import ISSUE_CYCLES, make_prefetcher
from repro.mem.interface import MemoryPort


class CacheController:
    """One cache (I or D) in front of a backing port.

    Parameters
    ----------
    geometry:
        The cache shape (a Liquid configuration dimension).
    backing:
        Downstream port — normally the AHB bus.  Needs ``read``/``write``
        and, optionally, ``read_burst(address, nwords)`` for line fills.
    cacheable:
        Predicate ``address -> bool``; non-cacheable accesses bypass the
        cache entirely and pay the bus cost.
    enabled:
        A disabled cache (paper: evaluating the core without caches is a
        configuration point) forwards everything.
    flush_cycles:
        Cost of a whole-cache flush; LEON2 flushes one line per cycle.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        backing: MemoryPort,
        cacheable: Callable[[int], bool] = lambda address: True,
        enabled: bool = True,
        flush_cycles: int | None = None,
        name: str = "cache",
        prefetch: str = "none",
    ):
        self.geometry = geometry
        self.cache = SetAssociativeCache(geometry)
        self.backing = backing
        self.cacheable = cacheable
        self.enabled = enabled
        self.name = name
        self.flush_cycles = (flush_cycles if flush_cycles is not None
                             else geometry.sets * geometry.ways)
        self.fill_count = 0
        self.bypass_count = 0
        # Miss-latency distribution, bucketed by bit length (bucket i
        # holds misses costing 2**(i-1)..2**i - 1 cycles); repro.obs
        # publishes this as the cache.miss_cycles histogram.  Native
        # list-of-ints so the miss path pays a bit_length + two adds.
        self.miss_cycle_buckets = [0] * 16
        self.miss_cycles_sum = 0
        self._prefetch_policy = prefetch
        self.prefetcher = make_prefetcher(prefetch, geometry.line_size)
        # Line bases brought in speculatively but not yet demanded.
        self._speculative: set[int] = set()
        # Optional trace hook: (address, size, is_write, hit) -> None.
        self.on_access: Callable[[int, int, bool, bool], None] | None = None

    @property
    def stats(self):
        return self.cache.stats

    # -- MemoryPort ---------------------------------------------------------

    def read(self, address: int, size: int) -> tuple[int, int]:
        if not self.enabled or not self.cacheable(address):
            self.bypass_count += 1
            return self.backing.read(address, size)
        value = self.cache.read(address, size)
        if value is not None:
            if self.on_access is not None:
                self.on_access(address, size, False, True)
            self._credit_prefetch(address)
            return value, 0
        if self.on_access is not None:
            self.on_access(address, size, False, False)
        cycles = self._fill_line(address)
        value = self.cache.read(address, size)
        # The refill read is part of the miss, not a second reference.
        self.cache.stats.read_hits -= 1
        assert value is not None, "line fill must make the address resident"
        cycles += self._maybe_prefetch(address)
        bucket = cycles.bit_length()
        self.miss_cycle_buckets[bucket if bucket < 15 else 15] += 1
        self.miss_cycles_sum += cycles
        return value, cycles

    def write(self, address: int, size: int, value: int) -> int:
        if not self.enabled or not self.cacheable(address):
            self.bypass_count += 1
            return self.backing.write(address, size, value)
        hit = self.cache.write(address, size, value)
        if self.on_access is not None:
            self.on_access(address, size, True, hit)
        # Write-through: memory is always updated.  The pipeline's store
        # cost covers a non-blocked write buffer; the bus reports extra
        # wait states only (e.g. SDRAM read-modify-write).
        return self.backing.write(address, size, value)

    # -- line fill ------------------------------------------------------------

    def _fill_line(self, address: int) -> int:
        geometry = self.geometry
        base = geometry.line_base(address)
        nwords = geometry.line_size // 4
        read_burst = getattr(self.backing, "read_burst", None)
        if read_burst is not None:
            words, cycles = read_burst(base, nwords)
        else:
            words, cycles = [], 0
            for i in range(nwords):
                word, extra = self.backing.read(base + 4 * i, 4)
                words.append(word)
                cycles += 1 + extra
        data = b"".join(word.to_bytes(4, "big") for word in words)
        self.cache.fill(base, data)
        self.fill_count += 1
        return cycles

    # -- prefetching ---------------------------------------------------------

    def _maybe_prefetch(self, miss_address: int) -> int:
        """After a demand miss, let the prefetch unit fetch ahead.

        The speculative fill itself overlaps with execution (the engine
        has its own bus slots); the demand miss pays only the fixed
        issue cost.  Returns the cycles to add to the demand miss.
        """
        if self.prefetcher is None:
            return 0
        prediction = self.prefetcher.predict(miss_address)
        if prediction is None:
            return 0
        base = self.geometry.line_base(prediction)
        if not self.cacheable(base) or self.cache.probe(base) is not None:
            return 0
        try:
            background = self._fill_line(base)
        except Exception:
            return 0  # prefetching past the end of a device is harmless
        self.prefetcher.stats.issued += 1
        self.prefetcher.stats.background_cycles += background
        self._speculative.add(base)
        return ISSUE_CYCLES

    def _credit_prefetch(self, address: int) -> None:
        if self.prefetcher is None or not self._speculative:
            return
        base = self.geometry.line_base(address)
        if base not in self._speculative:
            return
        self._speculative.discard(base)
        self.prefetcher.stats.useful += 1
        # Tagged prefetching: a hit on a prefetched line keeps the
        # engine running ahead of the stream, entirely in background.
        advance = getattr(self.prefetcher, "advance", None)
        if advance is None:
            return
        target = advance(base)
        if target is None:
            return
        next_base = self.geometry.line_base(target)
        if not self.cacheable(next_base) or \
                self.cache.probe(next_base) is not None:
            return
        try:
            background = self._fill_line(next_base)
        except Exception:
            return
        self.prefetcher.stats.issued += 1
        self.prefetcher.stats.background_cycles += background
        self._speculative.add(next_base)

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> int:
        """Invalidate everything; returns the flush cost in cycles."""
        self.cache.invalidate_all()
        self._speculative.clear()
        return self.flush_cycles

    def reset_stats(self) -> None:
        """Zero all accounting and retrain the speculative machinery.

        Used by the fast-forward handoff: after a flush, this puts the
        controller in the same canonical state it has right after
        construction, so a measured window reports identically no matter
        which engine (or checkpoint) produced the warmed-up machine.
        """
        self.cache.stats = CacheStats()
        self.cache.reset_replacement_state()
        self.fill_count = 0
        self.bypass_count = 0
        self.miss_cycle_buckets = [0] * 16
        self.miss_cycles_sum = 0
        self.prefetcher = make_prefetcher(self._prefetch_policy,
                                          self.geometry.line_size)
        self._speculative.clear()

    def stats_dict(self) -> dict:
        data = self.cache.stats.as_dict()
        data["fills"] = self.fill_count
        data["bypasses"] = self.bypass_count
        if self.prefetcher is not None:
            data["prefetch"] = {
                "policy": self.prefetcher.name,
                "issued": self.prefetcher.stats.issued,
                "useful": self.prefetcher.stats.useful,
                "accuracy": round(self.prefetcher.stats.accuracy, 3),
                "background_cycles": self.prefetcher.stats.background_cycles,
            }
        data["geometry"] = {
            "size": self.geometry.size,
            "line_size": self.geometry.line_size,
            "ways": self.geometry.ways,
            "replacement": self.geometry.replacement,
        }
        return data
