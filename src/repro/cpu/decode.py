"""Instruction decoding: 32-bit words to :class:`DecodedInstruction`.

Decoding is purely structural — field extraction per the three SPARC V8
instruction formats.  Legality (privilege, unimplemented opcodes, CWP range
checks) is the executor's job, because several of those checks depend on
processor state.

Decoded instructions are immutable and hashable, so the integer unit keeps
a per-word decode cache: programs in the simulator re-execute the same hot
words millions of times and re-decoding dominates the interpreter profile
otherwise (a lesson straight from the "no optimization without measuring"
workflow — the decode cache was added after profiling, and is covered by
``tests/cpu/test_decode.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import sign_extend


@dataclass(frozen=True, slots=True)
class DecodedInstruction:
    """All fields of an instruction word, format-agnostically.

    ``op``/``op2``/``op3`` select the operation; register numbers and the
    sign-extended immediate are pre-extracted.  ``disp30``/``disp22`` are
    *word* displacements already sign-extended (not yet shifted).
    """

    word: int
    op: int
    rd: int
    op2: int
    op3: int
    rs1: int
    rs2: int
    imm: bool           # i-bit: use simm13 instead of rs2
    simm13: int         # sign-extended 13-bit immediate
    asi: int            # alternate-space identifier (i = 0 memory forms)
    imm22: int          # SETHI constant (unshifted)
    disp22: int         # branch displacement, sign-extended words
    disp30: int         # call displacement, sign-extended words
    cond: int           # Bicc / Ticc condition field
    annul: bool         # branch annul bit
    opf: int            # FPop / CPop sub-opcode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DecodedInstruction(word=0x{self.word:08x}, op={self.op})"


def decode(word: int) -> DecodedInstruction:
    """Decode one instruction word."""
    op = (word >> 30) & 3
    rd = (word >> 25) & 0x1F
    op2 = (word >> 22) & 7
    op3 = (word >> 19) & 0x3F
    rs1 = (word >> 14) & 0x1F
    rs2 = word & 0x1F
    i_bit = bool((word >> 13) & 1)
    return DecodedInstruction(
        word=word,
        op=op,
        rd=rd,
        op2=op2,
        op3=op3,
        rs1=rs1,
        rs2=rs2,
        imm=i_bit,
        simm13=sign_extend(word, 13),
        asi=(word >> 5) & 0xFF,
        imm22=word & 0x3FFFFF,
        disp22=sign_extend(word, 22),
        disp30=sign_extend(word, 30),
        cond=(word >> 25) & 0xF,
        annul=bool((word >> 29) & 1),
        opf=(word >> 5) & 0x1FF,
    )


class DecodeCache:
    """Memoizing wrapper around :func:`decode`.

    A plain dict keyed by instruction word.  Bounded: when the cache
    exceeds *capacity* entries it is cleared wholesale (cheap, and hot
    loops re-warm within one iteration).
    """

    __slots__ = ("_cache", "capacity", "hits", "misses")

    def __init__(self, capacity: int = 65536):
        self._cache: dict[int, DecodedInstruction] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def lookup(self, word: int) -> DecodedInstruction:
        cached = self._cache.get(word)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if len(self._cache) >= self.capacity:
            self._cache.clear()
        inst = decode(word)
        self._cache[word] = inst
        return inst

    def clear(self) -> None:
        self._cache.clear()


__all__ = ["DecodedInstruction", "decode", "DecodeCache"]
