"""LEON2-style SPARC V8 soft-core model (the paper's processor substrate)."""

from repro.cpu.archstate import ArchState
from repro.cpu.blockcache import TranslatedUnit
from repro.cpu.decode import DecodedInstruction, decode
from repro.cpu.fastpath import FastMemory, FunctionalUnit
from repro.cpu.iu import IntegerUnit
from repro.cpu.pipeline import PipelineModel, TimingConfig
from repro.cpu.registers import ControlRegisters, RegisterFile
from repro.cpu.traps import ErrorMode, TrapException, WatchdogExpired

__all__ = [
    "ArchState",
    "DecodedInstruction",
    "decode",
    "FastMemory",
    "FunctionalUnit",
    "IntegerUnit",
    "TranslatedUnit",
    "PipelineModel",
    "TimingConfig",
    "ControlRegisters",
    "RegisterFile",
    "ErrorMode",
    "TrapException",
    "WatchdogExpired",
]
