"""LEON2 pipeline timing model.

The LEON2 integer unit is a 5-stage single-issue pipeline (FE, DE, EX, ME,
WR).  Rather than simulating the stages signal-by-signal, the Liquid
Architecture model charges each instruction its documented issue cost on a
cache hit (LEON2 user's manual, "instruction timing" table) and lets the
memory hierarchy report additional stall cycles for misses.  This is the
same quantity the paper's hardware cycle counter measures.

The table is parameterised by the multiplier/divider configuration, which
is part of the Liquid configuration space ("modifiable pipeline depth" and
"specialized hardware to accelerate frequently used instructions" are the
paper's own examples of tunable dimensions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.decode import DecodedInstruction
from repro.cpu.isa import (
    OP_ARITH,
    OP_BRANCH_SETHI,
    OP_CALL,
    OP_MEM,
    OP2_BICC,
    Op3,
    Op3Mem,
)


@dataclass(frozen=True)
class TimingConfig:
    """Per-operation issue costs (cycles, assuming cache hits).

    ``mul_cycles`` defaults to the LEON2 iterative (small-area) multiplier;
    a Liquid image with the pipelined 16x16 multiplier uses 4 (it shows up
    as a distinct point in the configuration space and in the synthesis
    area model).  ``load_use_interlock`` charges the 1-cycle bubble when a
    load result is consumed by the immediately following instruction.
    """

    alu_cycles: int = 1
    load_cycles: int = 2
    load_double_cycles: int = 3
    store_cycles: int = 3
    store_double_cycles: int = 4
    atomic_cycles: int = 3
    swap_cycles: int = 3
    branch_cycles: int = 1
    annulled_slot_cycles: int = 1
    # Extra bubbles on a *taken* control transfer beyond the delay slot.
    # The 5-stage LEON2 resolves branches early enough that the single
    # delay slot hides the redirect (0); a deeper pipeline resolves later
    # and pays bubbles; a 3-stage pipeline also pays 0.
    taken_cti_penalty: int = 0
    call_cycles: int = 1
    jmpl_cycles: int = 2
    rett_cycles: int = 2
    mul_cycles: int = 5
    div_cycles: int = 35
    wrpsr_cycles: int = 2
    trap_entry_cycles: int = 4
    custom_op_cycles: int = 1
    load_use_interlock: bool = True


_LOADS = frozenset({
    Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
    Op3Mem.LDA, Op3Mem.LDUBA, Op3Mem.LDUHA, Op3Mem.LDSBA, Op3Mem.LDSHA,
})
_LOADS_D = frozenset({Op3Mem.LDD, Op3Mem.LDDA})
_STORES = frozenset({
    Op3Mem.ST, Op3Mem.STB, Op3Mem.STH,
    Op3Mem.STA, Op3Mem.STBA, Op3Mem.STHA,
})
_STORES_D = frozenset({Op3Mem.STD, Op3Mem.STDA})
_MULS = frozenset({Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC})
_DIVS = frozenset({Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC})


class PipelineModel:
    """Cycle accountant for the 5-stage LEON2 integer pipeline."""

    def __init__(self, timing: TimingConfig | None = None):
        self.timing = timing or TimingConfig()
        self._last_load_rd: int | None = None
        #: Load-use bubbles charged (the repro.obs pipeline-stall series).
        self.interlock_stalls = 0

    def reset(self) -> None:
        self._last_load_rd = None

    def issue_cycles(self, inst: DecodedInstruction) -> int:
        """Cycles to issue *inst* assuming all memory accesses hit.

        Also tracks the load-use interlock: if the previous instruction
        was a load and this instruction sources its destination register,
        one bubble cycle is charged (LEON2 has no load-forward path to EX).
        """
        t = self.timing
        cycles = self._base_cycles(inst)
        if t.load_use_interlock and self._last_load_rd is not None:
            rd = self._last_load_rd
            if rd != 0 and self._reads_register(inst, rd):
                cycles += 1
                self.interlock_stalls += 1
        self._last_load_rd = None
        if inst.op == OP_MEM:
            op3 = inst.op3
            if op3 in _LOADS:
                self._last_load_rd = inst.rd
            elif op3 in _LOADS_D:
                self._last_load_rd = inst.rd + 1
        return cycles

    def _base_cycles(self, inst: DecodedInstruction) -> int:
        t = self.timing
        op = inst.op
        if op == OP_CALL:
            return t.call_cycles
        if op == OP_BRANCH_SETHI:
            if inst.op2 == OP2_BICC:
                return t.branch_cycles
            return t.alu_cycles  # SETHI / UNIMP issue like ALU ops
        if op == OP_MEM:
            op3 = inst.op3
            if op3 in _LOADS:
                return t.load_cycles
            if op3 in _LOADS_D:
                return t.load_double_cycles
            if op3 in _STORES:
                return t.store_cycles
            if op3 in _STORES_D:
                return t.store_double_cycles
            if op3 in (Op3Mem.LDSTUB, Op3Mem.LDSTUBA):
                return t.atomic_cycles
            if op3 in (Op3Mem.SWAP, Op3Mem.SWAPA):
                return t.swap_cycles
            return t.alu_cycles
        # op == OP_ARITH
        op3 = inst.op3
        if op3 == Op3.JMPL:
            return t.jmpl_cycles
        if op3 == Op3.RETT:
            return t.rett_cycles
        if op3 in _MULS:
            return t.mul_cycles
        if op3 in _DIVS:
            return t.div_cycles
        if op3 in (Op3.WRPSR, Op3.WRWIM, Op3.WRTBR):
            return t.wrpsr_cycles
        if op3 in (Op3.CPOP1, Op3.CPOP2):
            return t.custom_op_cycles
        return t.alu_cycles

    @staticmethod
    def _reads_register(inst: DecodedInstruction, reg: int) -> bool:
        """Conservative source-register check for the load-use interlock."""
        if inst.op == OP_CALL:
            return False
        if inst.op == OP_BRANCH_SETHI:
            return False
        if inst.rs1 == reg:
            return True
        if not inst.imm and inst.rs2 == reg:
            return True
        # Stores read rd as data.
        if inst.op == OP_MEM and inst.op3 in (_STORES | _STORES_D) and inst.rd == reg:
            return True
        return False
