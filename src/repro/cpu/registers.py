"""LEON2 register state: windowed integer registers and control registers.

The SPARC V8 integer unit exposes 8 global registers plus a sliding window
of 24 registers (8 *out*, 8 *local*, 8 *in*) over a circular file of
``NWINDOWS * 16`` registers.  ``SAVE`` decrements the current window
pointer (CWP); ``RESTORE``/``RETT`` increment it.  A window whose bit is
set in the Window Invalid Mask (WIM) may not become current — attempting
to do so raises a window overflow/underflow trap.

The LEON2 core shipped with ``NWINDOWS = 8``; the Liquid Architecture
configuration space makes this a tunable parameter, so the file size here
is a constructor argument.
"""

from __future__ import annotations

from repro.cpu import isa
from repro.utils import u32


class RegisterWindowError(Exception):
    """Raised for out-of-range register indices (a modelling bug, not a trap)."""


class RegisterFile:
    """Windowed SPARC integer register file.

    Registers are addressed 0..31 relative to the current window:

    * 0..7   — globals (``%g0``–``%g7``); ``%g0`` reads as zero.
    * 8..15  — outs (``%o0``–``%o7``); become the *ins* of the next window.
    * 16..23 — locals (``%l0``–``%l7``).
    * 24..31 — ins (``%i0``–``%i7``).
    """

    __slots__ = ("nwindows", "cwp", "_globals", "_window_regs", "_size")

    def __init__(self, nwindows: int = isa.DEFAULT_NWINDOWS):
        if not (2 <= nwindows <= 32):
            raise ValueError(f"NWINDOWS must be in [2, 32], got {nwindows}")
        self.nwindows = nwindows
        self.cwp = 0
        self._globals = [0] * 8
        # Circular file: window w uses slots [w*16, w*16+32) mod size,
        # where the low 16 are the outs+locals and the next 16 (i.e. the
        # outs+locals of window w+1) alias this window's ins.
        self._window_regs = [0] * (nwindows * 16)
        self._size = nwindows * 16

    # -- raw slot resolution -------------------------------------------------

    def _slot(self, reg: int) -> int:
        """Map window-relative register 8..31 to a circular-file slot.

        outs of window w live at w*16+0..7, locals at w*16+8..15, and
        ins alias the outs of window (w+1) mod nwindows — which all
        collapse to the one expression below: outs and locals are
        ``w*16 + (reg-8)``, and ins are ``(w+1)*16 + (reg-24) =
        w*16 + (reg-8)`` as well, modulo the file size.  ``read`` and
        ``write`` inline this expression on their hot paths.
        """
        if 8 <= reg <= 31:
            return (self.cwp * 16 + reg - 8) % self._size
        raise RegisterWindowError(f"register index {reg} is not windowed")

    # -- architectural access ------------------------------------------------

    def read(self, reg: int) -> int:
        """Read window-relative register *reg* (0..31)."""
        if reg == 0:
            return 0
        if reg < 8:
            return self._globals[reg]
        if reg < 32:
            # Inlined _slot() — this is the simulator's hottest path.
            return self._window_regs[(self.cwp * 16 + reg - 8) % self._size]
        raise RegisterWindowError(f"register index {reg} out of range")

    def write(self, reg: int, value: int) -> None:
        """Write window-relative register *reg*; writes to ``%g0`` vanish."""
        if reg == 0:
            return
        value = value & 0xFFFFFFFF
        if reg < 8:
            self._globals[reg] = value
        elif reg < 32:
            self._window_regs[(self.cwp * 16 + reg - 8) % self._size] = value
        else:
            raise RegisterWindowError(f"register index {reg} out of range")

    def read_window(self, cwp: int, reg: int) -> int:
        """Read register *reg* as seen from window *cwp* (trap handlers)."""
        saved = self.cwp
        self.cwp = cwp % self.nwindows
        try:
            return self.read(reg)
        finally:
            self.cwp = saved

    def write_window(self, cwp: int, reg: int, value: int) -> None:
        """Write register *reg* as seen from window *cwp*."""
        saved = self.cwp
        self.cwp = cwp % self.nwindows
        try:
            self.write(reg, value)
        finally:
            self.cwp = saved

    def state(self) -> dict:
        """Full raw-file snapshot (ArchState checkpointing) — every slot,
        not just the current window's view."""
        return {
            "nwindows": self.nwindows,
            "cwp": self.cwp,
            "globals": list(self._globals),
            "window_regs": list(self._window_regs),
        }

    def load_state(self, state: dict) -> None:
        if state["nwindows"] != self.nwindows:
            raise ValueError(
                f"register snapshot has NWINDOWS={state['nwindows']}, "
                f"this file has {self.nwindows}")
        self.cwp = state["cwp"] % self.nwindows
        self._globals[:] = state["globals"]
        self._window_regs[:] = state["window_regs"]

    def snapshot(self) -> dict[str, int]:
        """Window-relative view of all 32 registers, for debugging/tests."""
        names = (
            [f"g{i}" for i in range(8)]
            + [f"o{i}" for i in range(8)]
            + [f"l{i}" for i in range(8)]
            + [f"i{i}" for i in range(8)]
        )
        return {name: self.read(i) for i, name in enumerate(names)}


class ControlRegisters:
    """PSR, WIM, TBR and Y — the SPARC V8 state registers.

    The PSR is stored as a single 32-bit value; properties expose the
    fields used by the executor.  ``impl``/``ver`` read back the LEON2
    identification values regardless of what was written, matching the
    hardware's read-only fields.
    """

    __slots__ = ("psr", "wim", "tbr", "y", "nwindows")

    def __init__(self, nwindows: int = isa.DEFAULT_NWINDOWS):
        self.nwindows = nwindows
        self.psr = (
            (isa.LEON_IMPL << isa.PSR_IMPL_SHIFT)
            | (isa.LEON_VER << isa.PSR_VER_SHIFT)
            | (1 << isa.PSR_S_SHIFT)  # reset enters supervisor mode
        )
        self.wim = 0
        self.tbr = 0
        self.y = 0

    # -- PSR fields ----------------------------------------------------------

    @property
    def cwp(self) -> int:
        return self.psr & 0x1F

    @cwp.setter
    def cwp(self, value: int) -> None:
        self.psr = (self.psr & ~0x1F) | (value % self.nwindows)

    @property
    def et(self) -> bool:
        return bool(self.psr & (1 << isa.PSR_ET_SHIFT))

    @et.setter
    def et(self, value: bool) -> None:
        mask = 1 << isa.PSR_ET_SHIFT
        self.psr = (self.psr | mask) if value else (self.psr & ~mask)

    @property
    def s(self) -> bool:
        return bool(self.psr & (1 << isa.PSR_S_SHIFT))

    @s.setter
    def s(self, value: bool) -> None:
        mask = 1 << isa.PSR_S_SHIFT
        self.psr = (self.psr | mask) if value else (self.psr & ~mask)

    @property
    def ps(self) -> bool:
        return bool(self.psr & (1 << isa.PSR_PS_SHIFT))

    @ps.setter
    def ps(self, value: bool) -> None:
        mask = 1 << isa.PSR_PS_SHIFT
        self.psr = (self.psr | mask) if value else (self.psr & ~mask)

    @property
    def pil(self) -> int:
        return (self.psr >> isa.PSR_PIL_SHIFT) & 0xF

    @pil.setter
    def pil(self, value: int) -> None:
        self.psr = (self.psr & ~(0xF << isa.PSR_PIL_SHIFT)) | (
            (value & 0xF) << isa.PSR_PIL_SHIFT
        )

    # -- condition codes -----------------------------------------------------

    @property
    def icc(self) -> tuple[int, int, int, int]:
        """Return ``(n, z, v, c)`` as 0/1 ints."""
        return (
            (self.psr >> 23) & 1,
            (self.psr >> 22) & 1,
            (self.psr >> 21) & 1,
            (self.psr >> 20) & 1,
        )

    def set_icc(self, n: int, z: int, v: int, c: int) -> None:
        self.psr = (self.psr & ~(0xF << isa.PSR_ICC_SHIFT)) | (
            ((n & 1) << 23) | ((z & 1) << 22) | ((v & 1) << 21) | ((c & 1) << 20)
        )

    def write_psr(self, value: int) -> None:
        """WRPSR semantics: impl/ver are read-only; CWP is range-checked
        by the caller (illegal_instruction if >= NWINDOWS)."""
        keep = (0xF << isa.PSR_IMPL_SHIFT) | (0xF << isa.PSR_VER_SHIFT)
        self.psr = (self.psr & keep) | (u32(value) & ~keep)

    # -- snapshot (ArchState checkpointing) ----------------------------------

    def state(self) -> dict:
        return {"psr": self.psr, "wim": self.wim, "tbr": self.tbr,
                "y": self.y}

    def load_state(self, state: dict) -> None:
        self.psr = state["psr"]
        self.wim = state["wim"]
        self.tbr = state["tbr"]
        self.y = state["y"]

    # -- TBR -----------------------------------------------------------------

    @property
    def tba(self) -> int:
        """Trap base address (TBR bits 31:12)."""
        return self.tbr & 0xFFFFF000

    @tba.setter
    def tba(self, value: int) -> None:
        self.tbr = (self.tbr & 0xFFF) | (u32(value) & 0xFFFFF000)

    @property
    def tt(self) -> int:
        """Trap type (TBR bits 11:4)."""
        return (self.tbr >> 4) & 0xFF

    @tt.setter
    def tt(self, value: int) -> None:
        self.tbr = (self.tbr & ~0xFF0) | ((value & 0xFF) << 4)
