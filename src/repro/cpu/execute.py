"""SPARC V8 instruction semantics.

Each handler takes the integer unit (which owns registers, control state
and the memory ports) and a decoded instruction, mutates architectural
state, and returns nothing; control-flow handlers additionally set the
IU's ``(pc, npc)`` successor pair via :meth:`IntegerUnit.transfer`.

The dispatch tables at the bottom (``ARITH_HANDLERS``/``MEM_HANDLERS``)
are indexed by ``op3`` and consulted by :mod:`repro.cpu.iu` — a flat table
lookup keeps the interpreter's inner loop cheap, per the profiling-first
guidance this project follows.

Handlers raise :class:`repro.cpu.traps.TrapException` for architectural
traps; the step loop performs trap entry.  State mutated *before* a trap
is raised must be architecturally safe: every handler validates (alignment,
privilege, WIM) before writing results, which the property-based tests in
``tests/cpu/test_execute_properties.py`` exercise.
"""

from __future__ import annotations

from repro.cpu import isa, traps
from repro.cpu.decode import DecodedInstruction
from repro.cpu.isa import Cond, Op3, Op3Mem, Trap
from repro.utils import s32, u32

# ---------------------------------------------------------------------------
# Condition-code evaluation
# ---------------------------------------------------------------------------


def evaluate_cond(cond: int, n: int, z: int, v: int, c: int) -> bool:
    """Evaluate an integer condition code against the icc bits."""
    if cond == Cond.A:
        return True
    if cond == Cond.N:
        return False
    if cond == Cond.NE:
        return not z
    if cond == Cond.E:
        return bool(z)
    if cond == Cond.G:
        return not (z or (n ^ v))
    if cond == Cond.LE:
        return bool(z or (n ^ v))
    if cond == Cond.GE:
        return not (n ^ v)
    if cond == Cond.L:
        return bool(n ^ v)
    if cond == Cond.GU:
        return not (c or z)
    if cond == Cond.LEU:
        return bool(c or z)
    if cond == Cond.CC:
        return not c
    if cond == Cond.CS:
        return bool(c)
    if cond == Cond.POS:
        return not n
    if cond == Cond.NEG:
        return bool(n)
    if cond == Cond.VC:
        return not v
    if cond == Cond.VS:
        return bool(v)
    raise traps.illegal_instruction(f"bad cond {cond}")


# ---------------------------------------------------------------------------
# Operand helpers
# ---------------------------------------------------------------------------


def operand2(iu, inst: DecodedInstruction) -> int:
    """Second ALU operand: simm13 when the i-bit is set, else r[rs2]."""
    return u32(inst.simm13) if inst.imm else iu.regs.read(inst.rs2)


# ---------------------------------------------------------------------------
# Arithmetic / logical
# ---------------------------------------------------------------------------


def _add(iu, inst, *, cc: bool, carry_in: bool, tagged: bool = False,
         trap_v: bool = False) -> None:
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    cin = iu.ctrl.icc[3] if carry_in else 0
    total = a + b + cin
    result = u32(total)
    v = ((~(a ^ b) & (a ^ result)) >> 31) & 1
    if tagged and ((a | b) & 3):
        v = 1
    if trap_v and v:
        raise traps.tag_overflow()
    iu.regs.write(inst.rd, result)
    if cc:
        iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, v,
                        1 if total > 0xFFFF_FFFF else 0)


def _sub(iu, inst, *, cc: bool, carry_in: bool, tagged: bool = False,
         trap_v: bool = False, write_rd: bool = True) -> None:
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    cin = iu.ctrl.icc[3] if carry_in else 0
    total = a - b - cin
    result = u32(total)
    v = (((a ^ b) & (a ^ result)) >> 31) & 1
    if tagged and ((a | b) & 3):
        v = 1
    if trap_v and v:
        raise traps.tag_overflow()
    if write_rd:
        iu.regs.write(inst.rd, result)
    if cc:
        iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, v,
                        1 if total < 0 else 0)


def _logic(iu, inst, fn, *, cc: bool) -> None:
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    result = u32(fn(a, b))
    iu.regs.write(inst.rd, result)
    if cc:
        iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, 0, 0)


def exec_add(iu, inst):
    _add(iu, inst, cc=False, carry_in=False)


def exec_addcc(iu, inst):
    _add(iu, inst, cc=True, carry_in=False)


def exec_addx(iu, inst):
    _add(iu, inst, cc=False, carry_in=True)


def exec_addxcc(iu, inst):
    _add(iu, inst, cc=True, carry_in=True)


def exec_taddcc(iu, inst):
    _add(iu, inst, cc=True, carry_in=False, tagged=True)


def exec_taddcctv(iu, inst):
    _add(iu, inst, cc=True, carry_in=False, tagged=True, trap_v=True)


def exec_sub(iu, inst):
    _sub(iu, inst, cc=False, carry_in=False)


def exec_subcc(iu, inst):
    _sub(iu, inst, cc=True, carry_in=False)


def exec_subx(iu, inst):
    _sub(iu, inst, cc=False, carry_in=True)


def exec_subxcc(iu, inst):
    _sub(iu, inst, cc=True, carry_in=True)


def exec_tsubcc(iu, inst):
    _sub(iu, inst, cc=True, carry_in=False, tagged=True)


def exec_tsubcctv(iu, inst):
    _sub(iu, inst, cc=True, carry_in=False, tagged=True, trap_v=True)


def exec_and(iu, inst):
    _logic(iu, inst, lambda a, b: a & b, cc=False)


def exec_andcc(iu, inst):
    _logic(iu, inst, lambda a, b: a & b, cc=True)


def exec_andn(iu, inst):
    _logic(iu, inst, lambda a, b: a & ~b, cc=False)


def exec_andncc(iu, inst):
    _logic(iu, inst, lambda a, b: a & ~b, cc=True)


def exec_or(iu, inst):
    _logic(iu, inst, lambda a, b: a | b, cc=False)


def exec_orcc(iu, inst):
    _logic(iu, inst, lambda a, b: a | b, cc=True)


def exec_orn(iu, inst):
    _logic(iu, inst, lambda a, b: a | ~b, cc=False)


def exec_orncc(iu, inst):
    _logic(iu, inst, lambda a, b: a | ~b, cc=True)


def exec_xor(iu, inst):
    _logic(iu, inst, lambda a, b: a ^ b, cc=False)


def exec_xorcc(iu, inst):
    _logic(iu, inst, lambda a, b: a ^ b, cc=True)


def exec_xnor(iu, inst):
    _logic(iu, inst, lambda a, b: a ^ ~b, cc=False)


def exec_xnorcc(iu, inst):
    _logic(iu, inst, lambda a, b: a ^ ~b, cc=True)


# ---------------------------------------------------------------------------
# Shifts
# ---------------------------------------------------------------------------


def exec_sll(iu, inst):
    count = operand2(iu, inst) & 0x1F
    iu.regs.write(inst.rd, u32(iu.regs.read(inst.rs1) << count))


def exec_srl(iu, inst):
    count = operand2(iu, inst) & 0x1F
    iu.regs.write(inst.rd, iu.regs.read(inst.rs1) >> count)


def exec_sra(iu, inst):
    count = operand2(iu, inst) & 0x1F
    iu.regs.write(inst.rd, u32(s32(iu.regs.read(inst.rs1)) >> count))


# ---------------------------------------------------------------------------
# Multiply / divide (SPARC V8 optional instructions — present in LEON2)
# ---------------------------------------------------------------------------


def _mul(iu, inst, *, signed: bool, cc: bool) -> None:
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    if signed:
        product = s32(a) * s32(b)
    else:
        product = a * b
    product &= 0xFFFF_FFFF_FFFF_FFFF
    iu.ctrl.y = (product >> 32) & 0xFFFF_FFFF
    result = u32(product)
    iu.regs.write(inst.rd, result)
    if cc:
        iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, 0, 0)


def exec_umul(iu, inst):
    _mul(iu, inst, signed=False, cc=False)


def exec_umulcc(iu, inst):
    _mul(iu, inst, signed=False, cc=True)


def exec_smul(iu, inst):
    _mul(iu, inst, signed=True, cc=False)


def exec_smulcc(iu, inst):
    _mul(iu, inst, signed=True, cc=True)


def _div(iu, inst, *, signed: bool, cc: bool) -> None:
    divisor = operand2(iu, inst)
    if divisor == 0:
        raise traps.division_by_zero()
    dividend = (iu.ctrl.y << 32) | iu.regs.read(inst.rs1)
    overflow = 0
    if signed:
        if dividend & (1 << 63):
            dividend -= 1 << 64
        sdiv = s32(divisor)
        quotient = int(dividend / sdiv)  # SPARC divides toward zero
        if quotient > 0x7FFF_FFFF:
            quotient, overflow = 0x7FFF_FFFF, 1
        elif quotient < -0x8000_0000:
            quotient, overflow = -0x8000_0000, 1
    else:
        quotient = dividend // divisor
        if quotient > 0xFFFF_FFFF:
            quotient, overflow = 0xFFFF_FFFF, 1
    result = u32(quotient)
    iu.regs.write(inst.rd, result)
    if cc:
        iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, overflow, 0)


def exec_udiv(iu, inst):
    _div(iu, inst, signed=False, cc=False)


def exec_udivcc(iu, inst):
    _div(iu, inst, signed=False, cc=True)


def exec_sdiv(iu, inst):
    _div(iu, inst, signed=True, cc=False)


def exec_sdivcc(iu, inst):
    _div(iu, inst, signed=True, cc=True)


def exec_mulscc(iu, inst):
    """Multiply-step: one iteration of the original SPARC mul support."""
    n, z, v, c = iu.ctrl.icc
    rs1 = iu.regs.read(inst.rs1)
    op1 = ((n ^ v) << 31) | (rs1 >> 1)
    op2 = operand2(iu, inst) if (iu.ctrl.y & 1) else 0
    total = op1 + op2
    result = u32(total)
    iu.ctrl.y = ((rs1 & 1) << 31) | (iu.ctrl.y >> 1)
    vbit = ((~(op1 ^ op2) & (op1 ^ result)) >> 31) & 1
    iu.regs.write(inst.rd, result)
    iu.ctrl.set_icc((result >> 31) & 1, 1 if result == 0 else 0, vbit,
                    1 if total > 0xFFFF_FFFF else 0)


# ---------------------------------------------------------------------------
# SAVE / RESTORE
# ---------------------------------------------------------------------------


def exec_save(iu, inst):
    ctrl = iu.ctrl
    new_cwp = (ctrl.cwp - 1) % iu.regs.nwindows
    if (ctrl.wim >> new_cwp) & 1:
        raise traps.window_overflow()
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    result = u32(a + b)
    ctrl.cwp = new_cwp
    iu.regs.cwp = new_cwp
    iu.regs.write(inst.rd, result)


def exec_restore(iu, inst):
    ctrl = iu.ctrl
    new_cwp = (ctrl.cwp + 1) % iu.regs.nwindows
    if (ctrl.wim >> new_cwp) & 1:
        raise traps.window_underflow()
    a = iu.regs.read(inst.rs1)
    b = operand2(iu, inst)
    result = u32(a + b)
    ctrl.cwp = new_cwp
    iu.regs.cwp = new_cwp
    iu.regs.write(inst.rd, result)


# ---------------------------------------------------------------------------
# Control transfer
# ---------------------------------------------------------------------------


def exec_jmpl(iu, inst):
    target = u32(iu.regs.read(inst.rs1) + (inst.simm13 if inst.imm
                                           else iu.regs.read(inst.rs2)))
    if target & 3:
        raise traps.mem_address_not_aligned(target)
    iu.regs.write(inst.rd, iu.pc)
    iu.transfer(target)


def exec_rett(iu, inst):
    ctrl = iu.ctrl
    if ctrl.et:
        # RETT with traps enabled is an illegal-instruction trap.
        raise traps.illegal_instruction("RETT with ET=1")
    if not ctrl.s:
        raise traps.privileged_instruction("RETT in user mode")
    target = u32(iu.regs.read(inst.rs1) + (inst.simm13 if inst.imm
                                           else iu.regs.read(inst.rs2)))
    if target & 3:
        raise traps.mem_address_not_aligned(target)
    new_cwp = (ctrl.cwp + 1) % iu.regs.nwindows
    if (ctrl.wim >> new_cwp) & 1:
        raise traps.window_underflow()
    ctrl.cwp = new_cwp
    iu.regs.cwp = new_cwp
    ctrl.et = True
    ctrl.s = ctrl.ps
    iu.transfer(target)


def exec_ticc(iu, inst):
    n, z, v, c = iu.ctrl.icc
    if evaluate_cond(inst.cond, n, z, v, c):
        number = u32(iu.regs.read(inst.rs1) +
                     (inst.simm13 if inst.imm else iu.regs.read(inst.rs2)))
        raise traps.software_trap(number)


# ---------------------------------------------------------------------------
# State-register access
# ---------------------------------------------------------------------------


def exec_rdasr(iu, inst):
    if inst.rs1 == 0:  # RDY
        iu.regs.write(inst.rd, iu.ctrl.y)
    elif inst.rs1 == 15 and inst.rd == 0:
        pass  # STBAR: store barrier — a no-op in this memory model
    else:
        value = iu.read_asr(inst.rs1)
        iu.regs.write(inst.rd, value)


def exec_rdpsr(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("RDPSR")
    iu.regs.write(inst.rd, iu.ctrl.psr)


def exec_rdwim(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("RDWIM")
    iu.regs.write(inst.rd, iu.ctrl.wim & ((1 << iu.regs.nwindows) - 1))


def exec_rdtbr(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("RDTBR")
    iu.regs.write(inst.rd, iu.ctrl.tbr)


def exec_wrasr(iu, inst):
    value = u32(iu.regs.read(inst.rs1) ^ operand2(iu, inst))
    if inst.rd == 0:  # WRY
        iu.ctrl.y = value
    else:
        iu.write_asr(inst.rd, value)


def exec_wrpsr(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("WRPSR")
    value = u32(iu.regs.read(inst.rs1) ^ operand2(iu, inst))
    if (value & 0x1F) >= iu.regs.nwindows:
        raise traps.illegal_instruction("WRPSR CWP out of range")
    iu.ctrl.write_psr(value)
    iu.regs.cwp = iu.ctrl.cwp


def exec_wrwim(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("WRWIM")
    value = u32(iu.regs.read(inst.rs1) ^ operand2(iu, inst))
    iu.ctrl.wim = value & ((1 << iu.regs.nwindows) - 1)


def exec_wrtbr(iu, inst):
    if not iu.ctrl.s:
        raise traps.privileged_instruction("WRTBR")
    value = u32(iu.regs.read(inst.rs1) ^ operand2(iu, inst))
    iu.ctrl.tba = value


def exec_flush(iu, inst):
    """FLUSH: cache coherence point.  LEON2's flush empties both caches
    (the modified boot ROM leans on this to observe mailbox writes made
    while the processor was disconnected from main memory)."""
    iu.flush_icache()
    iu.flush_dcache()


def exec_fpop(iu, inst):
    """LEON2 on the FPX was synthesized without the Meiko FPU: EF=0 so
    every FPop raises fp_disabled (software emulation is the OS's job)."""
    raise traps.fp_disabled()


def exec_cpop1(iu, inst):
    """CPop1 space is reclaimed for Liquid Architecture custom instructions.

    The architecture generator can attach accelerator semantics here (see
    :mod:`repro.core.rewriter`); without a registered extension the LEON
    behaves as shipped and raises cp_disabled.
    """
    handler = iu.extensions.get(inst.opf)
    if handler is None:
        raise traps.cp_disabled()
    handler(iu, inst)


def exec_cpop2(iu, inst):
    raise traps.cp_disabled()


# ---------------------------------------------------------------------------
# Memory operations
# ---------------------------------------------------------------------------


def _effective_address(iu, inst) -> int:
    return u32(iu.regs.read(inst.rs1) +
               (inst.simm13 if inst.imm else iu.regs.read(inst.rs2)))


def _check_alternate(iu, inst) -> None:
    """Alternate-space forms are privileged and never have an i-bit."""
    if inst.imm:
        raise traps.illegal_instruction("alternate-space access with i=1")
    if not iu.ctrl.s:
        raise traps.privileged_instruction("ASI access in user mode")


def _load(iu, inst, size: int, signed: bool) -> None:
    addr = _effective_address(iu, inst)
    if size > 1 and addr % size:
        raise traps.mem_address_not_aligned(addr)
    value = iu.data_read(addr, size, signed=signed)
    iu.regs.write(inst.rd, u32(value))


def exec_ld(iu, inst):
    _load(iu, inst, 4, False)


def exec_ldub(iu, inst):
    _load(iu, inst, 1, False)


def exec_lduh(iu, inst):
    _load(iu, inst, 2, False)


def exec_ldsb(iu, inst):
    _load(iu, inst, 1, True)


def exec_ldsh(iu, inst):
    _load(iu, inst, 2, True)


def exec_ldd(iu, inst):
    if inst.rd & 1:
        raise traps.illegal_instruction("LDD with odd rd")
    addr = _effective_address(iu, inst)
    if addr % 8:
        raise traps.mem_address_not_aligned(addr)
    hi = iu.data_read(addr, 4, signed=False)
    lo = iu.data_read(addr + 4, 4, signed=False)
    iu.regs.write(inst.rd, hi)
    iu.regs.write(inst.rd + 1, lo)


def _store(iu, inst, size: int) -> None:
    addr = _effective_address(iu, inst)
    if size > 1 and addr % size:
        raise traps.mem_address_not_aligned(addr)
    iu.data_write(addr, size, iu.regs.read(inst.rd))


def exec_st(iu, inst):
    _store(iu, inst, 4)


def exec_stb(iu, inst):
    _store(iu, inst, 1)


def exec_sth(iu, inst):
    _store(iu, inst, 2)


def exec_std(iu, inst):
    if inst.rd & 1:
        raise traps.illegal_instruction("STD with odd rd")
    addr = _effective_address(iu, inst)
    if addr % 8:
        raise traps.mem_address_not_aligned(addr)
    iu.data_write(addr, 4, iu.regs.read(inst.rd))
    iu.data_write(addr + 4, 4, iu.regs.read(inst.rd + 1))


def exec_ldstub(iu, inst):
    """Atomic load-store unsigned byte (the SPARC test-and-set)."""
    addr = _effective_address(iu, inst)
    value = iu.data_read(addr, 1, signed=False)
    iu.data_write(addr, 1, 0xFF)
    iu.regs.write(inst.rd, value)


def exec_swap(iu, inst):
    addr = _effective_address(iu, inst)
    if addr % 4:
        raise traps.mem_address_not_aligned(addr)
    old = iu.data_read(addr, 4, signed=False)
    iu.data_write(addr, 4, iu.regs.read(inst.rd))
    iu.regs.write(inst.rd, old)


def _alternate(plain_handler):
    """Wrap a plain memory handler into its privileged ASI twin.

    The LEON model routes the cache-flush ASIs specially; all other ASIs
    fall through to the normal address space (the FPX build had no MMU).
    """

    def handler(iu, inst):
        _check_alternate(iu, inst)
        if inst.asi == isa.ASI_ICACHE_FLUSH:
            iu.flush_icache()
            return
        if inst.asi == isa.ASI_DCACHE_FLUSH:
            iu.flush_dcache()
            return
        plain_handler(iu, inst)

    handler.__name__ = plain_handler.__name__ + "a"
    return handler


# ---------------------------------------------------------------------------
# Dispatch tables
# ---------------------------------------------------------------------------

ARITH_HANDLERS = {
    Op3.ADD: exec_add, Op3.ADDCC: exec_addcc,
    Op3.ADDX: exec_addx, Op3.ADDXCC: exec_addxcc,
    Op3.TADDCC: exec_taddcc, Op3.TADDCCTV: exec_taddcctv,
    Op3.SUB: exec_sub, Op3.SUBCC: exec_subcc,
    Op3.SUBX: exec_subx, Op3.SUBXCC: exec_subxcc,
    Op3.TSUBCC: exec_tsubcc, Op3.TSUBCCTV: exec_tsubcctv,
    Op3.AND: exec_and, Op3.ANDCC: exec_andcc,
    Op3.ANDN: exec_andn, Op3.ANDNCC: exec_andncc,
    Op3.OR: exec_or, Op3.ORCC: exec_orcc,
    Op3.ORN: exec_orn, Op3.ORNCC: exec_orncc,
    Op3.XOR: exec_xor, Op3.XORCC: exec_xorcc,
    Op3.XNOR: exec_xnor, Op3.XNORCC: exec_xnorcc,
    Op3.SLL: exec_sll, Op3.SRL: exec_srl, Op3.SRA: exec_sra,
    Op3.UMUL: exec_umul, Op3.UMULCC: exec_umulcc,
    Op3.SMUL: exec_smul, Op3.SMULCC: exec_smulcc,
    Op3.UDIV: exec_udiv, Op3.UDIVCC: exec_udivcc,
    Op3.SDIV: exec_sdiv, Op3.SDIVCC: exec_sdivcc,
    Op3.MULSCC: exec_mulscc,
    Op3.SAVE: exec_save, Op3.RESTORE: exec_restore,
    Op3.JMPL: exec_jmpl, Op3.RETT: exec_rett, Op3.TICC: exec_ticc,
    Op3.RDASR: exec_rdasr, Op3.RDPSR: exec_rdpsr,
    Op3.RDWIM: exec_rdwim, Op3.RDTBR: exec_rdtbr,
    Op3.WRASR: exec_wrasr, Op3.WRPSR: exec_wrpsr,
    Op3.WRWIM: exec_wrwim, Op3.WRTBR: exec_wrtbr,
    Op3.FLUSH: exec_flush,
    Op3.FPOP1: exec_fpop, Op3.FPOP2: exec_fpop,
    Op3.CPOP1: exec_cpop1, Op3.CPOP2: exec_cpop2,
}

MEM_HANDLERS = {
    Op3Mem.LD: exec_ld, Op3Mem.LDUB: exec_ldub, Op3Mem.LDUH: exec_lduh,
    Op3Mem.LDD: exec_ldd, Op3Mem.LDSB: exec_ldsb, Op3Mem.LDSH: exec_ldsh,
    Op3Mem.ST: exec_st, Op3Mem.STB: exec_stb, Op3Mem.STH: exec_sth,
    Op3Mem.STD: exec_std, Op3Mem.LDSTUB: exec_ldstub, Op3Mem.SWAP: exec_swap,
    Op3Mem.LDA: _alternate(exec_ld), Op3Mem.LDUBA: _alternate(exec_ldub),
    Op3Mem.LDUHA: _alternate(exec_lduh), Op3Mem.LDDA: _alternate(exec_ldd),
    Op3Mem.LDSBA: _alternate(exec_ldsb), Op3Mem.LDSHA: _alternate(exec_ldsh),
    Op3Mem.STA: _alternate(exec_st), Op3Mem.STBA: _alternate(exec_stb),
    Op3Mem.STHA: _alternate(exec_sth), Op3Mem.STDA: _alternate(exec_std),
    Op3Mem.LDSTUBA: _alternate(exec_ldstub), Op3Mem.SWAPA: _alternate(exec_swap),
}
