"""Functional fast path: architectural SPARC V8 execution, no timing.

The cycle-accurate :class:`~repro.cpu.iu.IntegerUnit` pays for pipeline,
cache and bus modeling on every instruction — even through boot and
warmup regions nobody is measuring.  :class:`FunctionalUnit` executes
the same architecture at interpreter speed by dropping everything
micro-architectural:

* it **shares** the decoder (:class:`~repro.cpu.decode.DecodeCache`),
  the execute handlers (``ARITH_HANDLERS``/``MEM_HANDLERS``), the
  register file/control registers and the trap machinery with the
  IntegerUnit — the dispatch, branch and trap-entry methods are
  literally the IntegerUnit's own functions, so the two engines cannot
  drift apart semantically;
* memory goes through :class:`FastMemory` — a flat byte-array view over
  the same buffers the AHB slaves expose (zero-copy), with MMIO windows
  delegating to the APB bridge so UART/LED/timer/cycle-counter side
  effects are preserved;
* every step costs exactly one "cycle" (:attr:`cycles` mirrors
  :attr:`instret` plus annulled slots and trap entries), so the engine
  reports progress but never timing.

The randomized differential suite in ``tests/difftest`` proves the two
engines produce identical final architectural state and identical UART
output; :mod:`repro.cpu.archstate` moves state between them.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu import isa, traps
from repro.cpu.decode import DecodeCache, DecodedInstruction
from repro.cpu.execute import ARITH_HANDLERS, MEM_HANDLERS
from repro.cpu.iu import INTERRUPT_TRAP_BASE, IntegerUnit
from repro.cpu.registers import ControlRegisters, RegisterFile
from repro.mem.interface import BusError
from repro.utils import sign_extend, u32

__all__ = ["FastMemory", "FunctionalUnit", "MEMO_CAPACITY"]

#: Per-PC decode memo bound; reaching it clears the memo wholesale (the
#: same simple policy as :class:`~repro.cpu.decode.DecodeCache`).
MEMO_CAPACITY = 1 << 16


class FastMemory:
    """Flat byte-array view of a platform memory map.

    RAM/ROM regions alias the underlying ``bytearray`` of the
    cycle-accurate model's memories (:class:`~repro.mem.sram.SramBank`,
    :class:`~repro.mem.bootrom.BootRom`), so both engines observe the
    same bytes with no copying and no coherence step.  MMIO windows
    delegate word accesses to a device port (normally the
    :class:`~repro.bus.apb.ApbBridge`), discarding its wait-state
    accounting.  Big-endian, like the AHB.
    """

    def __init__(self):
        # (base, limit, buffer, writable, name)
        self._regions: list[tuple[int, int, bytearray, bool, str]] = []
        # (base, limit, port, name) — port implements MemoryPort.
        self._mmio: list[tuple[int, int, object, str]] = []

    def add_region(self, base: int, buffer: bytearray, *,
                   writable: bool = True, name: str = "ram") -> None:
        self._regions.append((base, base + len(buffer), buffer, writable,
                              name))

    def add_mmio(self, base: int, size: int, port, *,
                 name: str = "mmio") -> None:
        self._mmio.append((base, base + size, port, name))

    def read(self, address: int, size: int) -> int:
        for base, limit, buffer, _, _ in self._regions:
            if base <= address and address + size <= limit:
                offset = address - base
                return int.from_bytes(buffer[offset:offset + size], "big")
        for base, limit, port, _ in self._mmio:
            if base <= address and address + size <= limit:
                value, _ = port.read(address, size)
                return value
        raise BusError(address, "unmapped address")

    def read_code(self, address: int) -> tuple[int, bool]:
        """Instruction fetch: ``(word, from_ram)``.

        ``from_ram`` tells the caller whether the word came from a
        byte-array region (safe to memoize its decode per-PC under the
        FLUSH coherence contract) or from an MMIO window (never
        memoized — device reads can have side effects)."""
        for base, limit, buffer, _, _ in self._regions:
            if base <= address and address + 4 <= limit:
                offset = address - base
                return int.from_bytes(buffer[offset:offset + 4], "big"), True
        for base, limit, port, _ in self._mmio:
            if base <= address and address + 4 <= limit:
                value, _ = port.read(address, 4)
                return value, False
        raise BusError(address, "unmapped address")

    def read_code_ram(self, address: int) -> int | None:
        """Side-effect-free fetch probe for the block translator: the
        word at *address* if it lies in a byte-array region, else None
        (MMIO windows and unmapped space are never translated — device
        reads can have side effects and must go through :meth:`read_code`
        one instruction at a time)."""
        for base, limit, buffer, _, _ in self._regions:
            if base <= address and address + 4 <= limit:
                offset = address - base
                return int.from_bytes(buffer[offset:offset + 4], "big")
        return None

    def write(self, address: int, size: int, value: int) -> None:
        for base, limit, buffer, writable, name in self._regions:
            if base <= address and address + size <= limit:
                if not writable:
                    raise BusError(address, f"{name} is read-only")
                offset = address - base
                buffer[offset:offset + size] = \
                    (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")
                return
        for base, limit, port, _ in self._mmio:
            if base <= address and address + size <= limit:
                port.write(address, size, value)
                return
        raise BusError(address, "unmapped address")


def _exec_call(iu, inst) -> None:
    """OP_CALL leg of :meth:`IntegerUnit._dispatch`, as a free function
    so it can live in the pre-resolved handler memo."""
    iu.regs.write(15, iu.pc)
    iu.transfer(iu.pc + (inst.disp30 << 2))


def _exec_sethi(iu, inst) -> None:
    iu.regs.write(inst.rd, (inst.imm22 << 10) & 0xFFFFFFFF)


def _resolve_handler(inst: DecodedInstruction):
    """Pre-bind the execute handler :meth:`IntegerUnit._dispatch` would
    pick for *inst*, or None for anything that traps (illegal, FPop,
    CPop-without-extension decode errors) — those fall back to the
    shared ``_dispatch`` so the trap detail stays identical."""
    op = inst.op
    if op == isa.OP_ARITH:
        return ARITH_HANDLERS.get(inst.op3)
    if op == isa.OP_MEM:
        return MEM_HANDLERS.get(inst.op3)
    if op == isa.OP_CALL:
        return _exec_call
    if inst.op2 == isa.OP2_SETHI:
        return _exec_sethi
    if inst.op2 == isa.OP2_BICC:
        return IntegerUnit._branch
    return None


class _NullTiming:
    """Timing table of an engine that has no pipeline."""

    trap_entry_cycles = 0
    annulled_slot_cycles = 1


class _NullPipeline:
    """Stateless stand-in satisfying the shared trap-entry code."""

    timing = _NullTiming()

    def reset(self) -> None:
        pass


class FunctionalUnit:
    """SPARC V8 integer unit without a clock.

    Executes the identical instruction semantics as
    :class:`~repro.cpu.iu.IntegerUnit` (the dispatch/branch/trap-entry
    methods *are* the IntegerUnit's, bound to this object) but every
    step consumes one nominal cycle: no fetch stalls, no issue costs, no
    memory wait states.

    The register file, control registers, decode cache, extension table
    and ASR file may be shared **by reference** with a cycle-accurate
    unit — that is how :meth:`repro.core.sim.Simulator.functional_unit`
    builds the fast path over the live machine, so a handoff needs no
    architectural copying at all.
    """

    #: Shared stateless stand-in for the pipeline the trap-entry code
    #: expects to flush.
    pipeline = _NullPipeline()

    def __init__(
        self,
        mem: FastMemory,
        nwindows: int = 8,
        reset_pc: int = 0x0000_0000,
        *,
        regs: RegisterFile | None = None,
        ctrl: ControlRegisters | None = None,
        decode_cache: DecodeCache | None = None,
        extensions: dict | None = None,
        asr: dict | None = None,
    ):
        self.mem = mem
        self.regs = regs if regs is not None else RegisterFile(nwindows)
        self.ctrl = ctrl if ctrl is not None else ControlRegisters(
            self.regs.nwindows)
        self.decode_cache = (decode_cache if decode_cache is not None
                             else DecodeCache())
        self.extensions = extensions if extensions is not None else {}
        self.asr = asr if asr is not None else {}

        self.pc = u32(reset_pc)
        self.npc = u32(reset_pc + 4)
        self.annul = False
        self.halted = False
        self.error_tt: int | None = None

        self.cycles = 0
        self.instret = 0
        self.trap_count = 0
        self.annulled_slots = 0
        self.pipeline_flushes = 0

        self.on_trap: Callable[[int, int], None] | None = None
        self.on_retire: Callable[[int, DecodedInstruction], None] | None = None
        self.interrupt_source: Callable[[], int] | None = None

        self._transfer_target: int | None = None
        # Decode memo keyed by PC: (instruction, pre-resolved handler) —
        # the fetch+decode+table-lookup of the hot loop collapses to one
        # dict probe.  Coherent under the same contract the real I-cache
        # relies on: stale entries survive only until a FLUSH (the
        # modified boot ROM flushes in its polling loop before
        # dispatching a newly loaded program), and stores through this
        # engine invalidate the words they touch.  Capped at
        # MEMO_CAPACITY entries by wholesale clearing.
        self._inst_cache: dict[
            int, tuple[DecodedInstruction, Callable | None]] = {}

    # ------------------------------------------------------------------
    # Shared semantics: these are the IntegerUnit's own methods, so the
    # two engines decode, dispatch, branch, trap and manage ASRs through
    # one implementation.  They only touch the executor interface
    # (regs/ctrl/pc/npc/transfer/data_read/data_write/...), which this
    # class provides in full.
    # ------------------------------------------------------------------

    _dispatch = IntegerUnit._dispatch
    _branch = IntegerUnit._branch
    _enter_trap = IntegerUnit._enter_trap
    transfer = IntegerUnit.transfer
    read_asr = IntegerUnit.read_asr
    write_asr = IntegerUnit.write_asr

    # ------------------------------------------------------------------
    # Memory access helpers used by the shared executor
    # ------------------------------------------------------------------

    def data_read(self, address: int, size: int, *, signed: bool) -> int:
        try:
            value = self.mem.read(u32(address), size)
        except BusError as exc:
            raise traps.data_access_exception(exc.address) from exc
        if signed:
            value = u32(sign_extend(value, size * 8))
        return value

    def data_write(self, address: int, size: int, value: int) -> None:
        address = u32(address)
        try:
            self.mem.write(address, size, u32(value))
        except BusError as exc:
            raise traps.data_access_exception(exc.address) from exc
        cache = self._inst_cache
        if cache:
            # Self-modifying-store coherence: drop any memoized decode
            # of the word(s) this write overlaps.
            for word_addr in range(address & ~3, address + size, 4):
                cache.pop(word_addr, None)

    def flush_icache(self) -> None:
        """FLUSH: flat memory is always coherent, but the per-PC decode
        memo plays the I-cache's role and is invalidated the same way."""
        self._inst_cache.clear()

    def flush_dcache(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Execute one instruction (or annul one delay slot).

        Mirrors :meth:`IntegerUnit.step` exactly — same interrupt check,
        same fetch-fault ordering, same annul handling — minus all cycle
        accounting.  One call is one step on either engine, which is
        what lets ``fast_forward=N`` mean the same machine state no
        matter which engine executes the N steps.
        """
        if self.halted:
            raise traps.ErrorMode(self.error_tt or 0, self.pc)

        if self.interrupt_source is not None and self.ctrl.et:
            level = self.interrupt_source()
            if level and (level == 15 or level > self.ctrl.pil):
                self._enter_trap(traps.TrapException(
                    INTERRUPT_TRAP_BASE + level, "interrupt"))
                self.cycles += 1
                return 1

        pc = self.pc
        entry = self._inst_cache.get(pc)
        if entry is None:
            try:
                word, from_ram = self.mem.read_code(pc)
            except BusError:
                self._enter_trap(traps.instruction_access_exception(pc))
                self.cycles += 1
                return 1
            inst = self.decode_cache.lookup(word)
            entry = (inst, _resolve_handler(inst))
            if from_ram:
                if len(self._inst_cache) >= MEMO_CAPACITY:
                    self._inst_cache.clear()
                self._inst_cache[pc] = entry
        inst, handler = entry

        if self.annul:
            # The annulled delay slot is fetched but not executed.
            self.annul = False
            npc = self.npc
            self.pc = npc
            self.npc = (npc + 4) & 0xFFFFFFFF
            self.annulled_slots += 1
            self.cycles += 1
            return 1

        self._transfer_target = None
        try:
            if handler is not None:
                handler(self, inst)
            else:
                self._dispatch(inst)
        except traps.TrapException as trap:
            self._enter_trap(trap)
            self.cycles += 1
            return 1

        target = self._transfer_target
        npc = self.npc
        self.pc = npc
        self.npc = target if target is not None else (npc + 4) & 0xFFFFFFFF

        self.cycles += 1
        self.instret += 1
        if self.on_retire is not None:
            self.on_retire(pc, inst)
        return 1

    def fast_forward(self, budget: int, stop_pc: int | None = None) -> int:
        """Execute up to *budget* steps, stopping early when the PC
        reaches *stop_pc* (checked before each step, like ``run``).
        Returns the steps actually executed.  One step here is one step
        on any engine, which is what lets ``fast_forward=N`` mean the
        same machine state no matter who executes the N steps — the
        block-translating subclass overrides this with a block-granular
        loop that preserves exactly that contract."""
        executed = 0
        step = self.step
        while executed < budget and self.pc != stop_pc:
            executed += step()
        return executed

    def run(self, max_instructions: int = 10_000_000,
            until_pc: int | None = None) -> int:
        """Same contract as :meth:`IntegerUnit.run`: with *until_pc*,
        stop *before* executing it and raise
        :class:`~repro.cpu.traps.WatchdogExpired` if the budget runs out
        first; without it, execute exactly ``max_instructions`` steps
        and return normally.  Returns the cycles consumed by this call;
        the loop is kept tight — this is the fast path's outer loop."""
        start_cycles = self.cycles
        step = self.step
        if until_pc is None:
            for _ in range(max_instructions):
                step()
            return self.cycles - start_cycles
        for _ in range(max_instructions):
            if self.pc == until_pc:
                return self.cycles - start_cycles
            step()
        raise traps.WatchdogExpired(
            f"did not reach pc=0x{until_pc:08x} within "
            f"{max_instructions} instructions")
