"""SPARC V8 trap model used by the LEON2 integer unit.

Traps are implemented as Python exceptions raised out of the instruction
executor and caught by the integer-unit step loop, which then performs the
architectural trap entry sequence (SPARC V8 chapter 7):

* ``ET <- 0``, ``PS <- S``, ``S <- 1``;
* ``CWP <- (CWP - 1) mod NWINDOWS`` (no WIM check on trap entry);
* ``r[17]/r[18]`` (``%l1``/``%l2``) of the *new* window get PC / nPC;
* ``TBR.tt`` is set and control transfers to TBR.

If a trap occurs while ``ET = 0`` the processor enters *error mode* and
halts — on the FPX, the external leon_ctrl circuitry would observe this
and emit an error packet (see :mod:`repro.fpx.leon_ctrl`).
"""

from __future__ import annotations

from repro.cpu.isa import Trap


class TrapException(Exception):
    """An architectural trap request carrying the trap type.

    ``tt`` is the 8-bit trap-type written into TBR.  For software traps
    (Ticc) the executor pre-adds :data:`Trap.TRAP_INSTRUCTION_BASE`.
    """

    def __init__(self, tt: int, detail: str = ""):
        self.tt = int(tt)
        self.detail = detail
        super().__init__(f"trap tt=0x{self.tt:02x} {detail}".strip())


class ErrorMode(Exception):
    """Processor entered error mode (trap with ET = 0); execution halts."""

    def __init__(self, tt: int, pc: int):
        self.tt = tt
        self.pc = pc
        super().__init__(f"error mode: trap tt=0x{tt:02x} at pc=0x{pc:08x}")


class WatchdogExpired(Exception):
    """The run loop exceeded its instruction budget (runaway program)."""


def illegal_instruction(detail: str = "") -> TrapException:
    return TrapException(Trap.ILLEGAL_INSTRUCTION, detail)


def privileged_instruction(detail: str = "") -> TrapException:
    return TrapException(Trap.PRIVILEGED_INSTRUCTION, detail)


def mem_address_not_aligned(addr: int) -> TrapException:
    return TrapException(Trap.MEM_ADDRESS_NOT_ALIGNED, f"addr=0x{addr:08x}")


def data_access_exception(addr: int) -> TrapException:
    return TrapException(Trap.DATA_ACCESS, f"addr=0x{addr:08x}")


def instruction_access_exception(addr: int) -> TrapException:
    return TrapException(Trap.INSTRUCTION_ACCESS, f"addr=0x{addr:08x}")


def window_overflow() -> TrapException:
    return TrapException(Trap.WINDOW_OVERFLOW)


def window_underflow() -> TrapException:
    return TrapException(Trap.WINDOW_UNDERFLOW)


def division_by_zero() -> TrapException:
    return TrapException(Trap.DIVISION_BY_ZERO)


def tag_overflow() -> TrapException:
    return TrapException(Trap.TAG_OVERFLOW)


def fp_disabled() -> TrapException:
    return TrapException(Trap.FP_DISABLED)


def cp_disabled() -> TrapException:
    return TrapException(Trap.CP_DISABLED)


def software_trap(number: int) -> TrapException:
    return TrapException(Trap.TRAP_INSTRUCTION_BASE + (number & 0x7F))
