"""Basic-block translation cache: the second 10x on raw speed.

:class:`~repro.cpu.fastpath.FunctionalUnit` still interprets one
instruction per dispatch — a dict probe, a handler call, and half a
dozen attribute touches per step.  :class:`TranslatedUnit` removes the
per-instruction dispatch entirely: the first time a PC is executed it
decodes *forward* to the next control-transfer instruction (CALL, Bicc,
JMPL — delayed-branch and annul semantics included), pre-resolves every
instruction's handler and register slots, and compiles the whole block
into one specialized Python function cached per entry PC.  Hot ALU,
load/store and branch instructions become straight-line Python operating
on the register file's raw lists; everything rare (SAVE/RESTORE, mul/
div, traps, alternate-space accesses) calls the *shared* execute
handlers, so the semantics cannot drift from the interpreters'.

Coherence piggybacks on the contract the per-PC decode memo already
obeys (see ``FunctionalUnit.data_write``/``flush_icache``):

* every store that could touch translated code goes through
  :meth:`TranslatedUnit.data_write`, which drops the blocks whose pages
  the write overlaps — a page map keeps that check O(pages written);
* a store into the *currently executing* block (or a FLUSH from inside
  one) raises the ``_code_dirty`` flag; generated code checks it after
  every memory-writing site and bails out of the block with exact
  step/retire accounting, so self-modifying code observes its own
  writes with the interpreters' timing;
* FLUSH drops every block, exactly as it clears the decode memo.

Step accounting is identical to the other engines — one step is one
retired instruction, one annulled delay slot or one trap entry — so
``fast_forward=N`` lands on the same architectural state no matter
which engine executes the N steps.  The randomized differential suite
in ``tests/difftest`` runs in translated mode to prove it.
"""

from __future__ import annotations

from repro.cpu import isa, traps
from repro.cpu.decode import DecodedInstruction
from repro.cpu.fastpath import FunctionalUnit, _resolve_handler
from repro.cpu.isa import Cond, Op3, Op3Mem
from repro.cpu.iu import IntegerUnit
from repro.utils import u32

__all__ = ["TranslatedUnit", "TranslatedBlock", "MAX_BLOCK", "MAX_BLOCKS"]

#: Longest block, in instructions (CTI + delay slot included).
MAX_BLOCK = 64
#: Block-cache capacity; reaching it clears the cache wholesale.
MAX_BLOCKS = 4096
#: Granularity of the code-page invalidation map (bytes = 1 << shift).
PAGE_SHIFT = 8

_M32 = 0xFFFFFFFF

# Instruction roles during block discovery.
_PLAIN, _CTI, _BREAK = 0, 1, 2

#: icc truth expressions over ``vp`` (a PSR snapshot): n=23 z=22 v=21 c=20.
_COND_EXPR = {
    Cond.NE: "not (vp & 0x400000)",
    Cond.E: "vp & 0x400000",
    Cond.G: "not ((vp & 0x400000) or ((vp >> 23 ^ vp >> 21) & 1))",
    Cond.LE: "(vp & 0x400000) or ((vp >> 23 ^ vp >> 21) & 1)",
    Cond.GE: "not ((vp >> 23 ^ vp >> 21) & 1)",
    Cond.L: "(vp >> 23 ^ vp >> 21) & 1",
    Cond.GU: "not (vp & 0x500000)",
    Cond.LEU: "vp & 0x500000",
    Cond.CC: "not (vp & 0x100000)",
    Cond.CS: "vp & 0x100000",
    Cond.POS: "not (vp & 0x800000)",
    Cond.NEG: "vp & 0x800000",
    Cond.VC: "not (vp & 0x200000)",
    Cond.VS: "vp & 0x200000",
}

#: op3 -> (python expression template, needs 32-bit mask) for the pure
#: logic ops; cc twins share the templates.
_LOGIC_EXPR = {
    Op3.AND: "{a} & {b}", Op3.ANDCC: "{a} & {b}",
    Op3.ANDN: "{a} & ~{b}", Op3.ANDNCC: "{a} & ~{b}",
    Op3.OR: "{a} | {b}", Op3.ORCC: "{a} | {b}",
    Op3.ORN: "({a} | ~{b}) & 0xFFFFFFFF",
    Op3.ORNCC: "({a} | ~{b}) & 0xFFFFFFFF",
    Op3.XOR: "{a} ^ {b}", Op3.XORCC: "{a} ^ {b}",
    Op3.XNOR: "({a} ^ ~{b}) & 0xFFFFFFFF",
    Op3.XNORCC: "({a} ^ ~{b}) & 0xFFFFFFFF",
}
_LOGIC_CC = {Op3.ANDCC, Op3.ANDNCC, Op3.ORCC, Op3.ORNCC, Op3.XORCC,
             Op3.XNORCC}

#: op3 -> (subtract, carry_in, cc) for the inline add/sub family.
_ADDSUB = {
    Op3.ADD: (False, False, False), Op3.ADDCC: (False, False, True),
    Op3.ADDX: (False, True, False), Op3.ADDXCC: (False, True, True),
    Op3.SUB: (True, False, False), Op3.SUBCC: (True, False, True),
    Op3.SUBX: (True, True, False), Op3.SUBXCC: (True, True, True),
}

#: op3 -> (size, signed) for the inline loads, op3 -> size for stores.
_LOADS = {Op3Mem.LD: (4, False), Op3Mem.LDUB: (1, False),
          Op3Mem.LDUH: (2, False), Op3Mem.LDSB: (1, True),
          Op3Mem.LDSH: (2, True)}
_STORES = {Op3Mem.ST: 4, Op3Mem.STB: 1, Op3Mem.STH: 2}

#: Generic ARITH handlers after which CWP may have moved (the generated
#: window base must be recomputed).
_CWP_OPS = {Op3.SAVE, Op3.RESTORE, Op3.WRPSR}


def _kind(inst: DecodedInstruction) -> int:
    """Role of *inst* in block discovery: straight-line, block-ending
    CTI, or untranslatable (RETT changes CWP *and* transfers; CPOP1 runs
    arbitrary extension code that may transfer) — the interpreter steps
    those."""
    op = inst.op
    if op == isa.OP_CALL:
        return _CTI
    if op == isa.OP_BRANCH_SETHI:
        return _CTI if inst.op2 == isa.OP2_BICC else _PLAIN
    if op == isa.OP_ARITH:
        op3 = inst.op3
        if op3 == Op3.JMPL:
            return _CTI
        if op3 in (Op3.RETT, Op3.CPOP1):
            return _BREAK
    return _PLAIN


class TranslatedBlock:
    """One compiled basic block: entry PC, decoded instructions, pages
    it spans (for store invalidation) and the generated step function.

    Calling ``code(unit)`` executes the block and returns the number of
    steps consumed (= retired instructions + annulled slot + trap
    entry); the unit's pc/npc/counters are left exactly as if the
    interpreter had stepped the same instructions."""

    __slots__ = ("entry", "length", "code", "insts", "pages", "source",
                 "writes")

    def __init__(self, entry, length, code, insts, pages, source, writes):
        self.entry = entry
        self.length = length
        self.code = code
        self.insts = insts
        self.pages = pages
        self.source = source
        self.writes = writes

    def __repr__(self):
        return (f"TranslatedBlock(entry=0x{self.entry:08x}, "
                f"length={self.length})")


class _Codegen:
    """Emit one block's Python source.

    Register reads/writes address the register file's raw lists through
    per-register index locals unpacked from a per-CWP row table
    (recomputed after any handler that can move CWP);
    condition codes are bit operations on ``ctrl.psr``; loads and stores
    carry an inline fast path over the largest writable RAM region with
    the slow path (MMIO, faults, coherence) delegated to the unit's own
    ``data_read``/``data_write``."""

    def __init__(self, unit, entry, insts, cti):
        self.entry = entry
        self.insts = insts
        self.cti = cti
        ram = unit._ram
        self.has_ram = ram is not None
        if self.has_ram:
            self.ram_base, self.ram_limit = ram[0], ram[1]
        self.lines: list[str] = []
        # Windowed registers the block touches: their in-file indices
        # are hoisted into locals once (and recomputed after any CWP
        # move) so the hot path never repeats the modulo arithmetic.
        used: set[int] = set()
        for inst in insts:
            if inst.op == isa.OP_CALL:  # format 1: no register fields
                continue
            if inst.rs1 >= 8:
                used.add(inst.rs1)
            if inst.rd >= 8:
                used.add(inst.rd)
            if not inst.imm and inst.rs2 >= 8:
                used.add(inst.rs2)
        self.window_regs = sorted(used)

    # -- low-level helpers ------------------------------------------------

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    @staticmethod
    def _read(reg: int) -> str:
        if reg == 0:
            return "0"
        if reg < 8:
            return f"G[{reg}]"
        return f"W[w{reg}]"

    def _write(self, ind: int, rd: int, expr: str) -> None:
        """Write *expr* (already masked to 32 bits) to ``rd``."""
        if rd == 0:
            return
        if rd < 8:
            self.emit(ind, f"G[{rd}] = {expr}")
        else:
            self.emit(ind, f"W[w{rd}] = {expr}")

    def _emit_window_bases(self, ind: int) -> None:
        """Load the in-file indices of every windowed register the block
        touches from the per-CWP row table — one tuple unpack instead of
        an add+modulo per register access."""
        if not self.window_regs:
            return
        names = ", ".join(f"w{reg}" for reg in self.window_regs)
        trail = "," if len(self.window_regs) == 1 else ""
        self.emit(ind, f"{names}{trail} = _RT[ctrl.psr & 0x1F]")

    @staticmethod
    def _op2(inst) -> str:
        """Second ALU operand, as the handlers compute it."""
        return str(u32(inst.simm13)) if inst.imm else _Codegen._read(inst.rs2)

    def _guard(self, ind: int, k: int, pc: int, npc: str) -> None:
        """Before any instruction that can trap: pin pc/npc (consumed by
        ``_enter_trap``) and the retired-so-far count ``n``."""
        self.emit(ind, f"u.pc = {pc}")
        self.emit(ind, f"u.npc = {npc}")
        self.emit(ind, f"n = {k}")

    def _bail(self, ind: int, k: int, pc: int) -> None:
        """Leave the block after instruction *k* retired (its decoded
        successors may be stale): straight-line continuation."""
        self.emit(ind, f"u.pc = {(pc + 4) & _M32}")
        self.emit(ind, f"u.npc = {(pc + 8) & _M32}")
        self.emit(ind, f"u.cycles += {k + 1}")
        self.emit(ind, f"u.instret += {k + 1}")
        self.emit(ind, f"return {k + 1}")

    # -- per-instruction emitters -----------------------------------------

    def emit_inst(self, ind: int, k: int, npc: str, in_slot: bool) -> None:
        inst = self.insts[k]
        pc = (self.entry + 4 * k) & _M32
        op = inst.op
        if op == isa.OP_BRANCH_SETHI and inst.op2 == isa.OP2_SETHI:
            self._write(ind, inst.rd, str((inst.imm22 << 10) & _M32))
            return
        if op == isa.OP_ARITH:
            op3 = inst.op3
            if op3 in _LOGIC_EXPR:
                self._emit_logic(ind, inst)
                return
            if op3 in _ADDSUB:
                self._emit_addsub(ind, inst)
                return
            if op3 in (Op3.SLL, Op3.SRL, Op3.SRA):
                self._emit_shift(ind, inst)
                return
        elif op == isa.OP_MEM:
            op3 = inst.op3
            if op3 in _LOADS:
                self._emit_load(ind, k, pc, npc, inst)
                return
            if op3 in _STORES:
                self._emit_store(ind, k, pc, npc, inst, in_slot)
                return
        self._emit_generic(ind, k, pc, npc, inst, in_slot)

    def _emit_logic(self, ind, inst) -> None:
        expr = _LOGIC_EXPR[inst.op3].format(a=self._read(inst.rs1),
                                            b=self._op2(inst))
        if inst.op3 not in _LOGIC_CC:
            self._write(ind, inst.rd, expr)
            return
        self.emit(ind, f"vr = {expr}")
        self._write(ind, inst.rd, "vr")
        self.emit(ind, "ctrl.psr = (ctrl.psr & 0xFF0FFFFF)"
                       " | ((vr >> 8) & 0x800000)"
                       " | (0x400000 if vr == 0 else 0)")

    def _emit_addsub(self, ind, inst) -> None:
        sub, cin, cc = _ADDSUB[inst.op3]
        a, b = self._read(inst.rs1), self._op2(inst)
        sign = "-" if sub else "+"
        carry = f" {sign} ((ctrl.psr >> 20) & 1)" if cin else ""
        if not cc:
            self._write(ind, inst.rd,
                        f"({a} {sign} {b}{carry}) & 0xFFFFFFFF")
            return
        self.emit(ind, f"va = {a}")
        self.emit(ind, f"vb = {b}")
        self.emit(ind, f"vt = va {sign} vb{carry}")
        self.emit(ind, "vr = vt & 0xFFFFFFFF")
        self._write(ind, inst.rd, "vr")
        if sub:
            vterm = "((((va ^ vb) & (va ^ vr)) >> 31) & 1) << 21"
            cterm = "(0x100000 if vt < 0 else 0)"
        else:
            vterm = "(((~(va ^ vb) & (va ^ vr)) >> 31) & 1) << 21"
            cterm = "(0x100000 if vt > 0xFFFFFFFF else 0)"
        self.emit(ind, "ctrl.psr = (ctrl.psr & 0xFF0FFFFF)"
                       " | ((vr >> 8) & 0x800000)"
                       f" | (0x400000 if vr == 0 else 0) | {vterm}"
                       f" | {cterm}")

    def _emit_shift(self, ind, inst) -> None:
        a = self._read(inst.rs1)
        count = (str(u32(inst.simm13) & 0x1F) if inst.imm
                 else f"({self._read(inst.rs2)} & 31)")
        op3 = inst.op3
        if op3 == Op3.SLL:
            self._write(ind, inst.rd, f"({a} << {count}) & 0xFFFFFFFF")
        elif op3 == Op3.SRL:
            self._write(ind, inst.rd, f"{a} >> {count}")
        else:  # SRA: arithmetic shift via 64-bit sign extension
            self.emit(ind, f"va = {a}")
            self._write(
                ind, inst.rd,
                f"((va | 0xFFFFFFFF00000000) >> {count}) & 0xFFFFFFFF"
                f" if va & 0x80000000 else va >> {count}")

    def _effective_address(self, ind, inst) -> None:
        off = (str(inst.simm13) if inst.imm else self._read(inst.rs2))
        self.emit(ind, f"ea = ({self._read(inst.rs1)} + {off}) & 0xFFFFFFFF")

    def _emit_load(self, ind, k, pc, npc, inst) -> None:
        size, signed = _LOADS[inst.op3]
        self._effective_address(ind, inst)
        # Trap guards live inside the branches that can actually trap,
        # keeping the in-RAM aligned path guard-free.
        if size > 1:
            self.emit(ind, f"if ea & {size - 1}:")
            self._guard(ind + 1, k, pc, npc)
            self.emit(ind + 1, "raise _misaligned(ea)")
        if self.has_ram:
            self.emit(ind, f"of = ea - {self.ram_base}")
            self.emit(ind, f"if 0 <= of <= {self.ram_limit - self.ram_base - size}:")
            if size == 4:
                self.emit(ind + 1, "vr = (_B[of] << 24) | (_B[of + 1] << 16)"
                                   " | (_B[of + 2] << 8) | _B[of + 3]")
            elif size == 2:
                self.emit(ind + 1, "vr = (_B[of] << 8) | _B[of + 1]")
                if signed:
                    self.emit(ind + 1, "if vr & 0x8000:")
                    self.emit(ind + 2, "vr |= 0xFFFF0000")
            else:
                self.emit(ind + 1, "vr = _B[of]")
                if signed:
                    self.emit(ind + 1, "if vr & 0x80:")
                    self.emit(ind + 2, "vr |= 0xFFFFFF00")
            self.emit(ind, "else:")
            self._guard(ind + 1, k, pc, npc)
            self.emit(ind + 1,
                      f"vr = u.data_read(ea, {size}, signed={signed})")
        else:
            self._guard(ind, k, pc, npc)
            self.emit(ind, f"vr = u.data_read(ea, {size}, signed={signed})")
        self._write(ind, inst.rd, "vr")

    def _emit_store(self, ind, k, pc, npc, inst, in_slot) -> None:
        size = _STORES[inst.op3]
        self._effective_address(ind, inst)
        if size > 1:
            self.emit(ind, f"if ea & {size - 1}:")
            self._guard(ind + 1, k, pc, npc)
            self.emit(ind + 1, "raise _misaligned(ea)")
        self.emit(ind, f"vv = {self._read(inst.rd)}")
        slow_ind = ind
        if self.has_ram:
            # The inline path must preserve both coherence contracts:
            # skip it when the stored word is memoized (_ic) or lands on
            # a page holding translated code (_pages).
            self.emit(ind, f"of = ea - {self.ram_base}")
            self.emit(ind,
                      f"if (0 <= of <= {self.ram_limit - self.ram_base - size}"
                      " and (ea & 0xFFFFFFFC) not in _ic"
                      f" and (ea >> {PAGE_SHIFT}) not in _pages):")
            if size == 4:
                self.emit(ind + 1, "_B[of] = vv >> 24")
                self.emit(ind + 1, "_B[of + 1] = (vv >> 16) & 255")
                self.emit(ind + 1, "_B[of + 2] = (vv >> 8) & 255")
                self.emit(ind + 1, "_B[of + 3] = vv & 255")
            elif size == 2:
                self.emit(ind + 1, "_B[of] = (vv >> 8) & 255")
                self.emit(ind + 1, "_B[of + 1] = vv & 255")
            else:
                self.emit(ind + 1, "_B[of] = vv & 255")
            self.emit(ind, "else:")
            slow_ind = ind + 1
        self._guard(slow_ind, k, pc, npc)
        self.emit(slow_ind, f"u.data_write(ea, {size}, vv)")
        if not in_slot:
            self.emit(slow_ind, "if u._code_dirty:")
            self._bail(slow_ind + 1, k, pc)

    def _emit_generic(self, ind, k, pc, npc, inst, in_slot) -> None:
        """Anything rare runs through the shared execute handlers (or
        the shared dispatch, for instructions that always trap)."""
        self._guard(ind, k, pc, npc)
        self.emit(ind, f"_H[{k}](u, _I[{k}])")
        if inst.op == isa.OP_ARITH and inst.op3 in _CWP_OPS:
            self._emit_window_bases(ind)
        dirty = (inst.op == isa.OP_MEM
                 or (inst.op == isa.OP_ARITH and inst.op3 == Op3.FLUSH))
        if dirty and not in_slot:
            self.emit(ind, "if u._code_dirty:")
            self._bail(ind + 1, k, pc)

    # -- block endings -----------------------------------------------------

    def _epilogue(self, ind, pc_expr, npc_expr, steps, retired,
                  annulled=False) -> None:
        self.emit(ind, f"u.pc = {pc_expr}")
        self.emit(ind, f"u.npc = {npc_expr}")
        if annulled:
            self.emit(ind, "u.annulled_slots += 1")
        self.emit(ind, f"u.cycles += {steps}")
        self.emit(ind, f"u.instret += {retired}")
        self.emit(ind, f"return {steps}")

    def _emit_taken_arm(self, ind, c, target_pc, target_npc, annul) -> None:
        if annul:
            self._epilogue(ind, target_pc, target_npc, c + 2, c + 1,
                           annulled=True)
        else:
            self.emit_inst(ind, c + 1, target_pc, in_slot=True)
            self._epilogue(ind, target_pc, target_npc, c + 2, c + 2)

    def _emit_untaken_arm(self, ind, c, pc_c, annul) -> None:
        cont = (pc_c + 8) & _M32
        if annul:
            self._epilogue(ind, cont, (pc_c + 12) & _M32, c + 2, c + 1,
                           annulled=True)
        else:
            self.emit_inst(ind, c + 1, str(cont), in_slot=True)
            self._epilogue(ind, cont, (pc_c + 12) & _M32, c + 2, c + 2)

    def _emit_cti(self, ind: int) -> None:
        c = self.cti
        inst = self.insts[c]
        pc_c = (self.entry + 4 * c) & _M32
        if inst.op == isa.OP_BRANCH_SETHI:  # Bicc
            cond, annul = inst.cond, inst.annul
            target = (pc_c + (inst.disp22 << 2)) & _M32
            t_npc = (target + 4) & _M32
            if cond == Cond.A:
                # BA,a annuls its delay slot unconditionally.
                self._emit_taken_arm(ind, c, target, t_npc, annul)
            elif cond == Cond.N:
                self._emit_untaken_arm(ind, c, pc_c, annul)
            else:
                self.emit(ind, "vp = ctrl.psr")
                self.emit(ind, f"if {_COND_EXPR[cond]}:")
                # A taken conditional branch never annuls its slot.
                self._emit_taken_arm(ind + 1, c, target, t_npc, False)
                self.emit(ind, "else:")
                self._emit_untaken_arm(ind + 1, c, pc_c, annul)
            return
        # CALL / JMPL: run the shared handler, read the delayed target.
        self._guard(ind, c, pc_c, str((pc_c + 4) & _M32))
        self.emit(ind, "u._transfer_target = None")
        self.emit(ind, f"_H[{c}](u, _I[{c}])")
        self.emit(ind, "tgt = u._transfer_target")
        self.emit_inst(ind, c + 1, "tgt", in_slot=True)
        self._epilogue(ind, "tgt", "(tgt + 4) & 0xFFFFFFFF", c + 2, c + 2)

    # -- whole function ----------------------------------------------------

    def source(self) -> str:
        e = self.emit
        # ctrl/G/W are bound as defaults at compile time (blocks are
        # per-unit, and the unit shares these objects for its lifetime)
        # so the prologue is two statements, not six.
        e(0, "def _block(u, ctrl=_ctrl, G=_G, W=_W, _RT=_RT):")
        self._emit_window_bases(1)
        e(1, "n = 0")
        e(1, "try:")
        straight = self.cti if self.cti is not None else len(self.insts)
        for k in range(straight):
            pc = (self.entry + 4 * k) & _M32
            self.emit_inst(2, k, str((pc + 4) & _M32), in_slot=False)
        if self.cti is not None:
            self._emit_cti(2)
        else:
            end = (self.entry + 4 * straight) & _M32
            self._epilogue(2, end, (end + 4) & _M32, straight, straight)
        e(1, "except _Trap as trap:")
        e(2, "u.cycles += n")
        e(2, "u.instret += n")
        e(2, "u._enter_trap(trap)")
        e(2, "u.cycles += 1")
        e(2, "return n + 1")
        return "\n".join(self.lines) + "\n"


#: OP_MEM op3s that cannot write memory (the rest, plus FLUSH, mark the
#: block as write-capable so the dispatch loop tracks the active range).
_PURE_LOADS = frozenset(_LOADS) | {Op3Mem.LDD}


def _compile_block(unit, entry: int, insts: list, cti: int | None
                   ) -> TranslatedBlock:
    gen = _Codegen(unit, entry, insts, cti)
    source = gen.source()
    handlers = tuple(_resolve_handler(inst) or IntegerUnit._dispatch
                     for inst in insts)
    size = unit.regs._size
    row_table = tuple(
        tuple(((cwp % (size // 16)) * 16 + reg - 8) % size
              for reg in gen.window_regs)
        for cwp in range(32))
    namespace = {
        "_Trap": traps.TrapException,
        "_misaligned": traps.mem_address_not_aligned,
        "_I": tuple(insts),
        "_H": handlers,
        "_B": unit._ram[2] if unit._ram is not None else None,
        "_ic": unit._inst_cache,
        "_pages": unit._code_pages,
        "_ctrl": unit.ctrl,
        "_G": unit.regs._globals,
        "_W": unit.regs._window_regs,
        "_RT": row_table,
    }
    exec(compile(source, f"<block 0x{entry:08x}>", "exec"), namespace)
    length = len(insts)
    pages = tuple(range(entry >> PAGE_SHIFT,
                        ((entry + 4 * length - 1) >> PAGE_SHIFT) + 1))
    writes = any(
        (inst.op == isa.OP_MEM and inst.op3 not in _PURE_LOADS)
        or (inst.op == isa.OP_ARITH and inst.op3 == Op3.FLUSH)
        for inst in insts)
    return TranslatedBlock(entry, length, namespace["_block"],
                           tuple(insts), pages, source, writes)


class TranslatedUnit(FunctionalUnit):
    """Functional engine with a basic-block translation cache.

    Drop-in for :class:`FunctionalUnit` (same constructor, same sharing
    of registers/control/decode with the cycle-accurate unit, same
    step-count contract); ``run``/``fast_forward`` execute whole
    translated blocks and fall back to single interpreted steps for
    anything a block cannot carry: annulled entry states, MMIO fetches,
    RETT/CPOP1, a pending ``until_pc`` inside the block, or interrupt
    delivery.  ``on_retire`` still fires per retired instruction, but
    batched at block boundaries (see :meth:`fast_forward`).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.blocks_translated = 0
        self.blocks_executed = 0
        self.blocks_invalidated = 0
        #: Optional block-retirement hook: ``on_block(block, retired)``
        #: after each block execution — the batched counterpart of
        #: ``on_retire``.
        self.on_block = None
        self._blocks: dict[int, TranslatedBlock] = {}
        self._code_pages: dict[int, set[int]] = {}
        self._code_dirty = False
        self._active_lo = 0
        self._active_hi = 0
        # Inline load/store fast path: the largest writable byte-array
        # region (the SRAM in the platform map); everything else takes
        # the data_read/data_write slow path.
        best = None
        for base, limit, buffer, writable, _ in self.mem._regions:
            if writable and (best is None
                             or limit - base > best[1] - best[0]):
                best = (base, limit, buffer)
        self._ram = best

    # -- coherence ---------------------------------------------------------

    def data_write(self, address: int, size: int, value: int) -> None:
        super().data_write(address, size, value)
        address = address & _M32
        end = address + size
        if address < self._active_hi and end > self._active_lo:
            # The store landed inside the currently executing block:
            # its remaining decoded instructions may be stale.
            self._code_dirty = True
        if self._code_pages:
            for page in range(address >> PAGE_SHIFT,
                              ((end - 1) >> PAGE_SHIFT) + 1):
                entries = self._code_pages.get(page)
                if entries:
                    for entry in tuple(entries):
                        self._invalidate(entry)

    def flush_icache(self) -> None:
        super().flush_icache()
        if self._blocks:
            self.blocks_invalidated += len(self._blocks)
            self._blocks.clear()
            self._code_pages.clear()
        self._code_dirty = True

    def _invalidate(self, entry: int) -> None:
        block = self._blocks.pop(entry, None)
        if block is None:
            return
        self.blocks_invalidated += 1
        for page in block.pages:
            entries = self._code_pages.get(page)
            if entries is not None:
                entries.discard(entry)
                if not entries:
                    del self._code_pages[page]

    # -- translation -------------------------------------------------------

    def _translate(self, entry: int) -> TranslatedBlock | None:
        """Decode forward from *entry* to the next CTI (inclusive, with
        its delay slot) and compile; None if the entry cannot anchor a
        block (non-RAM fetch, RETT/CPOP1 first, CTI in a delay slot)."""
        mem = self.mem
        lookup = self.decode_cache.lookup
        insts: list[DecodedInstruction] = []
        cti: int | None = None
        pc = entry
        while len(insts) < MAX_BLOCK - 1:
            word = mem.read_code_ram(pc)
            if word is None:
                break
            inst = lookup(word)
            kind = _kind(inst)
            if kind == _BREAK:
                break
            if kind == _CTI:
                slot_word = mem.read_code_ram(pc + 4)
                if slot_word is None:
                    break
                if _kind(lookup(slot_word)) != _PLAIN:
                    break
                insts.append(inst)
                insts.append(lookup(slot_word))
                cti = len(insts) - 2
                break
            insts.append(inst)
            pc += 4
        if not insts:
            return None
        if len(self._blocks) >= MAX_BLOCKS:
            self.blocks_invalidated += len(self._blocks)
            self._blocks.clear()
            self._code_pages.clear()
        block = _compile_block(self, entry, insts, cti)
        self.blocks_translated += 1
        self._blocks[entry] = block
        for page in block.pages:
            self._code_pages.setdefault(page, set()).add(entry)
        return block

    # -- execution ---------------------------------------------------------

    def fast_forward(self, budget: int, stop_pc: int | None = None) -> int:
        """Advance up to *budget* steps, stopping early when the PC
        reaches *stop_pc*.  Blockwise where possible; ``on_retire``, if
        set, is still called once per retired instruction in program
        order, but batched at block boundaries (the machine state it
        observes is the block's *exit* state, not each intermediate
        step's)."""
        executed = 0
        blocks = self._blocks
        step = self.step
        on_retire = self.on_retire
        on_block = self.on_block
        quiet = on_retire is None and on_block is None
        block_count = 0
        while executed < budget:
            pc = self.pc
            if pc == stop_pc:
                break
            if (self.halted or self.annul
                    or self.npc != ((pc + 4) & _M32)
                    or self.interrupt_source is not None):
                # A non-sequential npc means a delayed transfer is in
                # flight (an interpreted CTI's slot, or the pc/npc pair
                # a jmp/rett couple leaves behind): generated blocks
                # assume straight-line entry, so interpret.
                executed += step()
                continue
            block = blocks.get(pc)
            if block is None:
                block = self._translate(pc)
                if block is None:
                    executed += step()
                    continue
            length = block.length
            if (budget - executed < length
                    or (stop_pc is not None
                        and pc < stop_pc < pc + 4 * length)):
                # Not enough budget for a worst-case full block, or the
                # stop PC lies inside it: keep the step-exact contract
                # by interpreting.
                executed += step()
                continue
            if block.writes:
                # Only write-capable blocks can reach data_write, the
                # sole reader of the active range / dirty flag.
                self._active_lo = pc
                self._active_hi = pc + 4 * length
                self._code_dirty = False
            block_count += 1
            if quiet:
                executed += block.code(self)
            else:
                before = self.instret
                executed += block.code(self)
                retired = self.instret - before
                if on_retire is not None:
                    # Retired instructions are always a prefix of the
                    # block (arms/traps/bails only cut it short).
                    insts = block.insts
                    for i in range(retired):
                        on_retire((pc + 4 * i) & _M32, insts[i])
                if on_block is not None:
                    on_block(block, retired)
        self.blocks_executed += block_count
        self._active_lo = self._active_hi = 0
        return executed

    def run(self, max_instructions: int = 10_000_000,
            until_pc: int | None = None) -> int:
        """Same contract as :meth:`FunctionalUnit.run`, block-granular."""
        start_cycles = self.cycles
        executed = self.fast_forward(max_instructions, until_pc)
        if until_pc is None or executed < max_instructions:
            return self.cycles - start_cycles
        raise traps.WatchdogExpired(
            f"did not reach pc=0x{until_pc:08x} within "
            f"{max_instructions} instructions")
