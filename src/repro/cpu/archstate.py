"""Architectural state checkpointing for the two-speed execution engine.

An :class:`ArchState` is everything the *architecture* defines about a
running Liquid processor system: register file (all windows), control
registers (PSR/WIM/TBR/Y), ancillary state registers, PC/nPC/annul, the
full memory image and the peripherals' observable state — plus the
deterministic RNG cursors of any seeded micro-architectural machinery,
so a restored run replays the original bit-for-bit.

Capture from one simulator, restore into another (with the same
architectural shape), and execution continues exactly where it left
off — that is how ``Simulator.run(fast_forward=...)`` warms a program
functionally and hands off to the cycle-accurate engine, and how
:class:`~repro.core.sweep.SweepRunner` reuses one warmed checkpoint
across every configuration point of a sweep.

Equality compares only *architectural* fields — the clock and the RNG
cursors are timing machinery, excluded via ``compare=False`` — so the
differential test suite can assert ``capture(fast) == capture(accurate)``
directly.

The host a state is captured on talks a small protocol rather than a
concrete class: it must expose ``cpu`` (an engine with the IntegerUnit's
architectural attributes), ``checkpoint_memory()`` (name → bytearray),
``checkpoint_peripherals()`` (name → device with ``state()`` /
``load_state()``), ``checkpoint_rngs()`` (name → object with
``rng_state()`` / ``load_rng_state()``) and a ``clock``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import dataclass, field

from repro.utils import u32

__all__ = ["ArchState", "PAYLOAD_SCHEMA"]

#: Bumped whenever the serialized payload layout changes; stale payloads
#: are rejected by :meth:`ArchState.from_payload`.
PAYLOAD_SCHEMA = 1


@dataclass(eq=True)
class ArchState:
    """One checkpoint of the architectural machine."""

    nwindows: int
    pc: int
    npc: int
    annul: bool
    halted: bool
    error_tt: int | None
    psr: int
    wim: int
    tbr: int
    y: int
    cwp: int
    globals_: tuple[int, ...]
    window_regs: tuple[int, ...]
    asr: dict
    #: Instructions retired to reach this state (both engines combined).
    retired: int
    traps_taken: int
    #: Region name -> raw bytes (e.g. ``{"sram": ...}``).
    memory: dict
    #: Device name -> that device's ``state()`` dict.
    peripherals: dict
    #: Micro-architectural, excluded from equality: the shared clock and
    #: the deterministic RNG cursors (cache replacement LFSRs).
    clock_cycles: int = field(default=0, compare=False)
    rng: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # Capture / restore
    # ------------------------------------------------------------------

    @classmethod
    def capture(cls, sim, engine=None) -> "ArchState":
        """Snapshot *sim*'s architectural state (plus RNG cursors).

        *engine* names an alternative executor to read the private
        per-engine fields (PC/nPC/annul, halt state, retirement and trap
        counters) from — e.g. a functional or translated unit mid
        fast-forward, whose registers/control/ASRs are shared with
        ``sim.cpu`` by reference but whose position is its own.  With an
        explicit engine the retired count is the engine's alone (it
        executed everything); without one it is ``cpu.instret`` plus the
        host's already-folded ``fastpath_retired`` share, as before.
        """
        cpu = engine if engine is not None else sim.cpu
        extra = 0 if engine is not None else getattr(
            sim, "fastpath_retired", 0)
        regs = cpu.regs.state()
        return cls(
            nwindows=cpu.regs.nwindows,
            pc=cpu.pc,
            npc=cpu.npc,
            annul=cpu.annul,
            halted=cpu.halted,
            error_tt=cpu.error_tt,
            psr=cpu.ctrl.psr,
            wim=cpu.ctrl.wim,
            tbr=cpu.ctrl.tbr,
            y=cpu.ctrl.y,
            cwp=regs["cwp"],
            globals_=tuple(regs["globals"]),
            window_regs=tuple(regs["window_regs"]),
            asr=dict(cpu.asr),
            retired=cpu.instret + extra,
            traps_taken=cpu.trap_count,
            memory={name: bytes(buffer)
                    for name, buffer in sim.checkpoint_memory().items()},
            peripherals={name: device.state()
                         for name, device
                         in sim.checkpoint_peripherals().items()},
            clock_cycles=sim.clock.cycles,
            rng={name: source.rng_state()
                 for name, source in sim.checkpoint_rngs().items()},
        )

    def restore(self, sim) -> None:
        """Load this state into *sim* (same architectural shape)."""
        cpu = sim.cpu
        cpu.regs.load_state({"nwindows": self.nwindows, "cwp": self.cwp,
                             "globals": list(self.globals_),
                             "window_regs": list(self.window_regs)})
        cpu.ctrl.load_state({"psr": self.psr, "wim": self.wim,
                             "tbr": self.tbr, "y": self.y})
        cpu.pc = self.pc
        cpu.npc = self.npc
        cpu.annul = self.annul
        cpu.halted = self.halted
        cpu.error_tt = self.error_tt
        cpu.asr.clear()
        cpu.asr.update(self.asr)
        # The capture read instret + the host's fastpath_retired as one
        # combined count; put it all on the engine and zero the host's
        # share so a re-capture reports the same total.
        cpu.instret = self.retired
        cpu.trap_count = self.traps_taken
        if hasattr(sim, "fastpath_retired"):
            sim.fastpath_retired = 0
        buffers = sim.checkpoint_memory()
        for name, blob in self.memory.items():
            buffer = buffers[name]
            if len(blob) != len(buffer):
                raise ValueError(
                    f"memory region '{name}' is {len(buffer)} bytes here, "
                    f"checkpoint has {len(blob)}")
            buffer[:] = blob
        devices = sim.checkpoint_peripherals()
        for name, state in self.peripherals.items():
            devices[name].load_state(state)
        sim.clock.cycles = self.clock_cycles
        sources = sim.checkpoint_rngs()
        for name, state in self.rng.items():
            if name in sources:
                sources[name].load_rng_state(state)

    # ------------------------------------------------------------------
    # Serialization (ResultCache persistence, worker processes)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-able dict (memory zlib-compressed + base64)."""
        return {
            "schema": PAYLOAD_SCHEMA,
            "nwindows": self.nwindows,
            "pc": self.pc, "npc": self.npc, "annul": self.annul,
            "halted": self.halted, "error_tt": self.error_tt,
            "psr": self.psr, "wim": self.wim, "tbr": self.tbr, "y": self.y,
            "cwp": self.cwp,
            "globals": list(self.globals_),
            "window_regs": list(self.window_regs),
            "asr": {str(k): v for k, v in sorted(self.asr.items())},
            "retired": self.retired,
            "traps_taken": self.traps_taken,
            "memory": {
                name: base64.b64encode(zlib.compress(blob, 6)).decode("ascii")
                for name, blob in sorted(self.memory.items())
            },
            "peripherals": self.peripherals,
            "clock_cycles": self.clock_cycles,
            "rng": _rng_to_json(self.rng),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ArchState":
        if payload.get("schema") != PAYLOAD_SCHEMA:
            raise ValueError(
                f"unsupported ArchState payload schema "
                f"{payload.get('schema')!r} (want {PAYLOAD_SCHEMA})")
        return cls(
            nwindows=payload["nwindows"],
            pc=payload["pc"], npc=payload["npc"], annul=payload["annul"],
            halted=payload["halted"], error_tt=payload["error_tt"],
            psr=payload["psr"], wim=payload["wim"], tbr=payload["tbr"],
            y=payload["y"],
            cwp=payload["cwp"],
            globals_=tuple(payload["globals"]),
            window_regs=tuple(payload["window_regs"]),
            asr={int(k): v for k, v in payload["asr"].items()},
            retired=payload["retired"],
            traps_taken=payload["traps_taken"],
            memory={name: zlib.decompress(base64.b64decode(blob))
                    for name, blob in payload["memory"].items()},
            peripherals=payload["peripherals"],
            clock_cycles=payload["clock_cycles"],
            rng=_rng_from_json(payload["rng"]),
        )

    def digest(self) -> str:
        """Stable identity of the *architectural* content (the fields
        equality compares — clock and RNG cursors excluded)."""
        h = hashlib.sha256()
        payload = self.to_payload()
        payload.pop("clock_cycles")
        payload.pop("rng")
        h.update(json.dumps(payload, sort_keys=True,
                            separators=(",", ":")).encode("ascii"))
        return h.hexdigest()[:16]

    def summary(self) -> dict:
        """Small human-readable view for logs and tests."""
        return {
            "pc": f"0x{u32(self.pc):08x}",
            "npc": f"0x{u32(self.npc):08x}",
            "cwp": self.cwp,
            "retired": self.retired,
            "traps_taken": self.traps_taken,
            "digest": self.digest(),
        }


def _rng_to_json(rng: dict) -> dict:
    """numpy bit-generator states are nested dicts of ints — already
    JSON-able, but keys must be strings all the way down."""
    return json.loads(json.dumps(rng))


def _rng_from_json(rng: dict) -> dict:
    return rng
