"""The LEON2-style integer unit: fetch/decode/execute with cycle accounting.

This is the simulator core the Liquid Architecture paper runs programs on.
It binds together the windowed register file, the control registers, the
pipeline timing model and two memory ports (instruction and data — in the
full platform these are the I-cache and D-cache controllers feeding the
AMBA AHB, exactly as in the paper's Figure 3).

The unit executes one instruction per :meth:`step` and returns the number
of clock cycles that instruction consumed, including memory stalls — the
same quantity the FPX's hardware cycle-counting state machine reports in
the paper's evaluation (Figure 8).
"""

from __future__ import annotations

from typing import Callable

from repro.cpu import isa, traps
from repro.cpu.decode import DecodeCache, DecodedInstruction
from repro.cpu.execute import ARITH_HANDLERS, MEM_HANDLERS, evaluate_cond
from repro.cpu.pipeline import PipelineModel, TimingConfig
from repro.cpu.registers import ControlRegisters, RegisterFile
from repro.mem.interface import BusError, MemoryPort
from repro.utils import sign_extend, u32

#: Interrupt trap types are 0x10 + level (SPARC V8 table 7-1).
INTERRUPT_TRAP_BASE = 0x10


class IntegerUnit:
    """SPARC V8 integer unit with LEON2 timing.

    Parameters
    ----------
    iport, dport:
        Instruction and data :class:`~repro.mem.interface.MemoryPort`\\ s.
        A single port may be shared (von-Neumann test setups).
    nwindows:
        Register-window count (a Liquid configuration dimension).
    timing:
        Pipeline cost table; ``None`` selects the stock LEON2 numbers.
    reset_pc:
        Where execution begins after :meth:`reset` (the boot PROM).
    """

    def __init__(
        self,
        iport: MemoryPort,
        dport: MemoryPort,
        nwindows: int = isa.DEFAULT_NWINDOWS,
        timing: TimingConfig | None = None,
        reset_pc: int = 0x0000_0000,
    ):
        self.regs = RegisterFile(nwindows)
        self.ctrl = ControlRegisters(nwindows)
        self.pipeline = PipelineModel(timing)
        self.iport = iport
        self.dport = dport
        self.reset_pc = reset_pc
        self.decode_cache = DecodeCache()

        self.pc = 0
        self.npc = 0
        self.annul = False
        self.halted = False
        self.error_tt: int | None = None

        self.cycles = 0
        self.instret = 0
        self.trap_count = 0

        # Stall/flush accounting (collected by repro.obs into the
        # pipeline.* series).  Native ints so the hot loop pays one
        # integer add, not an instrument call.
        self.fetch_stall_cycles = 0   # I-side wait cycles (FE stalls)
        self.mem_stall_cycles = 0     # D-side wait cycles (ME stalls)
        self.annulled_slots = 0       # fetched-but-annulled delay slots
        self.taken_ctis = 0           # taken control transfers
        self.cti_penalty_cycles = 0   # redirect bubbles beyond the slot
        self.pipeline_flushes = 0     # trap entries that drained the pipe

        # Liquid Architecture custom-instruction extension points (CPop1
        # opf -> handler).  Populated by repro.core.rewriter / examples.
        self.extensions: dict[int, Callable[[IntegerUnit, DecodedInstruction], None]] = {}
        # Ancillary state registers (ASR 16..31 are impl-defined).
        self.asr: dict[int, int] = {}

        # Hooks for the platform (leon_ctrl bus snooping, tracing).
        self.on_fetch: Callable[[int], None] | None = None
        self.on_trap: Callable[[int, int], None] | None = None
        # Instruction-trace hook: (pc, DecodedInstruction) after retire.
        self.on_retire: Callable[[int, DecodedInstruction], None] | None = None
        # Interrupt source: callable returning pending level 0..15.
        self.interrupt_source: Callable[[], int] | None = None

        self._transfer_target: int | None = None
        self._mem_extra = 0
        self.reset()

    # ------------------------------------------------------------------
    # Reset / control
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Power-on reset: supervisor mode, traps disabled, PC at the PROM."""
        nwin = self.regs.nwindows
        self.regs = RegisterFile(nwin)
        self.ctrl = ControlRegisters(nwin)
        self.pipeline.reset()
        self.pc = self.reset_pc
        self.npc = u32(self.reset_pc + 4)
        self.annul = False
        self.halted = False
        self.error_tt = None
        self.cycles = 0
        self.instret = 0
        self.trap_count = 0
        self.fetch_stall_cycles = 0
        self.mem_stall_cycles = 0
        self.annulled_slots = 0
        self.taken_ctis = 0
        self.cti_penalty_cycles = 0
        self.pipeline_flushes = 0
        self.pipeline.interlock_stalls = 0
        self._transfer_target = None
        self._mem_extra = 0

    # ------------------------------------------------------------------
    # Memory access helpers used by the executor
    # ------------------------------------------------------------------

    def data_read(self, address: int, size: int, *, signed: bool) -> int:
        try:
            value, extra = self.dport.read(u32(address), size)
        except BusError as exc:
            raise traps.data_access_exception(exc.address) from exc
        self._mem_extra += extra
        if signed:
            value = u32(sign_extend(value, size * 8))
        return value

    def data_write(self, address: int, size: int, value: int) -> None:
        try:
            extra = self.dport.write(u32(address), size, u32(value))
        except BusError as exc:
            raise traps.data_access_exception(exc.address) from exc
        self._mem_extra += extra

    def flush_icache(self) -> None:
        flush = getattr(self.iport, "flush", None)
        if flush is not None:
            self._mem_extra += flush() or 0

    def flush_dcache(self) -> None:
        flush = getattr(self.dport, "flush", None)
        if flush is not None:
            self._mem_extra += flush() or 0

    def read_asr(self, number: int) -> int:
        if number == 17:
            # LEON configuration register: NWINDOWS-1 in bits 4:0.
            return (self.regs.nwindows - 1) & 0x1F
        if number in self.asr:
            return self.asr[number]
        raise traps.illegal_instruction(f"RDASR %asr{number}")

    def write_asr(self, number: int, value: int) -> None:
        if 16 <= number <= 31:
            self.asr[number] = u32(value)
        else:
            raise traps.illegal_instruction(f"WRASR %asr{number}")

    # ------------------------------------------------------------------
    # Control transfer (called from the executor)
    # ------------------------------------------------------------------

    def transfer(self, target: int) -> None:
        """Schedule a delayed control transfer to *target* (after the
        delay-slot instruction at the current nPC executes)."""
        self._transfer_target = u32(target)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Execute one instruction (or annul one delay slot).

        Returns the cycles consumed; updates :attr:`cycles`/:attr:`instret`.
        Raises :class:`~repro.cpu.traps.ErrorMode` if a trap occurs while
        ET=0 (the processor halts, as on hardware).
        """
        if self.halted:
            raise traps.ErrorMode(self.error_tt or 0, self.pc)

        # Interrupt check happens between instructions.
        if self.interrupt_source is not None and self.ctrl.et:
            level = self.interrupt_source()
            if level and (level == 15 or level > self.ctrl.pil):
                cycles = self._enter_trap(
                    traps.TrapException(INTERRUPT_TRAP_BASE + level, "interrupt"))
                self.cycles += cycles
                return cycles

        pc = self.pc
        if self.on_fetch is not None:
            self.on_fetch(pc)

        try:
            word, fetch_extra = self.iport.read(pc, 4)
        except BusError:
            cycles = self._enter_trap(traps.instruction_access_exception(pc))
            self.cycles += cycles
            return cycles

        if self.annul:
            # The annulled delay slot is fetched but not executed.
            self.annul = False
            self.pc = self.npc
            self.npc = u32(self.npc + 4)
            cycles = fetch_extra + self.pipeline.timing.annulled_slot_cycles
            self.fetch_stall_cycles += fetch_extra
            self.annulled_slots += 1
            self.cycles += cycles
            return cycles

        inst = self.decode_cache.lookup(word)
        self._transfer_target = None
        self._mem_extra = 0

        try:
            self._dispatch(inst)
        except traps.TrapException as trap:
            cycles = fetch_extra + self._enter_trap(trap)
            self.fetch_stall_cycles += fetch_extra
            self.cycles += cycles
            return cycles

        taken_cti = self._transfer_target is not None
        if taken_cti:
            self.pc, self.npc = self.npc, self._transfer_target
        else:
            self.pc, self.npc = self.npc, u32(self.npc + 4)

        cycles = fetch_extra + self.pipeline.issue_cycles(inst) + self._mem_extra
        if taken_cti:
            cycles += self.pipeline.timing.taken_cti_penalty
            self.taken_ctis += 1
            self.cti_penalty_cycles += self.pipeline.timing.taken_cti_penalty
        self.fetch_stall_cycles += fetch_extra
        self.mem_stall_cycles += self._mem_extra
        self.cycles += cycles
        self.instret += 1
        if self.on_retire is not None:
            self.on_retire(pc, inst)
        return cycles

    def run(self, max_instructions: int = 10_000_000,
            until_pc: int | None = None) -> int:
        """Step until *until_pc* is about to execute (or the budget runs
        out, raising :class:`~repro.cpu.traps.WatchdogExpired`).

        Returns total cycles consumed by this call.
        """
        start_cycles = self.cycles
        for _ in range(max_instructions):
            if until_pc is not None and self.pc == until_pc:
                return self.cycles - start_cycles
            self.step()
        if until_pc is None:
            return self.cycles - start_cycles
        raise traps.WatchdogExpired(
            f"did not reach pc=0x{until_pc:08x} within {max_instructions} instructions")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, inst: DecodedInstruction) -> None:
        op = inst.op
        if op == isa.OP_ARITH:
            handler = ARITH_HANDLERS.get(inst.op3)
            if handler is None:
                raise traps.illegal_instruction(f"op3=0x{inst.op3:02x}")
            handler(self, inst)
        elif op == isa.OP_MEM:
            handler = MEM_HANDLERS.get(inst.op3)
            if handler is None:
                raise traps.illegal_instruction(f"mem op3=0x{inst.op3:02x}")
            handler(self, inst)
        elif op == isa.OP_CALL:
            self.regs.write(15, self.pc)
            self.transfer(self.pc + (inst.disp30 << 2))
        else:  # OP_BRANCH_SETHI
            op2 = inst.op2
            if op2 == isa.OP2_SETHI:
                self.regs.write(inst.rd, u32(inst.imm22 << 10))
            elif op2 == isa.OP2_BICC:
                self._branch(inst)
            elif op2 == isa.OP2_FBFCC:
                raise traps.fp_disabled()
            elif op2 == isa.OP2_CBCCC:
                raise traps.cp_disabled()
            else:  # UNIMP and reserved op2 values
                raise traps.illegal_instruction(f"op2={op2}")

    def _branch(self, inst: DecodedInstruction) -> None:
        n, z, v, c = self.ctrl.icc
        taken = evaluate_cond(inst.cond, n, z, v, c)
        if taken:
            self.transfer(self.pc + (inst.disp22 << 2))
            # "branch always" with the annul bit set annuls its delay slot.
            if inst.annul and inst.cond == isa.Cond.A:
                self.annul = True
        else:
            if inst.annul:
                self.annul = True

    # ------------------------------------------------------------------
    # Traps
    # ------------------------------------------------------------------

    def _enter_trap(self, trap: traps.TrapException) -> int:
        ctrl = self.ctrl
        if not ctrl.et:
            self.halted = True
            self.error_tt = trap.tt
            raise traps.ErrorMode(trap.tt, self.pc)
        self.trap_count += 1
        self.pipeline_flushes += 1
        if self.on_trap is not None:
            self.on_trap(trap.tt, self.pc)
        ctrl.et = False
        ctrl.ps = ctrl.s
        ctrl.s = True
        new_cwp = (ctrl.cwp - 1) % self.regs.nwindows
        ctrl.cwp = new_cwp
        self.regs.cwp = new_cwp
        # %l1 / %l2 of the new window receive PC / nPC.
        self.regs.write(17, self.pc)
        self.regs.write(18, self.npc)
        ctrl.tt = trap.tt
        vector = u32(ctrl.tba | (trap.tt << 4))
        self.pc = vector
        self.npc = u32(vector + 4)
        self.annul = False
        self.pipeline.reset()
        return self.pipeline.timing.trap_entry_cycles

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state_summary(self) -> dict:
        """Debug snapshot used by tests and the control-software console."""
        return {
            "pc": self.pc,
            "npc": self.npc,
            "psr": self.ctrl.psr,
            "cwp": self.ctrl.cwp,
            "wim": self.ctrl.wim,
            "y": self.ctrl.y,
            "cycles": self.cycles,
            "instret": self.instret,
            "halted": self.halted,
            "regs": self.regs.snapshot(),
        }


__all__ = ["IntegerUnit", "INTERRUPT_TRAP_BASE"]
