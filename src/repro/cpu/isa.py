"""SPARC V8 instruction-set constants.

Encodings follow *The SPARC Architecture Manual, Version 8* and match what
the LEON2 integer unit implements.  The tables here are shared by the
decoder (:mod:`repro.cpu.decode`), the executor (:mod:`repro.cpu.execute`),
the assembler (:mod:`repro.toolchain.asm`) and the disassembler.
"""

from __future__ import annotations

from enum import IntEnum

# ---------------------------------------------------------------------------
# Top-level instruction formats (bits 31:30).
# ---------------------------------------------------------------------------

OP_BRANCH_SETHI = 0  # format 2: Bicc / SETHI / FBfcc / CBccc / UNIMP
OP_CALL = 1          # format 1: CALL
OP_ARITH = 2         # format 3: arithmetic / logical / control
OP_MEM = 3           # format 3: loads / stores

# op2 values within format 2.
OP2_UNIMP = 0
OP2_BICC = 2
OP2_SETHI = 4
OP2_FBFCC = 6
OP2_CBCCC = 7


class Op3(IntEnum):
    """``op3`` values for format-3 (``op = 2``) instructions."""

    ADD = 0x00
    AND = 0x01
    OR = 0x02
    XOR = 0x03
    SUB = 0x04
    ANDN = 0x05
    ORN = 0x06
    XNOR = 0x07
    ADDX = 0x08
    UMUL = 0x0A
    SMUL = 0x0B
    SUBX = 0x0C
    UDIV = 0x0E
    SDIV = 0x0F
    ADDCC = 0x10
    ANDCC = 0x11
    ORCC = 0x12
    XORCC = 0x13
    SUBCC = 0x14
    ANDNCC = 0x15
    ORNCC = 0x16
    XNORCC = 0x17
    ADDXCC = 0x18
    UMULCC = 0x1A
    SMULCC = 0x1B
    SUBXCC = 0x1C
    UDIVCC = 0x1E
    SDIVCC = 0x1F
    TADDCC = 0x20
    TSUBCC = 0x21
    TADDCCTV = 0x22
    TSUBCCTV = 0x23
    MULSCC = 0x24
    SLL = 0x25
    SRL = 0x26
    SRA = 0x27
    RDASR = 0x28  # also RDY when rs1 == 0
    RDPSR = 0x29
    RDWIM = 0x2A
    RDTBR = 0x2B
    WRASR = 0x30  # also WRY when rd == 0
    WRPSR = 0x31
    WRWIM = 0x32
    WRTBR = 0x33
    FPOP1 = 0x34
    FPOP2 = 0x35
    CPOP1 = 0x36  # reclaimed by Liquid Architecture for custom instructions
    CPOP2 = 0x37
    JMPL = 0x38
    RETT = 0x39
    TICC = 0x3A
    FLUSH = 0x3B
    SAVE = 0x3C
    RESTORE = 0x3D


class Op3Mem(IntEnum):
    """``op3`` values for memory (``op = 3``) instructions."""

    LD = 0x00
    LDUB = 0x01
    LDUH = 0x02
    LDD = 0x03
    ST = 0x04
    STB = 0x05
    STH = 0x06
    STD = 0x07
    LDSB = 0x09
    LDSH = 0x0A
    LDSTUB = 0x0D
    SWAP = 0x0F
    LDA = 0x10
    LDUBA = 0x11
    LDUHA = 0x12
    LDDA = 0x13
    STA = 0x14
    STBA = 0x15
    STHA = 0x16
    STDA = 0x17
    LDSBA = 0x19
    LDSHA = 0x1A
    LDSTUBA = 0x1D
    SWAPA = 0x1F


class Cond(IntEnum):
    """Integer condition codes for Bicc / Ticc (SPARC V8 table 5-9)."""

    N = 0x0    # never
    E = 0x1    # equal                     Z
    LE = 0x2   # less or equal             Z or (N xor V)
    L = 0x3    # less                      N xor V
    LEU = 0x4  # less or equal, unsigned   C or Z
    CS = 0x5   # carry set (lu)            C
    NEG = 0x6  # negative                  N
    VS = 0x7   # overflow set              V
    A = 0x8    # always
    NE = 0x9   # not equal                 not Z
    G = 0xA    # greater                   not (Z or (N xor V))
    GE = 0xB   # greater or equal          not (N xor V)
    GU = 0xC   # greater, unsigned         not (C or Z)
    CC = 0xD   # carry clear (geu)         not C
    POS = 0xE  # positive                  not N
    VC = 0xF   # overflow clear            not V


#: Branch mnemonic per condition value, used by disassembler and assembler.
BRANCH_MNEMONICS = {
    Cond.N: "bn", Cond.E: "be", Cond.LE: "ble", Cond.L: "bl",
    Cond.LEU: "bleu", Cond.CS: "bcs", Cond.NEG: "bneg", Cond.VS: "bvs",
    Cond.A: "ba", Cond.NE: "bne", Cond.G: "bg", Cond.GE: "bge",
    Cond.GU: "bgu", Cond.CC: "bcc", Cond.POS: "bpos", Cond.VC: "bvc",
}

TRAP_MNEMONICS = {
    Cond.N: "tn", Cond.E: "te", Cond.LE: "tle", Cond.L: "tl",
    Cond.LEU: "tleu", Cond.CS: "tcs", Cond.NEG: "tneg", Cond.VS: "tvs",
    Cond.A: "ta", Cond.NE: "tne", Cond.G: "tg", Cond.GE: "tge",
    Cond.GU: "tgu", Cond.CC: "tcc", Cond.POS: "tpos", Cond.VC: "tvc",
}


class Trap(IntEnum):
    """Trap types (``tt`` field of TBR) used by the LEON2 model."""

    RESET = 0x00
    INSTRUCTION_ACCESS = 0x01
    ILLEGAL_INSTRUCTION = 0x02
    PRIVILEGED_INSTRUCTION = 0x03
    FP_DISABLED = 0x04
    WINDOW_OVERFLOW = 0x05
    WINDOW_UNDERFLOW = 0x06
    MEM_ADDRESS_NOT_ALIGNED = 0x07
    FP_EXCEPTION = 0x08
    DATA_ACCESS = 0x09
    TAG_OVERFLOW = 0x0A
    CP_DISABLED = 0x24
    DIVISION_BY_ZERO = 0x2A
    TRAP_INSTRUCTION_BASE = 0x80  # + software trap number (Ticc)


# ---------------------------------------------------------------------------
# PSR field layout (SPARC V8 figure 4-4).
# ---------------------------------------------------------------------------

PSR_CWP_SHIFT = 0       # bits 4:0  current window pointer
PSR_ET_SHIFT = 5        # enable traps
PSR_PS_SHIFT = 6        # previous supervisor
PSR_S_SHIFT = 7         # supervisor
PSR_PIL_SHIFT = 8       # bits 11:8 processor interrupt level
PSR_EF_SHIFT = 12       # enable floating point
PSR_EC_SHIFT = 13       # enable coprocessor
PSR_ICC_SHIFT = 20      # bits 23:20 = N Z V C
PSR_VER_SHIFT = 24
PSR_IMPL_SHIFT = 28

ICC_C = 1 << 20
ICC_V = 1 << 21
ICC_Z = 1 << 22
ICC_N = 1 << 23

#: LEON2 reports impl/ver = 0xF/0x3 (Gaisler Research assignment).
LEON_IMPL = 0xF
LEON_VER = 0x3

# Default number of register windows in the LEON2 configuration record.
DEFAULT_NWINDOWS = 8

# ---------------------------------------------------------------------------
# ASIs (address-space identifiers) the LEON2 model recognises.
# ---------------------------------------------------------------------------

ASI_USER_INSTRUCTION = 0x08
ASI_SUPERVISOR_INSTRUCTION = 0x09
ASI_USER_DATA = 0x0A
ASI_SUPERVISOR_DATA = 0x0B
ASI_ICACHE_FLUSH = 0x05  # LEON-specific: flush instruction cache
ASI_DCACHE_FLUSH = 0x06  # LEON-specific: flush data cache


def instruction_fields(word: int) -> tuple[int, int, int, int]:
    """Return ``(op, rd, op2_or_op3, rs1)`` raw fields of an encoded word."""
    return (word >> 30) & 3, (word >> 25) & 0x1F, (word >> 19) & 0x3F, (word >> 14) & 0x1F
