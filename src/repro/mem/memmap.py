"""The Liquid Processor memory map.

Matches the paper's supervisory state machine: boot PROM at 0, FPX SRAM
at 0x4000_0000 (where programs load and where the leon_ctrl mailbox
lives), FPX SDRAM at 0x6000_0000 behind the AHB adapter, and the APB
register space at 0x8000_0000.  The linker's default
:class:`~repro.toolchain.linker.MemoryMapScript` and the control
software's packetizer both derive from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- region bases -----------------------------------------------------------

PROM_BASE = 0x0000_0000
PROM_SIZE = 0x0000_2000            # 8 KiB of boot code

SRAM_BASE = 0x4000_0000
SRAM_SIZE = 0x0020_0000            # 2 MiB FPX ZBT SRAM

SDRAM_BASE = 0x6000_0000
SDRAM_SIZE = 0x0400_0000           # 64 MiB FPX SDRAM

APB_BASE = 0x8000_0000
APB_SIZE = 0x0000_1000

# -- leon_ctrl mailbox protocol (paper §3.1) ---------------------------------
# The modified boot ROM polls MAILBOX_START for a non-zero program start
# address; the external circuitry writes it after a program is loaded.
# The word after it is where crt0 deposits main()'s return value so the
# user can fetch it with the Read Memory command.

MAILBOX_START = SRAM_BASE + 0x0    # 0x4000_0000: program start address
RESULT_ADDR = SRAM_BASE + 0x8      # 0x4000_0008: main() return value
PROGRAM_BASE = SRAM_BASE + 0x1000  # default load address for user code
# Initial %sp.  SPARC frames keep a 64-byte register-window save area at
# [%sp .. %sp+63], so the top of stack leaves that much headroom below
# the end of SRAM (plus slack, 8-byte aligned).
STACK_TOP = SRAM_BASE + SRAM_SIZE - 0x80

# -- APB register offsets (relative to APB_BASE, LEON2-style) -----------------

MCFG_OFFSET = 0x00        # memory configuration registers (stubs)
TIMER_OFFSET = 0x40
UART_OFFSET = 0x70
IRQCTRL_OFFSET = 0x90
IOPORT_OFFSET = 0xA0      # LED / discrete output port
CYCLE_COUNTER_OFFSET = 0x100  # FPX cycle-counting state machine (paper §4)


@dataclass(frozen=True)
class MemoryMap:
    """Bundled map so alternative layouts remain expressible (the
    configuration space can move/resize SRAM and SDRAM)."""

    prom_base: int = PROM_BASE
    prom_size: int = PROM_SIZE
    sram_base: int = SRAM_BASE
    sram_size: int = SRAM_SIZE
    sdram_base: int = SDRAM_BASE
    sdram_size: int = SDRAM_SIZE
    apb_base: int = APB_BASE
    apb_size: int = APB_SIZE

    @property
    def mailbox_start(self) -> int:
        return self.sram_base

    @property
    def result_addr(self) -> int:
        return self.sram_base + 0x8

    @property
    def program_base(self) -> int:
        return self.sram_base + 0x1000

    @property
    def stack_top(self) -> int:
        return self.sram_base + self.sram_size - 0x80

    def cacheable(self, address: int) -> bool:
        """PROM/SRAM/SDRAM are cacheable; APB (and anything unmapped) is
        not.  The mailbox/result words are also non-cacheable so that the
        CPU observes writes made by the leon_ctrl circuitry and vice versa
        (the real hardware relies on the boot-loop cache flush for this;
        keeping the two mailbox words uncached makes the model robust to
        user programs that poll them without flushing)."""
        if self.sram_base <= address < self.sram_base + 0x10:
            return False
        return (
            self.prom_base <= address < self.prom_base + self.prom_size
            or self.sram_base <= address < self.sram_base + self.sram_size
            or self.sdram_base <= address < self.sdram_base + self.sdram_size
        )

    def region_of(self, address: int) -> str:
        if self.prom_base <= address < self.prom_base + self.prom_size:
            return "prom"
        if self.sram_base <= address < self.sram_base + self.sram_size:
            return "sram"
        if self.sdram_base <= address < self.sdram_base + self.sdram_size:
            return "sdram"
        if self.apb_base <= address < self.apb_base + self.apb_size:
            return "apb"
        return "unmapped"


DEFAULT_MAP = MemoryMap()
