"""Memory-port protocol shared by the CPU, caches, buses and devices.

A *port* is anything the integer unit (or a cache, or a bus master) can
issue byte-addressed reads and writes to.  Ports return the number of
*extra* wait cycles the access cost beyond the pipeline's built-in issue
cost — zero for an ideal (cache-hit) access.  This is the contract that
lets the same IU run against a flat test memory, a cache hierarchy, or the
full FPX platform model without change.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.utils import u32


class BusError(Exception):
    """Access to an unmapped or faulting address; becomes a data/instruction
    access trap at the CPU and an HRESP=ERROR at the AHB level."""

    def __init__(self, address: int, detail: str = ""):
        self.address = address
        super().__init__(f"bus error at 0x{address:08x} {detail}".strip())


@runtime_checkable
class MemoryPort(Protocol):
    """Byte-addressed read/write with cycle accounting."""

    def read(self, address: int, size: int) -> tuple[int, int]:
        """Read *size* bytes (1/2/4) at *address*; return ``(value, cycles)``."""
        ...

    def write(self, address: int, size: int, value: int) -> int:
        """Write *size* bytes at *address*; return wait cycles."""
        ...


class FlatMemory:
    """A flat, fixed-latency memory — the unit-test stand-in for the
    full cache/bus/SDRAM stack.

    *base* and *size* bound the mapped range; anything outside raises
    :class:`BusError`.  All values are big-endian, as on SPARC.
    """

    def __init__(self, size: int = 1 << 20, base: int = 0,
                 read_wait: int = 0, write_wait: int = 0):
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.read_wait = read_wait
        self.write_wait = write_wait
        self.reads = 0
        self.writes = 0

    def _offset(self, address: int, size: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + size > self.size:
            raise BusError(address, "outside flat memory")
        return offset

    def read(self, address: int, size: int) -> tuple[int, int]:
        offset = self._offset(address, size)
        self.reads += 1
        return int.from_bytes(self.data[offset:offset + size], "big"), self.read_wait

    def write(self, address: int, size: int, value: int) -> int:
        offset = self._offset(address, size)
        self.writes += 1
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "big")
        return self.write_wait

    # -- convenience (tests, loaders) ---------------------------------------

    def load(self, address: int, blob: bytes) -> None:
        """Bulk-copy *blob* into memory at *address* (no cycle cost)."""
        offset = self._offset(address, max(len(blob), 1))
        self.data[offset:offset + len(blob)] = blob

    def dump(self, address: int, length: int) -> bytes:
        offset = self._offset(address, max(length, 1))
        return bytes(self.data[offset:offset + length])

    def read_word(self, address: int) -> int:
        return self.read(u32(address), 4)[0]

    def write_word(self, address: int, value: int) -> None:
        self.write(u32(address), 4, value)
