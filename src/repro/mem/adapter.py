"""AHB ↔ FPX-SDRAM bridge — the adapter the paper's §3.2 is about.

The design problems the paper describes, and how this model reproduces
each:

* **Bus width mismatch** — AHB is 32-bit, the FPX SDRAM controller is
  64-bit.  Reads select the appropriate 32-bit half of each 64-bit beat
  (wasting half the bandwidth); writes of less than 64 bits force a
  **read-modify-write**: read the 64-bit word (one handshake), merge the
  bytes, write it back (a second handshake) — "significantly impairing
  performance".

* **Burst-length mismatch** — AHB INCR bursts have unspecified length,
  but the FPX controller needs the burst length up front.  Simulation
  showed LEON bursts are ≤ 4 words, so the adapter *always requests a
  4-word (2-beat) read burst*: a couple of cycles are wasted when fewer
  words were needed, but a handshake is saved for each full 4-word group.
  Longer sequential runs (an 8-word cache-line fill) take one additional
  handshake per 4-word group.

* **Write bursts are disallowed** (burst length unknown ahead of time
  would risk memory integrity), so every write is a standalone RMW.

``read_burst_words`` exists so the ablation benchmark can compare the
paper's fixed-4 policy against naive single-word handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.sdram import SdramPort
from repro.utils import u32


@dataclass(frozen=True)
class AdapterConfig:
    """Adapter policy knobs (§3.2 design choices)."""

    read_burst_words: int = 4   # fixed speculative read burst (32-bit words)
    allow_write_burst: bool = False

    def __post_init__(self) -> None:
        if self.read_burst_words not in (1, 2, 4, 8, 16):
            raise ValueError("read_burst_words must be 1/2/4/8/16")


class AhbSdramAdapter:
    """AHB slave in front of one FPX SDRAM controller port.

    The adapter keeps the most recent speculative read group as a
    single-entry stream buffer: the AHB beats of one burst (and the
    back-to-back sequential reads of a line fill) hit it without a new
    handshake, which is precisely the benefit the paper's fixed-length
    read burst buys.
    """

    supports_write_burst = False  # honoured by AhbBus.write_burst

    def __init__(self, port: SdramPort, base: int, size: int,
                 config: AdapterConfig | None = None):
        self.port = port
        self.base = base
        self.size = size
        self.config = config or AdapterConfig()
        # Stream buffer: base address + the 32-bit words of the last group.
        self._buffer_base: int | None = None
        self._buffer_words: list[int] = []
        self.handshakes_saved = 0
        self.rmw_writes = 0

    # -- geometry helpers -------------------------------------------------

    def _group_span(self) -> int:
        return self.config.read_burst_words * 4

    def _fetch_group(self, address: int) -> tuple[list[int], int]:
        """Fetch the aligned group containing *address* from SDRAM."""
        span = self._group_span()
        group_base = address & ~(span - 1)
        beats = max(span // 8, 1)
        if span >= 8:
            values64, cycles = self.port.read_burst(group_base, beats)
            words = []
            for value in values64:
                words.append((value >> 32) & 0xFFFF_FFFF)
                words.append(value & 0xFFFF_FFFF)
        else:
            # 1-word policy: still must read a full 64-bit beat.
            beat_base = address & ~7
            values64, cycles = self.port.read_burst(beat_base, 1)
            word_index = (address >> 2) & 1
            words = [(values64[0] >> (32 * (1 - word_index))) & 0xFFFF_FFFF]
            group_base = beat_base + word_index * 4
        self._buffer_base = group_base
        self._buffer_words = words
        return words, cycles

    def _buffered_word(self, address: int) -> int | None:
        if self._buffer_base is None:
            return None
        index = (address - self._buffer_base) >> 2
        if 0 <= index < len(self._buffer_words) and \
                self._buffer_base <= address < \
                self._buffer_base + len(self._buffer_words) * 4:
            return self._buffer_words[index]
        return None

    # -- AHB slave interface ------------------------------------------------

    def read(self, address: int, size: int) -> tuple[int, int]:
        word_addr = address & ~3
        word = self._buffered_word(word_addr)
        cycles = 0
        if word is None:
            _, cycles = self._fetch_group(word_addr)
            word = self._buffered_word(word_addr)
            assert word is not None
        else:
            self.handshakes_saved += 1
        if size == 4:
            return word, cycles
        shift = (4 - (address & 3) - size) * 8
        return (word >> shift) & ((1 << (8 * size)) - 1), cycles

    def read_burst(self, address: int, nwords: int) -> tuple[list[int], int]:
        words: list[int] = []
        cycles = 0
        for i in range(nwords):
            word, extra = self.read(address + 4 * i, 4)
            words.append(word)
            cycles += extra
        return words, cycles

    def write(self, address: int, size: int, value: int) -> int:
        """Read-modify-write of the containing 64-bit word (two handshakes)."""
        beat_base = address & ~7
        values64, read_cycles = self.port.read_burst(beat_base, 1)
        merged = values64[0]
        bit_offset = (8 - (address & 7) - size) * 8
        mask = ((1 << (8 * size)) - 1) << bit_offset
        merged = (merged & ~mask) | ((u32(value) << bit_offset) & mask)
        write_cycles = self.port.write_burst(beat_base, [merged])
        self.rmw_writes += 1
        self._invalidate_buffer(beat_base)
        return read_cycles + write_cycles

    def write_burst(self, address: int, words: list[int]) -> int:
        if not self.config.allow_write_burst:
            raise RuntimeError("write bursts are disallowed by the adapter")
        cycles = 0
        # Even when enabled (ablation only), pairs of aligned words can be
        # coalesced into single 64-bit beats; ragged edges still need RMW.
        index = 0
        while index < len(words):
            word_addr = address + 4 * index
            if word_addr % 8 == 0 and index + 1 < len(words):
                beat = (u32(words[index]) << 32) | u32(words[index + 1])
                cycles += self.port.write_burst(word_addr, [beat])
                self._invalidate_buffer(word_addr)
                index += 2
            else:
                cycles += self.write(word_addr, 4, words[index])
                index += 1
        return cycles

    def _invalidate_buffer(self, beat_base: int) -> None:
        if self._buffer_base is None:
            return
        span = len(self._buffer_words) * 4
        if self._buffer_base <= beat_base < self._buffer_base + span or \
                self._buffer_base <= beat_base + 7 < self._buffer_base + span:
            self._buffer_base = None
            self._buffer_words = []

    def stats(self) -> dict:
        return {
            "handshakes_saved": self.handshakes_saved,
            "rmw_writes": self.rmw_writes,
            "read_burst_words": self.config.read_burst_words,
        }
