"""FPX ZBT SRAM bank.

Dual use, as in Figure 6 of the paper: it is an AHB slave for the LEON
processor *and* directly writable by the leon_ctrl circuitry / Control
Packet Processor (the ``host_*`` methods), which is how programs arrive
over the network while LEON is disconnected.
"""

from __future__ import annotations

from repro.mem.interface import BusError
from repro.utils import u32


class SramBank:
    """Zero-ish wait-state synchronous SRAM (AHB slave).

    *wait_states* applies per data beat; FPX ZBT SRAM runs at bus speed,
    so the default is 0.
    """

    def __init__(self, base: int, size: int, wait_states: int = 0):
        self.base = base
        self.size = size
        self.wait_states = wait_states
        self.data = bytearray(size)
        self.reads = 0
        self.writes = 0

    def _offset(self, address: int, size: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + size > self.size:
            raise BusError(address, "outside SRAM")
        return offset

    # -- AHB slave ------------------------------------------------------------

    def read(self, address: int, size: int) -> tuple[int, int]:
        offset = self._offset(address, size)
        self.reads += 1
        return int.from_bytes(self.data[offset:offset + size], "big"), \
            self.wait_states

    def write(self, address: int, size: int, value: int) -> int:
        offset = self._offset(address, size)
        self.writes += 1
        self.data[offset:offset + size] = \
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "big")
        return self.wait_states

    def read_burst(self, address: int, nwords: int) -> tuple[list[int], int]:
        offset = self._offset(address, nwords * 4)
        self.reads += nwords
        words = [
            int.from_bytes(self.data[offset + 4 * i:offset + 4 * i + 4], "big")
            for i in range(nwords)
        ]
        return words, self.wait_states * nwords

    # -- host-side (leon_ctrl / CPP) port --------------------------------------

    def host_write(self, address: int, blob: bytes) -> None:
        """Direct write from the user side of the Figure 6 mux — used to
        deposit program bytes received in Load Program packets."""
        offset = self._offset(address, max(len(blob), 1))
        self.data[offset:offset + len(blob)] = blob

    def host_read(self, address: int, length: int) -> bytes:
        offset = self._offset(address, max(length, 1))
        return bytes(self.data[offset:offset + length])

    def host_write_word(self, address: int, value: int) -> None:
        self.host_write(address, u32(value).to_bytes(4, "big"))

    def host_read_word(self, address: int) -> int:
        return int.from_bytes(self.host_read(address, 4), "big")
