"""LEON boot PROM: trap table + boot code, original and modified.

The paper's key firmware change (Figure 5) replaces the stock LEON boot
loop ("wait for UART event") with a *polling* loop: flush the cache, load
the word at the mailbox address (0x4000_0000), and spin while it is zero.
The external leon_ctrl circuitry releases the processor by writing the
user program's start address there; the boot code then jumps to it.  The
user program's epilogue jumps back to the polling loop, which leon_ctrl
detects by snooping the address bus.

The ROM is genuine SPARC V8 code assembled by our own toolchain at build
time.  Layout (TBA = 0):

* ``0x0000``–``0x0FFF`` — the 256-entry trap table (16 bytes per entry);
* reset vectors to ``boot_start``; window overflow/underflow vector to
  real spill/fill handlers (so compiled programs can nest calls deeper
  than NWINDOWS); software trap 0 (``ta 0``) is the program-exit syscall;
  everything else parks at ``error_state``, which leon_ctrl reports as an
  error packet (paper §4.1's debug mechanism);
* ``0x1000``+ — boot code and handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.mem.interface import BusError
from repro.mem.memmap import MemoryMap
from repro.toolchain.asm import assemble
from repro.toolchain.linker import Linker, MemoryMapScript


@dataclass(frozen=True)
class BootRomInfo:
    """Addresses the platform (leon_ctrl, tests) needs to know about."""

    image: bytes
    poll_address: int      # the CheckReady loop head (snooped by leon_ctrl)
    error_address: int     # the error_state loop head
    boot_start: int
    symbols: dict


_TRAP_TABLE_HEADER = """
    .text
    .global _trap_table
_trap_table:
"""

# Handlers that get dedicated trap-table entries.
_VECTORED = {
    0x00: "boot_start",          # reset
    0x05: "window_overflow",
    0x06: "window_underflow",
    0x80: "syscall_exit",        # ta 0: program exit back to polling loop
}


def _trap_table_source() -> str:
    """Generate the 256-entry trap table (each entry is 4 instructions)."""
    lines = [_TRAP_TABLE_HEADER]
    for tt in range(256):
        target = _VECTORED.get(tt, "error_state")
        lines.append(f"    ba {target}")
        lines.append("    nop")
        lines.append("    nop")
        lines.append("    nop")
    return "\n".join(lines)


def _window_handlers(nwindows: int) -> str:
    """The classic SPARC V8 spill/fill handlers, sized for NWINDOWS.

    Structure follows the canonical sequence (Magnusson, "Understanding
    stacks and registers in the SPARC architecture"): compute the rotated
    WIM into a trap-window local, *disable* WIM traps, move to the window
    to spill/refill, transfer its locals+ins to/from the 64-byte save
    area at its ``%sp``, return to the trap window, install the new WIM,
    and re-execute the trapped SAVE/RESTORE.  The new WIM must be written
    from the trap window because locals are per-window.
    """
    mask = (1 << nwindows) - 1
    return f"""
! ---- window overflow: SAVE into an invalid window ------------------------
window_overflow:
    mov %wim, %l3                    ! rotate WIM right by one
    sll %l3, {nwindows - 1}, %l4
    srl %l3, 1, %l3
    or  %l3, %l4, %l3
    set {mask}, %l5
    and %l3, %l5, %l3
    mov %g0, %wim                    ! disable WIM traps while we move
    nop
    nop
    nop
    save                             ! step into the window to be spilled
    std %l0, [%sp + 0]               ! spill locals + ins to its frame
    std %l2, [%sp + 8]
    std %l4, [%sp + 16]
    std %l6, [%sp + 24]
    std %i0, [%sp + 32]
    std %i2, [%sp + 40]
    std %i4, [%sp + 48]
    std %i6, [%sp + 56]
    restore                          ! back to the trap window
    mov %l3, %wim                    ! install the rotated WIM
    nop
    nop
    nop
    jmpl %l1, %g0                    ! re-execute the trapped SAVE
    rett %l2

! ---- window underflow: RESTORE from an invalid window --------------------
window_underflow:
    mov %wim, %l3                    ! rotate WIM left by one
    srl %l3, {nwindows - 1}, %l4
    sll %l3, 1, %l3
    or  %l3, %l4, %l3
    set {mask}, %l5
    and %l3, %l5, %l3
    mov %g0, %wim                    ! disable WIM traps while we move
    nop
    nop
    nop
    restore                          ! to the window that trapped
    restore                          ! into the window to refill
    ldd [%sp + 0], %l0
    ldd [%sp + 8], %l2
    ldd [%sp + 16], %l4
    ldd [%sp + 24], %l6
    ldd [%sp + 32], %i0
    ldd [%sp + 40], %i2
    ldd [%sp + 48], %i4
    ldd [%sp + 56], %i6
    save
    save                             ! back to the trap window
    mov %l3, %wim                    ! install the rotated WIM
    nop
    nop
    nop
    jmpl %l1, %g0                    ! re-execute the trapped RESTORE
    rett %l2
"""


def modified_boot_source(memmap: MemoryMap, nwindows: int = 8) -> str:
    """The paper's modified boot code: poll the mailbox instead of the UART.

    Compare Figure 5, right-hand column: *set config registers; set up
    dedicated SRAM space; CheckReady: flush; ld [reg] ProgAddr; cmp 0;
    be CheckReady; nop; jmp reg*.
    """
    psr_run = 0xE0  # S | PS | ET, PIL = 0, CWP = 0
    return (
        _trap_table_source()
        + f"""
! ---- boot entry (reset trap) ---------------------------------------------
boot_start:
    wr %g0, 0x{psr_run ^ 0x20:x}, %psr   ! S|PS, traps still off, CWP=0
    nop
    nop
    nop
    wr %g0, 2, %wim                  ! window 1 is the invalid buffer
    nop
    nop
    nop
    set {memmap.stack_top}, %sp      ! set up dedicated SRAM space
    set {memmap.stack_top - 96}, %fp
    wr %g0, 0x{psr_run:x}, %psr      ! enable traps
    nop
    nop
    nop

! ---- CheckReady: wait for Go (Figure 5) -----------------------------------
check_ready:
    flush                            ! Leon flush: see mailbox writes
    set {memmap.mailbox_start}, %g1
    ld [%g1], %g2                    ! ld reg ProgAddr
    cmp %g2, 0                       ! cmp 0 reg
    be check_ready                   ! be CheckReady
    nop
    jmp %g2                          ! begin the user's program
    nop

! ---- ta 0: program-exit syscall -------------------------------------------
syscall_exit:
    set check_ready, %l3             ! return into the polling loop
    jmpl %l3, %g0
    rett %l3 + 4

! ---- error state (hardware-debug hook, paper 4.1) -------------------------
error_state:
    ba error_state
    nop
"""
        + _window_handlers(nwindows)
    )


def original_boot_source(memmap: MemoryMap, nwindows: int = 8) -> str:
    """The stock LEON boot code: wait for a UART event (Figure 5, left).

    Kept for fidelity and for the regression test showing *why* the
    modification was needed: without a UART sender this loop never exits.
    """
    from repro.mem.memmap import APB_BASE, UART_OFFSET

    psr_run = 0xE0
    uart_status = APB_BASE + UART_OFFSET + 4
    return (
        _trap_table_source()
        + f"""
boot_start:
    wr %g0, 0x{psr_run ^ 0x20:x}, %psr
    nop
    nop
    nop
    wr %g0, 2, %wim
    nop
    nop
    nop
    set {memmap.stack_top}, %sp
    wr %g0, 0x{psr_run:x}, %psr
    nop
    nop
    nop
load_wait:
    set {uart_status}, %g1           ! Load: wait for UART event
    ld [%g1], %g2                    ! ld reg value
    btst 1, %g2                      ! btst 1 reg
    be load_wait                     ! be Load
    nop
check_ready:                         ! (unreachable without UART traffic)
    ba check_ready
    nop
syscall_exit:
    ba syscall_exit
    nop
error_state:
    ba error_state
    nop
"""
        + _window_handlers(nwindows)
    )


def build_boot_rom(memmap: MemoryMap | None = None, nwindows: int = 8,
                   modified: bool = True) -> BootRomInfo:
    """Assemble the boot PROM image at the PROM base.

    Memoised: the source depends only on the (hashable) memory map and
    the window count, and assembling the ~1000-line trap table dominates
    Simulator construction — which the differential test suite does
    hundreds of times per run.  Callers must treat the returned
    :class:`BootRomInfo` (including ``symbols``) as immutable.
    """
    return _build_boot_rom_cached(memmap or MemoryMap(), nwindows, modified)


@lru_cache(maxsize=32)
def _build_boot_rom_cached(memmap: MemoryMap, nwindows: int,
                           modified: bool) -> BootRomInfo:
    source = (modified_boot_source if modified else original_boot_source)(
        memmap, nwindows)
    obj = assemble(source, "bootrom.s")
    script = MemoryMapScript(placements={".text": memmap.prom_base})
    image = Linker(script).link([obj], entry_symbol="_trap_table")
    base, blob = image.flatten()
    assert base == memmap.prom_base
    return BootRomInfo(
        image=blob,
        poll_address=image.symbols["check_ready"],
        error_address=image.symbols["error_state"],
        boot_start=image.symbols["boot_start"],
        symbols=dict(image.symbols),
    )


class BootRom:
    """Read-only AHB slave holding the PROM image."""

    def __init__(self, base: int, size: int, image: bytes,
                 wait_states: int = 0):
        if len(image) > size:
            raise ValueError("boot image larger than PROM")
        self.base = base
        self.size = size
        self.data = bytearray(size)
        self.data[:len(image)] = image
        self.wait_states = wait_states

    def read(self, address: int, size: int) -> tuple[int, int]:
        offset = address - self.base
        if offset < 0 or offset + size > self.size:
            raise BusError(address, "outside PROM")
        return int.from_bytes(self.data[offset:offset + size], "big"), \
            self.wait_states

    def write(self, address: int, size: int, value: int) -> int:
        raise BusError(address, "PROM is read-only")

    def read_burst(self, address: int, nwords: int) -> tuple[list[int], int]:
        words = []
        for i in range(nwords):
            word, _ = self.read(address + 4 * i, 4)
            words.append(word)
        return words, self.wait_states * nwords
