"""Memory substrate: memory map, SRAM/SDRAM models, AHB adapter, boot ROM."""

from repro.mem.interface import BusError, FlatMemory, MemoryPort

__all__ = ["BusError", "FlatMemory", "MemoryPort"]
