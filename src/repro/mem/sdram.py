"""FPX SDRAM controller model (Dharmapurikar & Lockwood, WUCS-01-26).

The paper replaces LEON's bundled memory controller with the FPX SDRAM
controller because it is 64-bit wide, supports sequential read/write
bursts, and offers an *arbitrated* interface with up to three request
modules (so the LEON processor and the network components share the
SDRAM).  This model reproduces those properties at transaction level:

* data path is 64 bits — all requests are in 64-bit beats;
* every request pays a handshake + RAS/CAS latency, then one cycle per
  beat (plus a row-miss penalty when the burst opens a new row);
* a round-robin arbiter over up to three ports adds grant latency when
  another port used the controller in the immediately preceding window.

The 32-bit AHB world talks to this through
:class:`repro.mem.adapter.AhbSdramAdapter` — the bridge whose design
trade-offs §3.2 of the paper describes and which
``benchmarks/bench_sdram_adapter.py`` ablates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.interface import BusError
from repro.utils import u64

MAX_PORTS = 3
MAX_BURST_BEATS = 64  # the controller supports bursts "up to <n> 64-bit words"


@dataclass(frozen=True)
class SdramTiming:
    """Cycle costs of the FPX SDRAM controller's handshake protocol."""

    handshake_cycles: int = 2   # request/grant exchange with the controller
    cas_latency: int = 3        # column access before the first beat
    cycles_per_beat: int = 1    # 64 bits per cycle once streaming
    row_miss_penalty: int = 4   # precharge + activate on a new row
    row_size: int = 2048        # bytes per open row (per bank model)
    arbitration_cycles: int = 1  # grant latency when switching ports


class SdramPort:
    """One of the (up to three) request modules on the arbiter."""

    def __init__(self, controller: "FpxSdramController", port_id: int,
                 name: str):
        self.controller = controller
        self.port_id = port_id
        self.name = name
        self.requests = 0

    def read_burst(self, address: int, beats: int) -> tuple[list[int], int]:
        """Sequential read of *beats* 64-bit words; returns (values, cycles)."""
        self.requests += 1
        return self.controller._read_burst(self.port_id, address, beats)

    def write_burst(self, address: int, values: list[int]) -> int:
        self.requests += 1
        return self.controller._write_burst(self.port_id, address, values)


class FpxSdramController:
    """64-bit, 3-port arbitrated SDRAM controller."""

    def __init__(self, base: int, size: int,
                 timing: SdramTiming | None = None):
        if size % 8:
            raise ValueError("SDRAM size must be a multiple of 8 bytes")
        self.base = base
        self.size = size
        self.timing = timing or SdramTiming()
        self.data = bytearray(size)
        self._ports: list[SdramPort] = []
        self._last_port: int | None = None
        self._open_row: int | None = None
        self.total_handshakes = 0
        self.total_beats = 0
        self.row_misses = 0
        self.arbitration_switches = 0

    # -- topology -----------------------------------------------------------

    def connect(self, name: str) -> SdramPort:
        """Register a request module; the FPX controller supports three."""
        if len(self._ports) >= MAX_PORTS:
            raise ValueError("FPX SDRAM controller supports at most "
                             f"{MAX_PORTS} request modules")
        port = SdramPort(self, len(self._ports), name)
        self._ports.append(port)
        return port

    # -- internals -----------------------------------------------------------

    def _offset(self, address: int, length: int) -> int:
        if address % 8:
            raise BusError(address, "SDRAM requests must be 64-bit aligned")
        offset = address - self.base
        if offset < 0 or offset + length > self.size:
            raise BusError(address, "outside SDRAM")
        return offset

    def _access_cost(self, port_id: int, address: int, beats: int) -> int:
        timing = self.timing
        cycles = timing.handshake_cycles + timing.cas_latency \
            + beats * timing.cycles_per_beat
        self.total_handshakes += 1
        self.total_beats += beats
        if self._last_port is not None and self._last_port != port_id:
            cycles += timing.arbitration_cycles
            self.arbitration_switches += 1
        self._last_port = port_id
        row = (address - self.base) // timing.row_size
        if row != self._open_row:
            cycles += timing.row_miss_penalty
            self.row_misses += 1
            self._open_row = row
        return cycles

    def _read_burst(self, port_id: int, address: int,
                    beats: int) -> tuple[list[int], int]:
        if not 1 <= beats <= MAX_BURST_BEATS:
            raise ValueError(f"burst of {beats} beats unsupported")
        offset = self._offset(address, beats * 8)
        cycles = self._access_cost(port_id, address, beats)
        values = [
            int.from_bytes(self.data[offset + 8 * i:offset + 8 * i + 8], "big")
            for i in range(beats)
        ]
        return values, cycles

    def _write_burst(self, port_id: int, address: int,
                     values: list[int]) -> int:
        beats = len(values)
        if not 1 <= beats <= MAX_BURST_BEATS:
            raise ValueError(f"burst of {beats} beats unsupported")
        offset = self._offset(address, beats * 8)
        cycles = self._access_cost(port_id, address, beats)
        for i, value in enumerate(values):
            self.data[offset + 8 * i:offset + 8 * i + 8] = \
                u64(value).to_bytes(8, "big")
        return cycles

    # -- host-side helpers (tests, DMA models) ---------------------------------

    def host_write(self, address: int, blob: bytes) -> None:
        offset = address - self.base
        if offset < 0 or offset + len(blob) > self.size:
            raise BusError(address, "outside SDRAM")
        self.data[offset:offset + len(blob)] = blob

    def host_read(self, address: int, length: int) -> bytes:
        offset = address - self.base
        if offset < 0 or offset + length > self.size:
            raise BusError(address, "outside SDRAM")
        return bytes(self.data[offset:offset + length])

    def stats(self) -> dict:
        return {
            "handshakes": self.total_handshakes,
            "beats": self.total_beats,
            "row_misses": self.row_misses,
            "arbitration_switches": self.arbitration_switches,
            "ports": [port.name for port in self._ports],
        }
