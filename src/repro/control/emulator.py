"""Hardware emulator — the paper's "Java Emulator of the H/W (for
debugging)" from Figure 4.

A behavioural stand-in for the whole FPX node that speaks the same
IP/UDP control protocol: it stores loaded program bytes, answers status
and read-memory requests, and pretends programs complete instantly with
a configurable fake cycle count.  The control software was developed
against exactly such an emulator before the hardware existed; our tests
use it the same way (protocol tests that don't need the CPU) and to
check that the emulator and the real platform are protocol-compatible.
"""

from __future__ import annotations

from repro.fpx.wrappers import LayeredProtocolWrappers
from repro.net import protocol
from repro.net.packets import build_udp_packet
from repro.net.protocol import (
    LeonState,
    LoadChunk,
    ProgramAssembler,
    ReadRequest,
    RestartRequest,
    StartRequest,
    StatusRequest,
)


class HardwareEmulator:
    """Duck-type compatible with :class:`~repro.fpx.platform.FPXPlatform`
    for everything a transport touches."""

    def __init__(self, device_ip: str, control_port: int,
                 fake_cycles: int = 123456, memory_size: int = 1 << 21,
                 memory_base: int = 0x4000_0000):
        self.wrappers = LayeredProtocolWrappers.for_address(device_ip)
        self.control_port = control_port
        self.fake_cycles = fake_cycles
        self.memory = bytearray(memory_size)
        self.memory_base = memory_base
        self.state = LeonState.POLLING
        self.assembler = ProgramAssembler()
        self.loaded_base: int | None = None
        self.tx_frames: list[bytes] = []
        self._requester: tuple[int, int] | None = None
        self._reply_tag: int | None = None

    # -- device interface ----------------------------------------------------

    def inject_frame(self, frame: bytes) -> None:
        unwrapped = self.wrappers.unwrap(frame)
        if unwrapped is None or unwrapped.dst_port != self.control_port:
            return
        self._requester = (unwrapped.src_ip, unwrapped.src_port)
        self._reply_tag = None
        try:
            command, self._reply_tag = protocol.decode_command_tagged(
                unwrapped.payload)
        except protocol.ProtocolError as exc:
            self._reply(protocol.encode_error(0x10, str(exc)))
            return
        self._execute(command)

    def take_tx_frames(self) -> list[bytes]:
        frames, self.tx_frames = self.tx_frames, []
        return frames

    def step(self, instructions: int = 1) -> int:
        return 0  # nothing to clock

    def run_until(self, states, max_instructions: int = 0) -> LeonState:
        return self.state

    # -- behaviour ------------------------------------------------------------

    def _execute(self, command) -> None:
        if isinstance(command, StatusRequest):
            cycles = self.fake_cycles if self.state == LeonState.DONE else 0
            self._reply(protocol.encode_status_response(self.state, cycles))
        elif isinstance(command, RestartRequest):
            self.state = LeonState.POLLING
            self.assembler.reset()
            self.loaded_base = None
            self._reply(protocol.encode_restarted())
        elif isinstance(command, LoadChunk):
            if self.state in (LeonState.POLLING, LeonState.DONE):
                self.state = LeonState.LOADING
                self.assembler.reset()
            self.assembler.add(command)
            offset = command.address - self.memory_base
            if 0 <= offset <= len(self.memory) - len(command.data):
                self.memory[offset:offset + len(command.data)] = command.data
            if self.assembler.complete:
                self.loaded_base = self.assembler.base_address()
            self._reply(protocol.encode_load_ack(self.assembler.received,
                                                 self.assembler.total or 0,
                                                 self.assembler.missing()))
        elif isinstance(command, StartRequest):
            entry = command.entry or self.loaded_base
            if entry is None:
                self._reply(protocol.encode_error(0x11, "nothing loaded"))
                return
            # The emulator "runs" the program instantaneously.
            self.state = LeonState.DONE
            self._reply(protocol.encode_started(entry))
        elif isinstance(command, ReadRequest):
            offset = command.address - self.memory_base
            if 0 <= offset <= len(self.memory) - command.length:
                data = bytes(self.memory[offset:offset + command.length])
                self._reply(protocol.encode_memory_data(command.address, data))
            else:
                self._reply(protocol.encode_error(
                    0x12, f"bad address 0x{command.address:08x}"))

    def _reply(self, payload: bytes) -> None:
        if self._requester is None:
            return
        # Echo the request tag so the client can match this response to
        # the exact request that solicited it (untagged requests get the
        # seed-format untagged reply).
        if self._reply_tag is not None:
            payload = protocol.tag_payload(payload, self._reply_tag)
        ip, port = self._requester
        self.tx_frames.append(
            build_udp_packet(self.wrappers.device_ip, ip, self.control_port,
                             port, payload))
