"""Web-interface analogue of the paper's Java servlet (Figure 4).

"A web interface is provided for the user to submit a request.  This
request is received by a Java servlet running on an Apache TomCat
server."  Here :class:`ControlServlet` is a request dispatcher: it takes
form-style dicts (``{"action": "load", "file": ..., ...}``), performs the
command through a :class:`~repro.control.client.LiquidClient`, and
returns the text page the browser would have shown.  There is no HTTP
machinery on purpose — the servlet's *behaviour* is what the paper
describes, and that is what tests exercise.
"""

from __future__ import annotations

import binascii

from repro.control.client import ControlTimeout, DeviceError, LiquidClient


class ControlServlet:
    ACTIONS = ("status", "load", "start", "read", "restart", "console")

    def __init__(self, client: LiquidClient):
        self.client = client
        self.requests_served = 0

    def handle_request(self, form: dict) -> str:
        """Dispatch one form submission; returns the response page text."""
        self.requests_served += 1
        action = form.get("action", "")
        if action not in self.ACTIONS:
            return f"400 unknown action '{action}'"
        try:
            return getattr(self, f"_do_{action}")(form)
        except DeviceError as exc:
            return f"502 device error: {exc}"
        except ControlTimeout as exc:
            return f"504 timeout: {exc}"
        except (KeyError, ValueError) as exc:
            return f"400 bad request: {exc}"

    # -- actions ------------------------------------------------------------

    def _do_status(self, form: dict) -> str:
        status = self.client.status()
        return (f"200 LEON status: {status.state.name}, "
                f"cycle counter {status.cycles}")

    def _do_load(self, form: dict) -> str:
        base = int(form["address"], 0)
        blob = binascii.unhexlify(form["hex"])
        chunk = int(form.get("chunk", "128"), 0)
        transmissions = self.client.load_binary(base, blob, chunk)
        return (f"200 loaded {len(blob)} bytes at 0x{base:08x} "
                f"({transmissions} packets)")

    def _do_start(self, form: dict) -> str:
        entry = int(form.get("entry", "0"), 0)
        started = self.client.start(entry)
        self.client.transport.run_device_program()
        return f"200 started at 0x{started.entry:08x}"

    def _do_read(self, form: dict) -> str:
        address = int(form["address"], 0)
        length = int(form.get("length", "4"), 0)
        data = self.client.read_memory(address, length)
        return f"200 memory[0x{address:08x}] = {data.hex()}"

    def _do_restart(self, form: dict) -> str:
        self.client.restart()
        return "200 restarted"

    def _do_console(self, form: dict) -> str:
        lines = self.client.listener.console_lines()
        return "200 console:\n" + "\n".join(lines[-50:])
