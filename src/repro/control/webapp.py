"""Web-interface analogue of the paper's Java servlet (Figure 4).

"A web interface is provided for the user to submit a request.  This
request is received by a Java servlet running on an Apache TomCat
server."  Here :class:`ControlServlet` is a request dispatcher: it takes
form-style dicts (``{"action": "load", "file": ..., ...}``), performs the
command through a :class:`~repro.control.client.LiquidClient`, and
returns the text page the browser would have shown.  There is no HTTP
machinery on purpose — the servlet's *behaviour* is what the paper
describes, and that is what tests exercise.

The servlet grew fleet-aware dispatch alongside the original
single-device commands: constructed with a
:class:`~repro.control.fleet.FleetScheduler`, the ``submit`` / ``fleet``
/ ``drain`` / ``results`` actions queue load-and-execute jobs for named
tenants, run the fleet, and render per-tenant results — the
multi-tenant form of the paper's web form → servlet → UDP → FPX path.
"""

from __future__ import annotations

import binascii

from repro.control.client import ControlTimeout, DeviceError, LiquidClient


class ControlServlet:
    #: Single-device actions, served through ``client``.
    DEVICE_ACTIONS = ("status", "load", "start", "read", "restart", "console")
    #: Multi-tenant actions, served through ``fleet``.
    FLEET_ACTIONS = ("submit", "fleet", "drain", "results")
    ACTIONS = DEVICE_ACTIONS + FLEET_ACTIONS

    def __init__(self, client: LiquidClient | None = None, fleet=None):
        self.client = client
        self.fleet = fleet
        self.requests_served = 0

    def handle_request(self, form: dict) -> str:
        """Dispatch one form submission; returns the response page text."""
        self.requests_served += 1
        action = form.get("action", "")
        if action not in self.ACTIONS:
            return f"400 unknown action '{action}'"
        if action in self.DEVICE_ACTIONS and self.client is None:
            return f"503 no device attached for action '{action}'"
        if action in self.FLEET_ACTIONS and self.fleet is None:
            return f"503 no fleet attached for action '{action}'"
        try:
            return getattr(self, f"_do_{action}")(form)
        except DeviceError as exc:
            return f"502 device error: {exc}"
        except ControlTimeout as exc:
            return f"504 timeout: {exc}"
        except (KeyError, ValueError) as exc:
            return f"400 bad request: {exc}"

    # -- single-device actions ----------------------------------------------

    def _do_status(self, form: dict) -> str:
        status = self.client.status()
        return (f"200 LEON status: {status.state.name}, "
                f"cycle counter {status.cycles}")

    def _do_load(self, form: dict) -> str:
        base = int(form["address"], 0)
        blob = binascii.unhexlify(form["hex"])
        chunk = int(form.get("chunk", "128"), 0)
        transmissions = self.client.load_binary(base, blob, chunk)
        return (f"200 loaded {len(blob)} bytes at 0x{base:08x} "
                f"({transmissions} packets)")

    def _do_start(self, form: dict) -> str:
        entry = int(form.get("entry", "0"), 0)
        started = self.client.start(entry)
        self.client.transport.run_device_program()
        return f"200 started at 0x{started.entry:08x}"

    def _do_read(self, form: dict) -> str:
        address = int(form["address"], 0)
        length = int(form.get("length", "4"), 0)
        data = self.client.read_memory(address, length)
        return f"200 memory[0x{address:08x}] = {data.hex()}"

    def _do_restart(self, form: dict) -> str:
        self.client.restart()
        return "200 restarted"

    def _do_console(self, form: dict) -> str:
        lines = self.client.listener.console_lines()
        return "200 console:\n" + "\n".join(lines[-50:])

    # -- fleet actions -------------------------------------------------------

    def _do_submit(self, form: dict) -> str:
        """Queue one load-and-execute job: tenant + flat binary (hex at
        an address) + optional entry/priority/dcache_size."""
        from repro.core.config import BASELINE
        from repro.core.recon_server import Job
        from repro.toolchain.objfile import Image

        tenant = form.get("tenant") or "anonymous"
        base = int(form["address"], 0)
        blob = binascii.unhexlify(form["hex"])
        entry = int(form.get("entry", form["address"]), 0)
        priority = int(form.get("priority", "0"))
        config = BASELINE
        if "dcache_size" in form:
            config = config.with_dcache_size(int(form["dcache_size"], 0))
        name = form.get("name", f"web-{self.fleet.jobs_submitted}")
        job = Job(image=Image(segments={base: blob}, symbols={},
                              entry=entry),
                  config=config, name=name)
        fleet_job = self.fleet.submit(tenant, job, priority=priority)
        return (f"202 queued job '{name}' for tenant '{tenant}' "
                f"(sequence {fleet_job.sequence}, priority {priority})")

    def _do_fleet(self, form: dict) -> str:
        depths = self.fleet.queue_depths()
        lines = [f"queued jobs: {sum(depths.values())}"]
        for tenant in sorted(depths):
            lines.append(f"  tenant {tenant}: {depths[tenant]} queued, "
                         f"{len(self.fleet.latencies.get(tenant, []))} done")
        for device in self.fleet.devices:
            state = "QUARANTINED" if device.quarantined else "HEALTHY"
            lines.append(
                f"  device {device.device_id}: {state}, "
                f"{device.jobs_completed} jobs, "
                f"{device.failures} failures, "
                f"clock {device.clock:.3f}s")
        return "200 fleet:\n" + "\n".join(lines)

    def _do_drain(self, form: dict) -> str:
        results = self.fleet.drain()
        ok = sum(1 for r in results if r.result.ok)
        return (f"200 drained: {ok} completed, "
                f"{len(results) - ok} failed, "
                f"makespan {self.fleet.makespan_seconds:.3f}s")

    def _do_results(self, form: dict) -> str:
        tenant = form.get("tenant")
        rows = [r for r in self.fleet.completed
                if tenant is None or r.tenant == tenant]
        lines = [
            f"  {r.tenant}/{r.result.name}: "
            + (f"result 0x{r.result.result_word:08x}, "
               f"{r.result.cycles} cycles"
               if r.result.ok else f"FAILED ({r.result.error})")
            + f" on {r.device} after {r.attempts} attempt(s)"
            for r in rows
        ]
        return f"200 results ({len(rows)}):\n" + "\n".join(lines)
