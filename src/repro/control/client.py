"""LiquidClient: the user-facing control software (paper §2.6, Figure 4).

Provides the four-plus-one commands of the web interface — LEON status,
Load program (multi-packet with retransmission of lost chunks), Start
LEON, Read memory, Restart — over any transport.  A
:class:`~repro.control.listener.ResponseListener` records every response
as the dedicated listener thread of the paper's control server did.

Reliability note: the paper's protocol is fire-and-forget UDP with a
human watching the console.  The client layers a simple
send/ack/retransmit loop on top so that program loading succeeds over
lossy channels; retries resend only the chunks the device reports
missing (LOAD_ACK carries a backwards-compatible missing-sequence
list), not the full payload set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.listener import ResponseListener
from repro.net import protocol
from repro.net.protocol import (
    ErrorResponse,
    LoadAck,
    MemoryData,
    Restarted,
    Started,
    StatusResponse,
    TraceData,
)
from repro.toolchain.objfile import Image


class ControlTimeout(Exception):
    """No (matching) response arrived within the retry budget."""


class DeviceError(Exception):
    """The device answered with an ERROR response."""

    def __init__(self, response: ErrorResponse):
        self.response = response
        super().__init__(f"device error 0x{response.code:02x}: "
                         f"{response.message}")


@dataclass
class RunResult:
    """Outcome of :meth:`LiquidClient.run_image`."""

    entry: int
    cycles: int
    result_word: int | None


class LiquidClient:
    def __init__(self, transport, listener: ResponseListener | None = None,
                 max_retries: int = 8, poll_rounds: int = 64):
        self.transport = transport
        self.listener = listener or ResponseListener()
        self.max_retries = max_retries
        self.poll_rounds = poll_rounds

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _collect(self) -> list:
        responses = []
        for payload in self.transport.poll():
            try:
                response = protocol.decode_response(payload)
            except protocol.ProtocolError:
                continue
            self.listener.record(response)
            responses.append(response)
        return responses

    def _request(self, payload: bytes, want: type, *,
                 predicate=None, allow_error: bool = False):
        """Send *payload* until a response of type *want* arrives."""
        for _ in range(self.max_retries):
            self.transport.send(payload)
            for _ in range(self.poll_rounds):
                for response in self._collect():
                    if isinstance(response, ErrorResponse) and not allow_error:
                        raise DeviceError(response)
                    if isinstance(response, want) and (
                            predicate is None or predicate(response)):
                        return response
                self.transport.idle_device()
        raise ControlTimeout(f"no {want.__name__} response after "
                             f"{self.max_retries} retries")

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def status(self) -> StatusResponse:
        return self._request(protocol.encode_status_request(), StatusResponse)

    def restart(self) -> Restarted:
        # One restarts *because* something went wrong; stale error
        # packets from the crashed program must not abort the recovery.
        return self._request(protocol.encode_restart(), Restarted,
                             allow_error=True)

    def load_binary(self, base: int, blob: bytes,
                    chunk: int = protocol.DEFAULT_CHUNK) -> int:
        """Load a flat binary; returns the number of chunk payloads
        transmitted (including retransmissions).

        Each round sends only the chunks still unacknowledged: acks
        carry the device's reassembly progress and its missing-sequence
        list, so a retry retransmits the lost chunks instead of the full
        payload set.  The count is taken from the transport's own send
        counter, so every wire transmission — including retries — is
        reported.
        """
        payloads = protocol.packetize_program(base, blob, chunk)
        total = len(payloads)
        sent_before = self.transport.sent_payloads
        pending = list(range(total))
        for _ in range(self.max_retries):
            for seq in pending:
                self.transport.send(payloads[seq])
            # Poll for acks; every chunk solicits one, so no separate
            # nudge packet is needed.  Track the most advanced ack of
            # the round — early acks still list chunks that arrive
            # moments later.
            best: LoadAck | None = None
            for _ in range(self.poll_rounds):
                for response in self._collect():
                    if isinstance(response, ErrorResponse):
                        raise DeviceError(response)
                    if isinstance(response, LoadAck) \
                            and response.total == total:
                        if best is None or response.received > best.received:
                            best = response
                if best is not None and best.received >= total:
                    return self.transport.sent_payloads - sent_before
                self.transport.idle_device()
            if best is not None and best.missing:
                pending = sorted(seq for seq in set(best.missing)
                                 if seq < total)
            # else: no ack at all (the whole round was lost) or a
            # count-only ack from a seed-format device — resend the
            # current pending set unchanged.
        raise ControlTimeout(f"program load incomplete after "
                             f"{self.max_retries} attempts")

    def load_image(self, image: Image,
                   chunk: int = protocol.DEFAULT_CHUNK) -> int:
        base, blob = image.flatten()
        return self.load_binary(base, blob, chunk)

    def start(self, entry: int = 0) -> Started:
        return self._request(protocol.encode_start(entry), Started)

    def read_memory(self, address: int, length: int = 4) -> bytes:
        response = self._request(
            protocol.encode_read_memory(address, length), MemoryData,
            predicate=lambda r: r.address == address)
        return response.data

    def read_word(self, address: int) -> int:
        return int.from_bytes(self.read_memory(address, 4), "big")

    def fetch_trace(self, chunk: int = 512):
        """Stream the instrumented memory trace off the device (Fig 1:
        "the streaming of instrumented traces to the Trace Analyzer").

        Returns a :class:`repro.analysis.trace.MemoryTrace`.
        """
        from repro.analysis.trace import MemoryTrace

        blob = bytearray()
        offset = 0
        while True:
            response = self._request(
                protocol.encode_read_trace(offset, chunk), TraceData,
                predicate=lambda r: r.offset == offset)
            blob += response.data
            offset += len(response.data)
            if offset >= response.total or not response.data:
                break
        return MemoryTrace.from_bytes(bytes(blob))

    # ------------------------------------------------------------------
    # Composite flows
    # ------------------------------------------------------------------

    def run_image(self, image: Image, result_addr: int | None = None,
                  entry: int = 0,
                  max_instructions: int = 50_000_000) -> RunResult:
        """The full §2.6 flow: load → start → wait → read result/cycles."""
        self.load_image(image)
        started = self.start(entry)
        self.transport.run_device_program(max_instructions)
        status = self.status()
        result_word = None
        if result_addr is not None:
            result_word = self.read_word(result_addr)
        return RunResult(entry=started.entry, cycles=status.cycles,
                         result_word=result_word)
