"""LiquidClient: the user-facing control software (paper §2.6, Figure 4).

Provides the four-plus-one commands of the web interface — LEON status,
Load program (multi-packet with retransmission of lost chunks), Start
LEON, Read memory, Restart — over any transport.  A
:class:`~repro.control.listener.ResponseListener` records every response
as the dedicated listener thread of the paper's control server did.

Reliability note: the paper's protocol is fire-and-forget UDP with a
human watching the console.  The client layers a reliable-request
discipline on top so every command survives the open-Internet channel:

* every request carries a sequence-number tag the device echoes back
  (:func:`repro.net.protocol.tag_payload`; untagged seed devices keep
  working — their responses simply come back untagged);
* responses tagged for an earlier request are suppressed instead of
  satisfying the current one (a stale ``StatusResponse`` from a
  previous command can no longer alias a new request), and duplicates
  of already-answered requests are counted and dropped;
* retries follow per-command :class:`RetryPolicy` budgets with
  exponential backoff measured in delivery rounds, replacing the old
  fixed ``max_retries × poll_rounds`` grid;
* program loading retransmits only the chunks the device reports
  missing (LOAD_ACK carries a backwards-compatible missing-sequence
  list), not the full payload set.

Reliability accounting (retries, suppressed stale/duplicate responses,
backoff rounds, timeouts) lives in native integer counters, folded into
a :class:`repro.obs.MetricsRegistry` by
:func:`repro.obs.collect.collect_client` / :meth:`LiquidClient.publish_obs`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.control.listener import ResponseListener
from repro.net import protocol
from repro.net.protocol import (
    ErrorResponse,
    LoadAck,
    MemoryData,
    Restarted,
    Started,
    StatusResponse,
    TraceData,
)
from repro.toolchain.objfile import Image


class ControlTimeout(Exception):
    """No (matching) response arrived within the retry budget."""


class DeviceError(Exception):
    """The device answered with an ERROR response."""

    def __init__(self, response: ErrorResponse):
        self.response = response
        super().__init__(f"device error 0x{response.code:02x}: "
                         f"{response.message}")


@dataclass
class RunResult:
    """Outcome of :meth:`LiquidClient.run_image`."""

    entry: int
    cycles: int
    result_word: int | None


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout budget for one command class.

    Time is measured in *delivery rounds* (one ``transport.poll`` plus
    an ``idle_device`` nudge), the only clock a deterministic transport
    has.  Attempt *n* polls ``poll_rounds * backoff**n`` rounds, capped
    at ``max_poll_rounds``, before retransmitting — exponential backoff
    so a congested channel is not hammered with retries.
    """

    attempts: int = 8
    poll_rounds: int = 8
    backoff: float = 2.0
    max_poll_rounds: int = 64

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.poll_rounds < 1:
            raise ValueError("poll_rounds must be >= 1")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_poll_rounds < self.poll_rounds:
            raise ValueError("max_poll_rounds must be >= poll_rounds")

    def rounds_for(self, attempt: int) -> int:
        """Delivery rounds to poll during 0-based attempt number."""
        return min(int(self.poll_rounds * self.backoff ** attempt),
                   self.max_poll_rounds)


#: How many answered request tags to remember for duplicate detection.
_COMPLETED_WINDOW = 256


class LiquidClient:
    def __init__(self, transport, listener: ResponseListener | None = None,
                 max_retries: int = 8, poll_rounds: int = 64,
                 policies: dict[str, RetryPolicy] | None = None):
        self.transport = transport
        self.listener = listener or ResponseListener()
        self.max_retries = max_retries
        self.poll_rounds = poll_rounds
        # max_retries/poll_rounds seed the default per-command policies
        # (kept as constructor args for seed-era callers); `policies`
        # overrides individual commands.
        base = RetryPolicy(attempts=max_retries,
                           poll_rounds=min(8, poll_rounds),
                           max_poll_rounds=poll_rounds)
        self.base_policy = base
        self.policies: dict[str, RetryPolicy] = {
            # Loads solicit one ack per chunk; give each attempt a
            # longer first window so a full round of acks can land.
            "load": replace(base, poll_rounds=min(16, poll_rounds)),
        }
        if policies:
            self.policies.update(policies)
        # -- reliability accounting (native ints; see publish_obs) -----
        self.retries = 0
        self.retries_by_command: dict[str, int] = {}
        self.stale_suppressed = 0
        self.duplicates_suppressed = 0
        self.backoff_rounds = 0
        self.timeouts = 0
        # -- request-tag state -----------------------------------------
        self._seq = 0
        self._tags_confirmed = False
        self._completed: set[int] = set()
        self._completed_order: deque[int] = deque()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def policy_for(self, command: str) -> RetryPolicy:
        return self.policies.get(command, self.base_policy)

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & protocol.MAX_TAG_SEQ
        return self._seq

    def _mark_completed(self, *seqs: int) -> None:
        for seq in seqs:
            if seq in self._completed:
                continue
            self._completed.add(seq)
            self._completed_order.append(seq)
            if len(self._completed_order) > _COMPLETED_WINDOW:
                self._completed.discard(self._completed_order.popleft())

    def _collect(self) -> list:
        """Poll the transport; returns decodable (response, tag) pairs.
        Every response is recorded on the listener console, suppressed
        or not — the operator sees everything that arrived."""
        responses = []
        for payload in self.transport.poll():
            try:
                response, tag = protocol.decode_response_tagged(payload)
            except protocol.ProtocolError:
                continue
            if tag is not None:
                # The device echoes tags: from here on, untagged
                # responses cannot be answers to tagged requests.
                self._tags_confirmed = True
            self.listener.record(response)
            responses.append((response, tag))
        return responses

    def _admit(self, response, tag: int | None, active: set[int]) -> bool:
        """Should *response* be considered an answer to the in-flight
        request(s) tagged with *active* sequence numbers?

        Suppressed responses are counted: a tag for an already-answered
        request is a duplicate, any other mismatch is stale.  Untagged
        responses are admitted only while the device has not yet proven
        it echoes tags (seed-device compatibility) — except errors,
        which may be unsolicited crash notifications and must surface.
        """
        if tag is None:
            if isinstance(response, ErrorResponse):
                return True
            if self._tags_confirmed:
                self.stale_suppressed += 1
                return False
            return True
        if tag in active:
            return True
        if tag in self._completed:
            self.duplicates_suppressed += 1
        else:
            self.stale_suppressed += 1
        return False

    def _request(self, payload: bytes, want: type, *,
                 predicate=None, allow_error: bool = False,
                 command: str = "request"):
        """Send *payload* until a response of type *want* arrives,
        following the command's retry policy."""
        policy = self.policy_for(command)
        seq = self._next_seq()
        wire = protocol.tag_payload(payload, seq)
        active = {seq}
        for attempt in range(policy.attempts):
            if attempt:
                self.retries += 1
                self.retries_by_command[command] = \
                    self.retries_by_command.get(command, 0) + 1
            rounds = policy.rounds_for(attempt)
            if attempt:
                self.backoff_rounds += rounds - policy.rounds_for(0)
            self.transport.send(wire)
            for _ in range(rounds):
                for response, tag in self._collect():
                    if not self._admit(response, tag, active):
                        continue
                    if isinstance(response, ErrorResponse) and not allow_error:
                        raise DeviceError(response)
                    if isinstance(response, want) and (
                            predicate is None or predicate(response)):
                        self._mark_completed(seq)
                        return response
                self.transport.idle_device()
        self.timeouts += 1
        raise ControlTimeout(f"no {want.__name__} response after "
                             f"{policy.attempts} attempts")

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def reliability_stats(self) -> dict:
        return {
            "retries": self.retries,
            "retries_by_command": dict(self.retries_by_command),
            "stale_suppressed": self.stale_suppressed,
            "duplicates_suppressed": self.duplicates_suppressed,
            "backoff_rounds": self.backoff_rounds,
            "timeouts": self.timeouts,
        }

    def publish_obs(self, registry) -> None:
        """Publish reliability accounting as ``client.*`` series (and
        the transport's ``transport.*``/``channel.*`` series) into a
        :class:`repro.obs.MetricsRegistry`."""
        from repro.obs.collect import collect_client

        collect_client(self, registry)
        publish = getattr(self.transport, "publish_obs", None)
        if publish is not None:
            publish(registry)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def status(self) -> StatusResponse:
        return self._request(protocol.encode_status_request(), StatusResponse,
                             command="status")

    def restart(self) -> Restarted:
        # One restarts *because* something went wrong; stale error
        # packets from the crashed program must not abort the recovery.
        return self._request(protocol.encode_restart(), Restarted,
                             allow_error=True, command="restart")

    def load_binary(self, base: int, blob: bytes,
                    chunk: int = protocol.DEFAULT_CHUNK) -> int:
        """Load a flat binary; returns the number of chunk payloads
        transmitted (including retransmissions).

        Each round sends only the chunks still unacknowledged: acks
        carry the device's reassembly progress and its missing-sequence
        list, so a retry retransmits the lost chunks instead of the full
        payload set.  The count is taken from the transport's own send
        counter, so every wire transmission — including retries — is
        reported.
        """
        policy = self.policy_for("load")
        payloads = protocol.packetize_program(base, blob, chunk)
        total = len(payloads)
        sent_before = self.transport.sent_payloads
        pending = list(range(total))
        # One request tag per attempt, shared by that attempt's chunks.
        # Any tag of *this* call identifies a usable ack (late acks from
        # an earlier attempt still report progress); acks from an
        # earlier load — same total or not — are suppressed as stale.
        active: set[int] = set()
        for attempt in range(policy.attempts):
            if attempt:
                self.retries += 1
                self.retries_by_command["load"] = \
                    self.retries_by_command.get("load", 0) + 1
            rounds = policy.rounds_for(attempt)
            if attempt:
                self.backoff_rounds += rounds - policy.rounds_for(0)
            tag = self._next_seq()
            active.add(tag)
            for seq in pending:
                self.transport.send(
                    protocol.tag_payload(payloads[seq], tag))
            # Poll for acks; every chunk solicits one, so no separate
            # nudge packet is needed.  Track the most advanced ack of
            # the round — early acks still list chunks that arrive
            # moments later.
            best: LoadAck | None = None
            for _ in range(rounds):
                for response, echoed in self._collect():
                    if not self._admit(response, echoed, active):
                        continue
                    if isinstance(response, ErrorResponse):
                        raise DeviceError(response)
                    if isinstance(response, LoadAck) \
                            and response.total == total:
                        if best is None or response.received > best.received:
                            best = response
                if best is not None and best.received >= total:
                    self._mark_completed(*active)
                    return self.transport.sent_payloads - sent_before
                self.transport.idle_device()
            if best is not None and best.missing:
                pending = sorted(seq for seq in set(best.missing)
                                 if seq < total)
            # else: no ack at all (the whole round was lost) or a
            # count-only ack from a seed-format device — resend the
            # current pending set unchanged.
        self.timeouts += 1
        raise ControlTimeout(f"program load incomplete after "
                             f"{policy.attempts} attempts")

    def load_image(self, image: Image,
                   chunk: int = protocol.DEFAULT_CHUNK) -> int:
        base, blob = image.flatten()
        return self.load_binary(base, blob, chunk)

    def start(self, entry: int = 0) -> Started:
        return self._request(protocol.encode_start(entry), Started,
                             command="start")

    def read_memory(self, address: int, length: int = 4) -> bytes:
        response = self._request(
            protocol.encode_read_memory(address, length), MemoryData,
            predicate=lambda r: r.address == address, command="read")
        return response.data

    def read_word(self, address: int) -> int:
        return int.from_bytes(self.read_memory(address, 4), "big")

    def fetch_trace(self, chunk: int = 512):
        """Stream the instrumented memory trace off the device (Fig 1:
        "the streaming of instrumented traces to the Trace Analyzer").

        Returns a :class:`repro.analysis.trace.MemoryTrace`.
        """
        from repro.analysis.trace import MemoryTrace

        blob = bytearray()
        offset = 0
        while True:
            response = self._request(
                protocol.encode_read_trace(offset, chunk), TraceData,
                predicate=lambda r: r.offset == offset, command="trace")
            blob += response.data
            offset += len(response.data)
            if offset >= response.total or not response.data:
                break
        return MemoryTrace.from_bytes(bytes(blob))

    # ------------------------------------------------------------------
    # Composite flows
    # ------------------------------------------------------------------

    def run_image(self, image: Image, result_addr: int | None = None,
                  entry: int = 0,
                  max_instructions: int = 50_000_000) -> RunResult:
        """The full §2.6 flow: load → start → wait → read result/cycles."""
        self.load_image(image)
        started = self.start(entry)
        self.transport.run_device_program(max_instructions)
        status = self.status()
        result_word = None
        if result_addr is not None:
            result_word = self.read_word(result_addr)
        return RunResult(entry=started.entry, cycles=status.cycles,
                         result_word=result_word)
