"""repro.control.fleet — a multi-tenant scheduler over N FPX nodes.

The paper's endgame is an internet-accessible liquid-architecture lab:
web form → servlet → UDP → FPX node.  One
:class:`~repro.core.recon_server.ReconfigurationServer` owns one node
and drives its queue serially; this module scales that into a fleet
service with the client-API / scheduler / device-runtime layering of
high-level RC platform frameworks:

* **Device runtimes** — each of the N emulated FPX nodes is a
  ``ReconfigurationServer`` (its own ``FPXPlatform`` per loaded
  bitfile, optionally behind a chaos-wrapped transport from
  :mod:`repro.net.faults`), all sharing one thread-safe
  :class:`~repro.core.recon_cache.ReconfigurationCache` so concurrent
  tenants reuse each other's synthesized bitfiles.
* **Scheduler** — an asyncio event loop with one worker task per
  device.  Leasing is round-robin across tenants (weighted: a tenant
  of weight *w* is visited *w* times per rotation), by priority within
  a tenant, with *config affinity* as the final tie-break: a device
  keeps jobs whose architecture is already on its RAD, so a fleet
  avoids the ~seconds-scale reconfiguration churn that round-robin
  placement alone would cause.
* **Supervision** — the restart-and-retry of
  ``ReconfigurationServer._retry_job``, generalized: a failed job is
  requeued (never lost) while its device is invalidated, charged
  exponential backoff in model time, and quarantined after repeated
  consecutive failures; a quarantined device rejoins after a probation
  period with a rebuilt platform, and optional health probes
  (``client.status()``) catch wedged nodes between jobs.

Time is *model time*: each device carries its own clock (synthesis +
programming + execution seconds accumulated by its runtime, plus
backoff penalties), devices run concurrently in that currency, and job
latency/utilization statistics are deterministic — the same fleet, job
list and seed produce byte-identical results
(:meth:`FleetScheduler.canonical_results`).

Fleet-level accounting is kept in native counters and folded into a
:class:`repro.obs.MetricsRegistry` by
:func:`repro.obs.collect.collect_fleet` /
:meth:`FleetScheduler.publish_obs`: queue depths, per-device
utilization, per-tenant p50/p99 job latency.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.control.client import (
    ControlTimeout,
    DeviceError,
    LiquidClient,
    RetryPolicy,
)
from repro.control.transport import ChaosTransport, DirectTransport
from repro.core.recon_cache import ReconfigurationCache
from repro.core.recon_server import Job, JobResult, ReconfigurationServer
from repro.net.protocol import LeonState

__all__ = [
    "ChaosClientFactory",
    "DeviceSupervisor",
    "FleetJob",
    "FleetResult",
    "FleetScheduler",
    "fleet_client_factory",
    "quantile",
]

#: Fleet clients fail fast: the per-device supervisor owns recovery, so
#: a wedged node should surface a ControlTimeout within a bounded number
#: of delivery rounds instead of burning an interactive-grade retry
#: budget on a device the scheduler could simply rebuild.
FLEET_MAX_RETRIES = 3
FLEET_POLL_ROUNDS = 16


def fleet_client_factory(platform) -> LiquidClient:
    """Default per-device client: lossless transport, fail-fast budget."""
    return LiquidClient(
        DirectTransport(platform, platform.config.device_ip,
                        platform.config.control_port),
        max_retries=FLEET_MAX_RETRIES, poll_rounds=FLEET_POLL_ROUNDS)


class ChaosClientFactory:
    """Client factory for one device whose transport follows a per-boot
    schedule of fault plans.

    Each time the device runtime configures a fresh platform (including
    supervisor-forced rebuilds after failures), the next plan in
    *plans* governs the new transport; the last plan repeats.  Seeds
    derive deterministically from the boot index, so a fleet run with a
    fixed seed reproduces the same datagram-level history.  Plans are
    :class:`~repro.net.faults.FaultPlan` instances or scenario names
    from :data:`repro.net.faults.SCENARIOS` (e.g. a wedged-then-healthy
    device is ``["device-down", "device-down", "burst-loss"]``).
    """

    def __init__(self, plans, seed: int = 7,
                 max_retries: int = FLEET_MAX_RETRIES,
                 poll_rounds: int = FLEET_POLL_ROUNDS):
        from repro.net.faults import scenario

        if not plans:
            raise ValueError("need at least one fault plan")
        self.plans = [scenario(plan) if isinstance(plan, str) else plan
                      for plan in plans]
        self.seed = seed
        self.max_retries = max_retries
        self.poll_rounds = poll_rounds
        self.boots = 0

    def __call__(self, platform) -> LiquidClient:
        plan = self.plans[min(self.boots, len(self.plans) - 1)]
        transport = ChaosTransport(platform, platform.config.device_ip,
                                   platform.config.control_port, plan,
                                   seed=self.seed + 0x9E37 * self.boots)
        self.boots += 1
        return LiquidClient(transport, max_retries=self.max_retries,
                            poll_rounds=self.poll_rounds)


@dataclass
class FleetJob:
    """One tenant's job as admitted to the fleet queue."""

    tenant: str
    job: Job
    priority: int = 0
    #: Fleet-wide admission order (ties within a priority class).
    sequence: int = 0
    attempts: int = 0
    enqueued_seconds: float = 0.0


@dataclass
class FleetResult:
    """A completed (or terminally failed) fleet job."""

    tenant: str
    device: str
    result: JobResult
    attempts: int
    #: Model seconds from admission to completion on the device's clock
    #: (queueing + synthesis + programming + execution + any backoff).
    latency_seconds: float
    sequence: int
    completion_index: int


@dataclass
class DeviceSupervisor:
    """One device's runtime plus its health/accounting state."""

    device_id: str
    runtime: ReconfigurationServer
    #: Model-time clock of this node (its runtime's charges + backoff).
    clock: float = 0.0
    busy_seconds: float = 0.0
    jobs_completed: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantines: int = 0
    recoveries: int = 0
    probes: int = 0
    probe_failures: int = 0
    quarantined_until_tick: int | None = None
    _jobs_since_probe: int = field(default=0, repr=False)

    @property
    def quarantined(self) -> bool:
        return self.quarantined_until_tick is not None

    def utilization(self, makespan: float) -> float:
        return self.busy_seconds / makespan if makespan > 0 else 0.0


class FleetScheduler:
    """Async multi-device scheduler with per-tenant fairness.

    *devices* is a count (ids ``fpx00``, ``fpx01``, ...) or a list of
    ids.  *client_factories* maps a device id to its client factory
    (e.g. a :class:`ChaosClientFactory`); unlisted devices use
    :func:`fleet_client_factory`.  *tenant_weights* gives a tenant more
    turns per fairness rotation (default 1).

    Supervision knobs: a job failure requeues the job (up to
    *max_job_attempts* total attempts, then a failed result) and
    charges its device ``backoff_seconds * 2**(consecutive-1)`` of
    model time; *quarantine_after* consecutive failures bench the
    device for *quarantine_ticks* scheduler ticks, after which it
    rejoins with a rebuilt platform.  With ``probe_every=N`` the
    supervisor health-checks a device (``client.status()``) after every
    N completed jobs; a failed probe counts as a device failure.
    """

    def __init__(self, devices=4, *, cache: ReconfigurationCache | None = None,
                 client_factories: dict | None = None,
                 tenant_weights: dict[str, int] | None = None,
                 max_job_attempts: int = 3, quarantine_after: int = 2,
                 quarantine_ticks: int = 8, backoff_seconds: float = 0.05,
                 probe_every: int = 0):
        if isinstance(devices, int):
            if devices < 1:
                raise ValueError("need at least one device")
            device_ids = [f"fpx{i:02d}" for i in range(devices)]
        else:
            device_ids = list(devices)
            if not device_ids:
                raise ValueError("need at least one device")
        # `is not None`, not truthiness: an empty cache is falsy
        # (__len__) but still the caller's cache to share.
        self.cache = cache if cache is not None else ReconfigurationCache()
        factories = dict(client_factories or {})
        unknown = set(factories) - set(device_ids)
        if unknown:
            raise ValueError(f"client factories for unknown devices: "
                             f"{sorted(unknown)}")
        self.devices = [
            DeviceSupervisor(device_id, ReconfigurationServer(
                cache=self.cache,
                client_factory=factories.get(device_id,
                                             fleet_client_factory)))
            for device_id in device_ids
        ]
        self.tenant_weights = dict(tenant_weights or {})
        self.max_job_attempts = max_job_attempts
        self.quarantine_after = quarantine_after
        self.quarantine_ticks = quarantine_ticks
        self.backoff_seconds = backoff_seconds
        self.probe_every = probe_every
        # -- queues and fairness state ---------------------------------
        self._queues: dict[str, list[FleetJob]] = {}
        self._rotation: list[str] = []
        self._rr_index = 0
        self._sequence = 0
        self._pending = 0
        self._inflight = 0
        self._ticks = 0
        # -- accounting ------------------------------------------------
        self.completed: list[FleetResult] = []
        self.jobs_submitted = 0
        self.jobs_failed = 0
        self.jobs_requeued = 0
        self.latencies: dict[str, list[float]] = {}
        self.max_queue_depth: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, tenant: str, job: Job, priority: int = 0,
               arrival_seconds: float = 0.0) -> FleetJob:
        """Admit *job* for *tenant*; higher *priority* dispatches first
        within the tenant's queue."""
        fleet_job = FleetJob(tenant=tenant, job=job, priority=priority,
                             sequence=self._sequence,
                             enqueued_seconds=arrival_seconds)
        self._sequence += 1
        self.jobs_submitted += 1
        self._enqueue(fleet_job)
        return fleet_job

    def _enqueue(self, fleet_job: FleetJob) -> None:
        tenant = fleet_job.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = []
            self.latencies.setdefault(tenant, [])
            self._rebuild_rotation()
        queue.append(fleet_job)
        self._pending += 1
        depth = len(queue)
        if depth > self.max_queue_depth.get(tenant, 0):
            self.max_queue_depth[tenant] = depth

    def _rebuild_rotation(self) -> None:
        rotation = []
        for tenant in sorted(self._queues):
            rotation.extend([tenant] * max(1, self.tenant_weights.get(tenant,
                                                                      1)))
        self._rotation = rotation
        self._rr_index = 0

    def queue_depths(self) -> dict[str, int]:
        return {tenant: len(queue) for tenant, queue in self._queues.items()}

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def _lease(self, device: DeviceSupervisor) -> FleetJob | None:
        """Pick the next job for *device*: weighted round-robin across
        tenants; within the chosen tenant, highest priority first, then
        config affinity (a job whose architecture is already loaded on
        this device), then admission order."""
        rotation = self._rotation
        for step in range(len(rotation)):
            tenant = rotation[(self._rr_index + step) % len(rotation)]
            queue = self._queues.get(tenant)
            if not queue:
                continue
            self._rr_index = (self._rr_index + step + 1) % len(rotation)
            top = max(fj.priority for fj in queue)
            candidates = [fj for fj in queue if fj.priority == top]
            pick = None
            loaded = device.runtime.current_bitfile
            if loaded is not None:
                pick = min((fj for fj in candidates
                            if fj.job.config == loaded.config),
                           key=lambda fj: fj.sequence, default=None)
            if pick is None:
                pick = min(candidates, key=lambda fj: fj.sequence)
            queue.remove(pick)
            self._pending -= 1
            return pick
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    async def run(self) -> list[FleetResult]:
        """Drive every queued job to a result; returns the completion-
        ordered results (also kept on :attr:`completed`)."""
        workers = [asyncio.ensure_future(self._worker(device))
                   for device in self.devices]
        try:
            await asyncio.gather(*workers)
        finally:
            for worker in workers:
                worker.cancel()
        return self.completed

    def drain(self) -> list[FleetResult]:
        """Synchronous wrapper around :meth:`run`."""
        return asyncio.run(self.run())

    async def _worker(self, device: DeviceSupervisor) -> None:
        while self._pending > 0 or self._inflight > 0:
            self._ticks += 1
            if device.quarantined:
                if self._ticks < device.quarantined_until_tick:
                    await asyncio.sleep(0)
                    continue
                # Probation over: rejoin with a rebuilt platform.
                device.quarantined_until_tick = None
                device.consecutive_failures = 0
                device.recoveries += 1
                device.runtime.invalidate()
            fleet_job = self._lease(device)
            if fleet_job is None:
                await asyncio.sleep(0)
                continue
            self._inflight += 1
            fleet_job.attempts += 1
            runtime = device.runtime
            before = runtime.model_seconds
            error: Exception | None = None
            result: JobResult | None = None
            try:
                result = runtime.run_job(fleet_job.job)
            except (ControlTimeout, DeviceError) as exc:
                error = exc
            delta = runtime.model_seconds - before
            device.clock += delta
            self._inflight -= 1
            if error is None:
                device.busy_seconds += delta
                device.jobs_completed += 1
                device.consecutive_failures = 0
                self._complete(fleet_job, device, result)
                self._maybe_probe(device)
            else:
                self._handle_failure(device, fleet_job, error)
            await asyncio.sleep(0)

    def _complete(self, fleet_job: FleetJob, device: DeviceSupervisor,
                  result: JobResult) -> None:
        latency = device.clock - fleet_job.enqueued_seconds
        self.latencies[fleet_job.tenant].append(latency)
        self.completed.append(FleetResult(
            tenant=fleet_job.tenant,
            device=device.device_id,
            result=result,
            attempts=fleet_job.attempts,
            latency_seconds=latency,
            sequence=fleet_job.sequence,
            completion_index=len(self.completed),
        ))

    def _handle_failure(self, device: DeviceSupervisor,
                        fleet_job: FleetJob, error: Exception) -> None:
        device.failures += 1
        device.consecutive_failures += 1
        # Shed the wedged platform; charge exponential backoff in model
        # time (the supervisor's restart window).
        device.runtime.invalidate()
        device.clock += (self.backoff_seconds
                         * 2 ** (device.consecutive_failures - 1))
        if device.consecutive_failures >= self.quarantine_after:
            device.quarantined_until_tick = (self._ticks
                                             + self.quarantine_ticks)
            device.quarantines += 1
        if fleet_job.attempts >= self.max_job_attempts:
            self.jobs_failed += 1
            failed = JobResult(
                name=fleet_job.job.name,
                config_key=fleet_job.job.config.key(),
                state=LeonState.ERROR,
                cycles=0,
                result_word=None,
                seconds_synthesis=0.0,
                seconds_programming=0.0,
                seconds_execution=0.0,
                cache_hit=False,
                ok=False,
                error=f"{type(error).__name__}: {error} "
                      f"(after {fleet_job.attempts} attempts)",
                attempts=fleet_job.attempts,
            )
            self._complete(fleet_job, device, failed)
        else:
            self.jobs_requeued += 1
            self._enqueue(fleet_job)

    def _maybe_probe(self, device: DeviceSupervisor) -> None:
        if self.probe_every <= 0:
            return
        device._jobs_since_probe += 1
        if device._jobs_since_probe < self.probe_every:
            return
        device._jobs_since_probe = 0
        client = device.runtime.client
        if client is None:
            return
        device.probes += 1
        try:
            client.status()
        except (ControlTimeout, DeviceError):
            device.probe_failures += 1
            device.failures += 1
            device.consecutive_failures += 1
            device.runtime.invalidate()
            if device.consecutive_failures >= self.quarantine_after:
                device.quarantined_until_tick = (self._ticks
                                                 + self.quarantine_ticks)
                device.quarantines += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def makespan_seconds(self) -> float:
        return max((device.clock for device in self.devices), default=0.0)

    def ledger(self) -> dict:
        makespan = self.makespan_seconds
        cache_stats = self.cache.stats
        tenants = {}
        for tenant in sorted(self.latencies):
            latencies = self.latencies[tenant]
            tenants[tenant] = {
                "completed": sum(1 for r in self.completed
                                 if r.tenant == tenant and r.result.ok),
                "failed": sum(1 for r in self.completed
                              if r.tenant == tenant and not r.result.ok),
                "p50_latency_seconds": round(quantile(latencies, 0.50), 6),
                "p99_latency_seconds": round(quantile(latencies, 0.99), 6),
                "max_queue_depth": self.max_queue_depth.get(tenant, 0),
            }
        devices = {}
        for device in self.devices:
            runtime = device.runtime
            devices[device.device_id] = {
                "jobs": device.jobs_completed,
                "busy_seconds": round(device.busy_seconds, 3),
                "clock_seconds": round(device.clock, 3),
                "utilization": round(device.utilization(makespan), 4),
                "failures": device.failures,
                "quarantines": device.quarantines,
                "recoveries": device.recoveries,
                "probes": device.probes,
                "probe_failures": device.probe_failures,
                "reconfigurations": runtime.reconfigurations,
                "configs_noop": runtime.noop_configs,
            }
        return {
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": sum(1 for r in self.completed if r.result.ok),
                "failed": self.jobs_failed,
                "requeued": self.jobs_requeued,
            },
            "makespan_seconds": round(makespan, 3),
            "tenants": tenants,
            "devices": devices,
            "cache": {
                "entries": len(self.cache),
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "coalesced": cache_stats.coalesced,
                "evictions": cache_stats.evictions,
                "synthesis_seconds": round(cache_stats.synthesis_seconds, 1),
                "seconds_saved": round(cache_stats.seconds_saved, 1),
            },
        }

    def canonical_results(self) -> str:
        """Byte-stable serialization of every job's outcome (sorted by
        tenant and admission order) — the fleet-level determinism
        oracle: same fleet + jobs + seed ⇒ identical string."""
        rows = [
            {
                "tenant": r.tenant,
                "sequence": r.sequence,
                "name": r.result.name,
                "config": r.result.config_key,
                "device": r.device,
                "attempts": r.attempts,
                "ok": r.result.ok,
                "state": r.result.state.name,
                "cycles": r.result.cycles,
                "result_word": r.result.result_word,
                "latency_seconds": round(r.latency_seconds, 9),
            }
            for r in sorted(self.completed,
                            key=lambda r: (r.tenant, r.sequence))
        ]
        return json.dumps(rows, sort_keys=True, separators=(",", ":"))

    def publish_obs(self, registry) -> None:
        """Fold the fleet's native accounting into a
        :class:`repro.obs.MetricsRegistry` as ``fleet.*`` series (use a
        fresh registry per fold — the collector publishes totals)."""
        from repro.obs.collect import collect_fleet

        collect_fleet(self, registry)


def quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]
