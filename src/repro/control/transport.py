"""Transports carrying control packets between client and device.

The paper's control software is a Java servlet acting as a UDP client; a
listener thread prints responses as they arrive.  Here a *transport*
hides how datagrams get to the device:

* :class:`DirectTransport` — zero-loss, in-order (a LAN bench setup);
* :class:`LossyTransport` — through a seeded
  :class:`~repro.net.channel.Channel` pair with loss/reorder/duplication,
  i.e. the open-Internet case the protocol was designed for;
* either can target the real :class:`~repro.fpx.platform.FPXPlatform` or
  the :class:`~repro.control.emulator.HardwareEmulator` (the paper's
  "Java emulator of the H/W (for debugging)").

Transports also own the *device driving* policy: the FPX hardware runs
continuously, so whenever the client waits for a response the transport
advances the device model (`device.step`) between deliveries.
"""

from __future__ import annotations

from typing import Protocol

from repro.net.channel import Channel, ChannelConfig, duplex
from repro.net.packets import build_udp_packet, parse_ip, parse_udp_packet
from repro.net.protocol import LeonState

DEFAULT_CLIENT_IP = "128.252.153.99"
DEFAULT_CLIENT_PORT = 34567


class Device(Protocol):
    """What a transport needs from the device side (FPXPlatform or the
    hardware emulator satisfy this)."""

    def inject_frame(self, frame: bytes) -> None: ...

    def take_tx_frames(self) -> list[bytes]: ...

    def step(self, instructions: int = 1) -> int: ...

    def run_until(self, states: set, max_instructions: int = 0): ...


class _TransportBase:
    def __init__(self, device, device_ip: str, device_port: int,
                 client_ip: str = DEFAULT_CLIENT_IP,
                 client_port: int = DEFAULT_CLIENT_PORT):
        self.device = device
        self.device_ip = parse_ip(device_ip)
        self.device_port = device_port
        self.client_ip = parse_ip(client_ip)
        self.client_port = client_port
        self.sent_payloads = 0
        self.received_payloads = 0
        self.dropped_corrupt = 0        # failed IP/UDP parse or checksum
        self.dropped_misaddressed = 0   # parsed, but not for this client

    def _frame_for(self, payload: bytes) -> bytes:
        self.sent_payloads += 1
        return build_udp_packet(self.client_ip, self.device_ip,
                                self.client_port, self.device_port, payload,
                                identification=self.sent_payloads)

    def _unwrap_responses(self, frames: list[bytes]) -> list[bytes]:
        payloads = []
        for frame in frames:
            try:
                ip, udp = parse_udp_packet(frame)
            except Exception:
                # Corrupted on the wire; the checksum caught it.  Count
                # it instead of swallowing it so lossy-channel tests can
                # assert the drop actually happened.
                self.dropped_corrupt += 1
                continue
            if ip.dst_ip == self.client_ip and udp.dst_port == self.client_port:
                payloads.append(udp.payload)
                self.received_payloads += 1
            else:
                self.dropped_misaddressed += 1
        return payloads

    def stats(self) -> dict:
        return {
            "sent_payloads": self.sent_payloads,
            "received_payloads": self.received_payloads,
            "dropped_corrupt": self.dropped_corrupt,
            "dropped_misaddressed": self.dropped_misaddressed,
        }

    def publish_obs(self, registry) -> None:
        """Publish delivery accounting as ``transport.*`` series (plus
        per-direction ``channel.*`` fault counters on lossy transports)
        into a :class:`repro.obs.MetricsRegistry`."""
        from repro.obs.collect import collect_transport

        collect_transport(self, registry)

    # -- device-driving helpers -------------------------------------------

    def run_device_program(self, max_instructions: int = 50_000_000):
        """Let the device execute until the loaded program finishes."""
        return self.device.run_until({LeonState.DONE, LeonState.ERROR},
                                     max_instructions)

    def idle_device(self, instructions: int = 64) -> None:
        """Advance the device a little (it is always clocking)."""
        self.device.step(instructions)


class DirectTransport(_TransportBase):
    """Lossless, in-order delivery."""

    def send(self, payload: bytes) -> None:
        self.device.inject_frame(self._frame_for(payload))

    def poll(self) -> list[bytes]:
        return self._unwrap_responses(self.device.take_tx_frames())


class _ChannelTransport(_TransportBase):
    """Shared machinery for transports that route frames through a
    (to_device, to_client) channel pair; subclasses build the pair."""

    to_device: Channel
    to_client: Channel

    def send(self, payload: bytes) -> None:
        self.to_device.send(self._frame_for(payload))

    def poll(self) -> list[bytes]:
        # Move queued frames into the device, collect what it transmits,
        # and push that through the return channel.
        for frame in self.to_device.deliver():
            self.device.inject_frame(frame)
        for frame in self.device.take_tx_frames():
            self.to_client.send(frame)
        return self._unwrap_responses(self.to_client.deliver())

    def channel_stats(self) -> dict:
        return {"to_device": self.to_device.stats(),
                "to_client": self.to_client.stats()}


class LossyTransport(_ChannelTransport):
    """Delivery through fault-injecting channels (seeded, deterministic)."""

    def __init__(self, device, device_ip: str, device_port: int,
                 channel_config: ChannelConfig | None = None, seed: int = 7,
                 client_ip: str = DEFAULT_CLIENT_IP,
                 client_port: int = DEFAULT_CLIENT_PORT):
        super().__init__(device, device_ip, device_port, client_ip,
                         client_port)
        self.to_device, self.to_client = duplex(channel_config, seed)


class ChaosTransport(_ChannelTransport):
    """Delivery through scripted fault scenarios (seeded, deterministic).

    *plan* governs the client→device direction; pass *to_client_plan*
    for per-direction asymmetry (e.g. a clean uplink with a lossy
    return path).  Accepts a :class:`~repro.net.faults.FaultPlan` or a
    scenario name from :data:`repro.net.faults.SCENARIOS`.
    """

    def __init__(self, device, device_ip: str, device_port: int,
                 plan, to_client_plan=None, seed: int = 7,
                 client_ip: str = DEFAULT_CLIENT_IP,
                 client_port: int = DEFAULT_CLIENT_PORT):
        from repro.net.faults import scenario, scripted_duplex

        super().__init__(device, device_ip, device_port, client_ip,
                         client_port)
        if isinstance(plan, str):
            plan = scenario(plan)
        if isinstance(to_client_plan, str):
            to_client_plan = scenario(to_client_plan)
        self.to_device, self.to_client = scripted_duplex(
            plan, seed, to_client_plan)
