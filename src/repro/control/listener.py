"""Response listener — the paper's dedicated console thread.

"A dedicated Java program running in a different thread on the control
software server listens continuously for UDP packets transmitted by FPGA
and displays them on the console as they arrive."  The model is
single-threaded, so the listener is a recorder: every decoded response is
appended with a sequence number, and :meth:`console_lines` renders the
console output the operator would have watched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.protocol import (
    ErrorResponse,
    LoadAck,
    MemoryData,
    Restarted,
    Started,
    StatusResponse,
)


@dataclass
class ResponseListener:
    records: list = field(default_factory=list)

    def record(self, response) -> None:
        self.records.append(response)

    def __len__(self) -> int:
        return len(self.records)

    def of_type(self, kind: type) -> list:
        return [r for r in self.records if isinstance(r, kind)]

    def console_lines(self) -> list[str]:
        lines = []
        for index, response in enumerate(self.records):
            lines.append(f"[{index:04d}] {self._format(response)}")
        return lines

    @staticmethod
    def _format(response) -> str:
        if isinstance(response, StatusResponse):
            return (f"LEON status: {response.state.name} "
                    f"(cycle counter {response.cycles})")
        if isinstance(response, LoadAck):
            return f"load progress: {response.received}/{response.total} chunks"
        if isinstance(response, Started):
            return f"LEON started at 0x{response.entry:08x}"
        if isinstance(response, Restarted):
            return "LEON restarted"
        if isinstance(response, MemoryData):
            # Group into words plus a final short group: a read whose
            # length is not a multiple of 4 must still show its trailing
            # bytes instead of silently hiding them.
            groups = [response.data[i:i + 4]
                      for i in range(0, len(response.data), 4)]
            rendered = " ".join(group.hex() for group in groups[:8])
            suffix = " ..." if len(groups) > 8 else ""
            return f"memory[0x{response.address:08x}]: {rendered}{suffix}"
        if isinstance(response, ErrorResponse):
            return f"ERROR 0x{response.code:02x}: {response.message}"
        return repr(response)
