"""Control software: client, transports, listener, servlet, HW emulator."""

from repro.control.client import (
    ControlTimeout,
    DeviceError,
    LiquidClient,
    RetryPolicy,
    RunResult,
)
from repro.control.emulator import HardwareEmulator
from repro.control.listener import ResponseListener
from repro.control.transport import (
    ChaosTransport,
    DirectTransport,
    LossyTransport,
)
from repro.control.webapp import ControlServlet

#: Fleet names resolved lazily (PEP 562): repro.control.fleet imports
#: repro.core.recon_server, which imports repro.control.client — an
#: eager import here would close that cycle mid-initialization.
_FLEET_EXPORTS = (
    "ChaosClientFactory",
    "DeviceSupervisor",
    "FleetJob",
    "FleetResult",
    "FleetScheduler",
    "fleet_client_factory",
)


def __getattr__(name: str):
    if name in _FLEET_EXPORTS:
        from repro.control import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ControlTimeout",
    "DeviceError",
    "LiquidClient",
    "RetryPolicy",
    "RunResult",
    "HardwareEmulator",
    "ResponseListener",
    "ChaosTransport",
    "DirectTransport",
    "LossyTransport",
    "ControlServlet",
    *_FLEET_EXPORTS,
]
