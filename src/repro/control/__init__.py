"""Control software: client, transports, listener, servlet, HW emulator."""

from repro.control.client import (
    ControlTimeout,
    DeviceError,
    LiquidClient,
    RunResult,
)
from repro.control.emulator import HardwareEmulator
from repro.control.listener import ResponseListener
from repro.control.transport import DirectTransport, LossyTransport
from repro.control.webapp import ControlServlet

__all__ = [
    "ControlTimeout",
    "DeviceError",
    "LiquidClient",
    "RunResult",
    "HardwareEmulator",
    "ResponseListener",
    "DirectTransport",
    "LossyTransport",
    "ControlServlet",
]
