"""Control software: client, transports, listener, servlet, HW emulator."""

from repro.control.client import (
    ControlTimeout,
    DeviceError,
    LiquidClient,
    RetryPolicy,
    RunResult,
)
from repro.control.emulator import HardwareEmulator
from repro.control.listener import ResponseListener
from repro.control.transport import (
    ChaosTransport,
    DirectTransport,
    LossyTransport,
)
from repro.control.webapp import ControlServlet

__all__ = [
    "ControlTimeout",
    "DeviceError",
    "LiquidClient",
    "RetryPolicy",
    "RunResult",
    "HardwareEmulator",
    "ResponseListener",
    "ChaosTransport",
    "DirectTransport",
    "LossyTransport",
    "ControlServlet",
]
