"""Render metrics snapshots as text or JSON reports, and diff runs.

The benches use :func:`render_text` to print a Trace-Analyzer-style
summary next to the paper tables; CI writes :func:`render_json` output
as the smoke-sweep artifact; :func:`diff_reports` compares two persisted
snapshots (e.g. the ``obs`` field of two sweep-cache records) so a
configuration change shows up as a signed per-series delta.
"""

from __future__ import annotations

import json

from repro.obs.metrics import diff_snapshots

__all__ = ["diff_reports", "render_json", "render_text"]


def render_json(snapshot: dict, indent: int | None = 1) -> str:
    """Canonical JSON rendering of a snapshot (sorted keys, stable)."""
    return json.dumps(snapshot, sort_keys=True, indent=indent)


def _histogram_line(hist: dict) -> str:
    count = hist.get("count", 0)
    if not count:
        return "count=0"
    mean = hist.get("sum", 0) / count
    # The highest non-empty bucket bound approximates the max.
    bounds = list(hist.get("le", [])) + ["+inf"]
    top = next((bounds[i] for i in range(len(hist["counts"]) - 1, -1, -1)
                if hist["counts"][i]), 0)
    return f"count={count} mean={mean:.2f} max_bucket<={top}"


def render_text(snapshot: dict, title: str = "metrics") -> str:
    """Aligned text report, one series per line, sections in a fixed
    order — diff-friendly for humans and golden files alike."""
    lines = [f"=== {title} ==="]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    width = max((len(key) for section in (counters, gauges, histograms)
                 for key in section), default=0)
    for key in sorted(counters):
        lines.append(f"{key:<{width}}  {counters[key]}")
    for key in sorted(gauges):
        value = gauges[key]
        text = f"{value:.6g}" if isinstance(value, float) else str(value)
        lines.append(f"{key:<{width}}  {text}")
    for key in sorted(histograms):
        lines.append(f"{key:<{width}}  {_histogram_line(histograms[key])}")
    return "\n".join(lines)


def diff_reports(after: dict, before: dict,
                 title: str = "delta") -> str:
    """Text rendering of ``after - before`` for two snapshots, dropping
    all-zero counter deltas so real movement stands out."""
    delta = diff_snapshots(after, before)
    delta["counters"] = {key: value
                         for key, value in delta["counters"].items()
                         if value != 0}
    delta["histograms"] = {key: hist
                           for key, hist in delta["histograms"].items()
                           if hist.get("count")}
    return render_text(delta, title)
