"""Collectors: fold the hot layers' native counters into a registry.

The simulation loops (CPU step, cache access, bus transfer) count events
in plain integer attributes — that is their no-op-fast-path: an integer
add costs nothing and needs no instrument lookup.  These functions walk
a component and publish those native counters as labeled registry
series, so every layer exports through one schema without paying a
method call per simulated event.

Series naming: ``layer.metric{label=value}`` —

* ``pipeline.*`` — retired instructions, cycles, stalls, flushes;
* ``cache.*{cache=icache|dcache}`` — hits/misses/evictions/fills plus
  the miss-latency histogram;
* ``bus.ahb.*`` / ``bus.apb.*`` — transactions, beats, wait states;
* ``mem.sram.*`` / ``mem.sdram.*`` — controller traffic;
* ``transport.*`` — control-plane payloads and drops;
* ``sweep.*`` — host-side engine metrics (wall time, cache reuse),
  kept in a *separate* registry because they are not deterministic.

:func:`simulator_snapshot` is the per-point entry: snapshot a
:class:`~repro.core.sim.Simulator` before and after a program runs and
:func:`point_snapshot` diffs the two, yielding the program-window
metrics the paper's arm/freeze cycle counter measures — plus derived
per-stage occupancy gauges.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, diff_snapshots

__all__ = [
    "PIPELINE_STAGES",
    "collect_ahb",
    "collect_apb",
    "FLEET_LATENCY_BOUNDS",
    "collect_cache",
    "collect_channel",
    "collect_client",
    "collect_fastpath",
    "collect_fleet",
    "collect_pipeline",
    "collect_sampling",
    "collect_sdram",
    "collect_sram",
    "collect_transport",
    "point_snapshot",
    "simulator_snapshot",
    "zero_transport_series",
]

#: The LEON2 integer pipeline stages (paper §2.2).
PIPELINE_STAGES = ("FE", "DE", "EX", "ME", "WR")


def collect_pipeline(cpu, registry: MetricsRegistry) -> None:
    """Publish the integer unit's execution and stall accounting."""
    registry.counter("pipeline.instructions").inc(cpu.instret)
    registry.counter("pipeline.cycles").inc(cpu.cycles)
    registry.counter("pipeline.traps").inc(cpu.trap_count)
    registry.counter("pipeline.flushes").inc(cpu.pipeline_flushes)
    registry.counter("pipeline.fetch_stall_cycles").inc(
        cpu.fetch_stall_cycles)
    registry.counter("pipeline.mem_stall_cycles").inc(cpu.mem_stall_cycles)
    registry.counter("pipeline.annulled_slots").inc(cpu.annulled_slots)
    registry.counter("pipeline.taken_ctis").inc(cpu.taken_ctis)
    registry.counter("pipeline.cti_penalty_cycles").inc(
        cpu.cti_penalty_cycles)
    registry.counter("pipeline.interlock_stalls").inc(
        cpu.pipeline.interlock_stalls)


def collect_cache(controller, registry: MetricsRegistry) -> None:
    """Publish one cache controller's :class:`~repro.cache.cache.CacheStats`
    (and friends) as ``cache.*{cache=<name>}`` series."""
    label = controller.name
    stats = controller.stats
    registry.counter("cache.read_hits", cache=label).inc(stats.read_hits)
    registry.counter("cache.read_misses", cache=label).inc(stats.read_misses)
    registry.counter("cache.write_hits", cache=label).inc(stats.write_hits)
    registry.counter("cache.write_misses",
                     cache=label).inc(stats.write_misses)
    registry.counter("cache.evictions", cache=label).inc(stats.evictions)
    registry.counter("cache.flushes", cache=label).inc(stats.flushes)
    registry.counter("cache.fills", cache=label).inc(controller.fill_count)
    registry.counter("cache.bypasses",
                     cache=label).inc(controller.bypass_count)
    registry.histogram("cache.miss_cycles", cache=label).load(
        controller.miss_cycle_buckets, controller.miss_cycles_sum)
    if controller.prefetcher is not None:
        pstats = controller.prefetcher.stats
        registry.counter("cache.prefetch_issued",
                         cache=label).inc(pstats.issued)
        registry.counter("cache.prefetch_useful",
                         cache=label).inc(pstats.useful)


def collect_fastpath(sim, registry: MetricsRegistry) -> None:
    """Publish the two-speed execution accounting: steps executed on the
    functional fast path, fast->accurate handoffs, and checkpoint
    capture/restore counts.  Declared at zero for simulators that never
    fast-forward so every snapshot keeps the same schema."""
    registry.counter("fastpath.instructions").inc(
        getattr(sim, "fastpath_instructions", 0))
    registry.counter("fastpath.handoffs").inc(
        getattr(sim, "fastpath_handoffs", 0))
    registry.counter("fastpath.checkpoint_captures").inc(
        getattr(sim, "checkpoint_captures", 0))
    registry.counter("fastpath.checkpoint_restores").inc(
        getattr(sim, "checkpoint_restores", 0))
    registry.counter("fastpath.blocks_translated").inc(
        getattr(sim, "fastpath_blocks_translated", 0))
    registry.counter("fastpath.blocks_executed").inc(
        getattr(sim, "fastpath_blocks_executed", 0))
    registry.counter("fastpath.blocks_invalidated").inc(
        getattr(sim, "fastpath_blocks_invalidated", 0))


def collect_sampling(sim, registry: MetricsRegistry) -> None:
    """Publish the sampled-simulation accounting: runs, measurement
    windows, checkpoints captured, and the step split between the
    translated fast-forward legs, the cache-warming ramps and the
    cycle-accurate measured windows.  Declared at zero for simulators
    that never sample, keeping the snapshot schema stable."""
    registry.counter("sampling.runs").inc(getattr(sim, "sampling_runs", 0))
    registry.counter("sampling.windows").inc(
        getattr(sim, "sampling_windows", 0))
    registry.counter("sampling.checkpoints").inc(
        getattr(sim, "sampling_checkpoints", 0))
    registry.counter("sampling.survey_steps").inc(
        getattr(sim, "sampling_survey_steps", 0))
    registry.counter("sampling.ff_steps").inc(
        getattr(sim, "sampling_ff_steps", 0))
    registry.counter("sampling.ramp_steps").inc(
        getattr(sim, "sampling_ramp_steps", 0))
    registry.counter("sampling.measured_steps").inc(
        getattr(sim, "sampling_measured_steps", 0))


def collect_ahb(bus, registry: MetricsRegistry) -> None:
    registry.counter("bus.ahb.transfers").inc(bus.transfers)
    registry.counter("bus.ahb.burst_transfers").inc(bus.burst_transfers)
    registry.counter("bus.ahb.data_beats").inc(bus.data_beats)
    registry.counter("bus.ahb.wait_states").inc(bus.wait_states)
    registry.counter("bus.ahb.errors").inc(bus.error_count)


def collect_apb(bridge, registry: MetricsRegistry) -> None:
    registry.counter("bus.apb.accesses").inc(bridge.accesses)
    registry.counter("bus.apb.wait_states").inc(
        bridge.accesses * bridge.penalty_cycles)


def collect_sram(sram, registry: MetricsRegistry) -> None:
    registry.counter("mem.sram.reads").inc(sram.reads)
    registry.counter("mem.sram.writes").inc(sram.writes)


def collect_sdram(controller, registry: MetricsRegistry) -> None:
    registry.counter("mem.sdram.handshakes").inc(controller.total_handshakes)
    registry.counter("mem.sdram.beats").inc(controller.total_beats)
    registry.counter("mem.sdram.row_misses").inc(controller.row_misses)


_CLIENT_COUNTERS = ("retries", "stale_suppressed", "duplicates_suppressed",
                    "backoff_rounds", "timeouts")


def collect_client(client, registry: MetricsRegistry) -> None:
    """Publish a :class:`~repro.control.client.LiquidClient`'s
    reliability accounting as ``client.*`` series: total retries (plus a
    per-command breakdown), suppressed stale/duplicate responses,
    backoff rounds and timeouts."""
    for name in _CLIENT_COUNTERS:
        registry.counter(f"client.{name}").inc(getattr(client, name))
    for command in sorted(client.retries_by_command):
        registry.counter("client.retries", command=command).inc(
            client.retries_by_command[command])


_TRANSPORT_COUNTERS = ("sent_payloads", "received_payloads",
                       "dropped_corrupt", "dropped_misaddressed")


def collect_transport(transport, registry: MetricsRegistry) -> None:
    """Publish a control-plane transport's delivery accounting (plus
    per-direction channel fault counters for lossy transports)."""
    for name in _TRANSPORT_COUNTERS:
        registry.counter(f"transport.{name}").inc(getattr(transport, name))
    channels = getattr(transport, "channel_stats", None)
    if channels is not None:
        for direction, stats in channels().items():
            collect_channel(stats, registry, direction)


def collect_channel(stats: dict, registry: MetricsRegistry,
                    direction: str) -> None:
    for name, value in stats.items():
        registry.counter(f"channel.{name}",
                         direction=direction).inc(value)


#: Job-latency buckets in model seconds: sub-millisecond warm no-op
#: switches up through multi-hour synthesis queues.
FLEET_LATENCY_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0,
                        900.0, 3600.0, 7200.0, 14400.0)


def collect_fleet(fleet, registry: MetricsRegistry) -> None:
    """Publish a :class:`~repro.control.fleet.FleetScheduler`'s native
    accounting as ``fleet.*`` series: queue depths and per-tenant job
    counts/latency (histogram plus p50/p99 gauges), per-device
    utilization and supervision counters, and fleet totals.  Publishes
    totals — fold into a fresh registry, not a reused one."""
    from repro.control.fleet import quantile

    registry.counter("fleet.jobs_submitted").inc(fleet.jobs_submitted)
    registry.counter("fleet.jobs_failed").inc(fleet.jobs_failed)
    registry.counter("fleet.jobs_requeued").inc(fleet.jobs_requeued)
    registry.gauge("fleet.makespan_seconds").set(
        round(fleet.makespan_seconds, 6))
    depths = fleet.queue_depths()
    for tenant in sorted(fleet.latencies):
        latencies = fleet.latencies[tenant]
        registry.counter("fleet.jobs_completed",
                         tenant=tenant).inc(len(latencies))
        registry.gauge("fleet.queue_depth",
                       tenant=tenant).set(depths.get(tenant, 0))
        registry.gauge("fleet.max_queue_depth", tenant=tenant).set(
            fleet.max_queue_depth.get(tenant, 0))
        histogram = registry.histogram("fleet.job_latency_seconds",
                                       bounds=FLEET_LATENCY_BOUNDS,
                                       tenant=tenant)
        for latency in latencies:
            histogram.observe(round(latency, 9))
        for q, name in ((0.50, "p50"), (0.99, "p99")):
            registry.gauge(f"fleet.job_latency_{name}_seconds",
                           tenant=tenant).set(round(quantile(latencies, q),
                                                    6))
    makespan = fleet.makespan_seconds
    for device in fleet.devices:
        label = device.device_id
        registry.gauge("fleet.device_utilization", device=label).set(
            round(device.utilization(makespan), 6))
        registry.counter("fleet.device_jobs",
                         device=label).inc(device.jobs_completed)
        registry.counter("fleet.device_failures",
                         device=label).inc(device.failures)
        registry.counter("fleet.device_quarantines",
                         device=label).inc(device.quarantines)
        registry.counter("fleet.device_recoveries",
                         device=label).inc(device.recoveries)
        registry.counter("fleet.device_reconfigurations",
                         device=label).inc(device.runtime.reconfigurations)
    stats = fleet.cache.stats
    registry.counter("fleet.cache_hits").inc(stats.hits)
    registry.counter("fleet.cache_misses").inc(stats.misses)
    registry.counter("fleet.cache_coalesced").inc(stats.coalesced)


def zero_transport_series(registry: MetricsRegistry) -> None:
    """Declare the transport series at zero.

    The Sim box has no network stack (it plays leon_ctrl's role itself),
    but per-point snapshots keep a schema-stable ``transport.*`` section
    so sweeps run in the simulator and runs driven over a real transport
    diff cleanly against each other.
    """
    for name in _TRANSPORT_COUNTERS:
        registry.counter(f"transport.{name}")


def simulator_snapshot(sim) -> dict:
    """One full snapshot of every layer a Simulator owns (totals since
    construction — diff two of these for a program-window view)."""
    registry = MetricsRegistry()
    collect_pipeline(sim.cpu, registry)
    collect_fastpath(sim, registry)
    collect_sampling(sim, registry)
    collect_cache(sim.icache, registry)
    collect_cache(sim.dcache, registry)
    collect_ahb(sim.bus, registry)
    collect_apb(sim.apb, registry)
    collect_sram(sim.sram, registry)
    zero_transport_series(registry)
    return registry.snapshot()


def collect_analysis(report, registry: MetricsRegistry) -> None:
    """Publish a static-analysis
    :class:`~repro.analysis.diagnostics.DiagnosticReport` as
    ``analysis.*`` series: total errors/warnings plus one
    ``analysis.findings{code=...}`` counter per diagnostic code, all
    labeled with the report's subject (the workload name)."""
    subject = report.subject
    registry.counter("analysis.errors",
                     subject=subject).inc(len(report.errors))
    registry.counter("analysis.warnings",
                     subject=subject).inc(len(report.warnings))
    for code, count in report.codes().items():
        registry.counter("analysis.findings", subject=subject,
                         code=code).inc(count)


def point_snapshot(after: dict, before: dict) -> dict:
    """Program-window snapshot: delta of two :func:`simulator_snapshot`
    dicts plus derived pipeline occupancy gauges.

    The occupancy model is the documented single-issue in-order one:
    every retired instruction passes through all five stages for one
    cycle each; stall cycles additionally hold a specific stage busy —
    fetch stalls hold FE, memory stalls hold ME, and multi-cycle issue
    (mul/div, stores, interlock bubbles, CTI redirect bubbles) holds EX.
    """
    snap = diff_snapshots(after, before)
    counters = snap["counters"]
    cycles = counters.get("pipeline.cycles", 0)
    if cycles > 0:
        instret = counters.get("pipeline.instructions", 0)
        fetch = counters.get("pipeline.fetch_stall_cycles", 0)
        mem = counters.get("pipeline.mem_stall_cycles", 0)
        annulled = counters.get("pipeline.annulled_slots", 0)
        issue_extra = max(0, cycles - instret - fetch - mem - annulled)
        busy = {
            "FE": instret + annulled + fetch,
            "DE": instret,
            "EX": instret + issue_extra,
            "ME": instret + mem,
            "WR": instret,
        }
        for stage in PIPELINE_STAGES:
            key = f"pipeline.occupancy{{stage={stage}}}"
            snap["gauges"][key] = round(min(1.0, busy[stage] / cycles), 6)
    return snap
