"""Process-local metrics registry: counters, gauges, histograms.

The paper's platform is an observability instrument — the FPX cycle
counter, the streamed traces and the Trace Analyzer all exist so that a
micro-architecture can be *measured*.  The repro grew matching ad-hoc
counters (``cache.CacheStats``, transport ``dropped_*``, per-point sweep
timings); this module gives them one schema and one export path.

Design constraints, in order:

* **Deterministic.**  Snapshots contain only values derived from the
  simulation itself (cycles, event counts) — never wall-clock time or
  process identity — so a serial sweep and a parallel sweep of the same
  space produce byte-identical per-point snapshots.  Callers that want
  host-side timing (the sweep engine does) keep it in a *separate*
  registry that is never persisted into point records.
* **Cheap when disabled.**  A registry built with ``enabled=False``
  hands out shared no-op instruments; the hot simulation loops keep
  their native integer counters and are *collected* into a registry at
  snapshot boundaries instead of paying a method call per event.
* **Snapshot/diff-able.**  :meth:`MetricsRegistry.snapshot` is a plain
  sorted dict; :func:`diff_snapshots` subtracts two of them so tests and
  the per-point pipeline can assert on deltas (the FPX counter's
  arm/freeze semantics, applied to every series).

Series identity is ``name{label=value,...}`` with labels sorted by key —
the flat string form keeps snapshots trivially JSON-stable.
"""

from __future__ import annotations

import json
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "POW2_BOUNDS",
    "diff_snapshots",
    "series_key",
]

#: Default histogram bounds: upper-inclusive powers-of-two minus one
#: (``le`` semantics), matching the native bit-length bucketing used by
#: the cache controller's miss-latency accounting.  A final implicit
#: +inf bucket catches everything above the last bound.
POW2_BOUNDS: tuple[int, ...] = tuple((1 << i) - 1 for i in range(15))


def series_key(name: str, labels: dict | None = None) -> str:
    """Canonical flat identity of one labeled series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (occupancy, utilization, queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution with fixed, explicit bounds.

    ``bounds`` are upper-inclusive (``observe(v)`` lands in the first
    bucket with ``v <= bound``); one extra bucket catches values above
    the last bound.  Fixed bounds keep serialized histograms comparable
    across runs and mergeable across processes.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: tuple = POW2_BOUNDS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def load(self, counts, total_sum) -> None:
        """Merge pre-bucketed native counts (hot-path accumulators keep
        plain lists and are folded in at collection time)."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"expected {len(self.counts)} buckets, got {len(counts)}")
        for i, n in enumerate(counts):
            self.counts[i] += n
        self.count += sum(counts)
        self.sum += total_sum


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value) -> None:
        pass

    def load(self, counts, total_sum) -> None:
        pass


#: Shared no-op instruments: a disabled registry hands these out so the
#: instrumented code path is a single attribute call that does nothing.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Process-local, schema-light metrics store.

    Instruments are created on first use and identified by
    ``(name, labels)``; asking twice returns the same instrument, so
    components can pre-bind them at construction time and pay only an
    attribute access + integer add per event.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = series_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = series_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: tuple = POW2_BOUNDS,
                  **labels) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = series_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view with sorted series keys (JSON-stable)."""
        return {
            "counters": {key: self._counters[key].value
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value
                       for key in sorted(self._gauges)},
            "histograms": {
                key: {
                    "le": list(hist.bounds),
                    "counts": list(hist.counts),
                    "count": hist.count,
                    "sum": hist.sum,
                }
                for key, hist in sorted(self._histograms.items())
            },
        }

    def snapshot_json(self) -> str:
        """Canonical byte-stable serialization of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: Shared disabled registry: the default ``obs`` sink for components
#: constructed without one, so instrumentation never needs None checks.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def diff_snapshots(after: dict, before: dict) -> dict:
    """Delta of two :meth:`MetricsRegistry.snapshot` dicts.

    Every series present in *after* stays present (zero-valued series
    are kept — a stable schema is what makes two runs diffable), with
    counters and histogram bucket counts subtracted and gauges taken
    from *after* (a gauge is a level, not an accumulation).
    """
    before_counters = before.get("counters", {})
    counters = {key: value - before_counters.get(key, 0)
                for key, value in after.get("counters", {}).items()}
    gauges = dict(after.get("gauges", {}))
    histograms = {}
    before_histograms = before.get("histograms", {})
    for key, hist in after.get("histograms", {}).items():
        prior = before_histograms.get(key)
        if prior is None or prior.get("le") != hist["le"]:
            histograms[key] = {k: (list(v) if isinstance(v, list) else v)
                               for k, v in hist.items()}
            continue
        histograms[key] = {
            "le": list(hist["le"]),
            "counts": [a - b for a, b in zip(hist["counts"],
                                             prior["counts"])],
            "count": hist["count"] - prior["count"],
            "sum": hist["sum"] - prior["sum"],
        }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}
