"""Structured event trace: a bounded ring of timestamped typed events.

This is the software analogue of the paper's streamed instrumented
traces (Figure 1: "simulation can provide additional instruction traces
to assist the developer"): where :mod:`repro.analysis.trace` captures
the dense per-access memory trace, the :class:`EventTrace` records the
*sparse* control-plane story — program dispatch, completion, traps,
cache flushes, protocol retransmissions — cycle-stamped so events from
different layers interleave on one timeline.

Events are stamped with the simulation cycle (never wall-clock), so
traces are deterministic and diffable across serial/parallel runs.  The
ring is bounded: when full, the oldest events are dropped and counted,
never silently lost.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass

__all__ = ["Event", "EventTrace"]


@dataclass(frozen=True)
class Event:
    """One timestamped typed event."""

    cycle: int
    kind: str
    fields: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict:
        record = {"cycle": self.cycle, "kind": self.kind}
        record.update(self.fields)
        return record


class EventTrace:
    """Bounded ring buffer of :class:`Event` records."""

    def __init__(self, capacity: int = 4096, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: deque[Event] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, cycle: int, kind: str, **fields) -> None:
        if not self.enabled:
            return
        self.recorded += 1
        self._ring.append(Event(cycle, kind,
                                tuple(sorted(fields.items()))))

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self._ring)

    def events(self, kind: str | None = None) -> list[Event]:
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._ring)

    def to_jsonl(self) -> str:
        """JSON-lines export, one event per line, oldest first."""
        return "\n".join(
            json.dumps(event.as_dict(), sort_keys=True,
                       separators=(",", ":"))
            for event in self._ring)
