"""repro.obs — unified telemetry: metrics registry + event trace.

One schema and one export path for everything the repro measures, the
software analogue of the paper's observability hardware (the FPX cycle
counter, the streamed instrumented traces, the Trace Analyzer):

* :class:`MetricsRegistry` — counters, gauges and histograms with
  labeled series; cheap no-op instruments when disabled; deterministic
  snapshot/diff (cycle-derived values only, never wall-clock).
* :class:`EventTrace` — bounded ring of cycle-stamped typed events with
  JSON-lines export.
* :mod:`repro.obs.collect` — folds the hot layers' native counters
  (pipeline stalls, cache hits/misses, bus wait states, transport
  drops) into a registry at snapshot boundaries.
* :mod:`repro.obs.report` — text/JSON rendering and run-vs-run diffs.
"""

from repro.obs.collect import (
    collect_ahb,
    collect_analysis,
    collect_apb,
    collect_cache,
    collect_fleet,
    collect_pipeline,
    collect_transport,
    point_snapshot,
    simulator_snapshot,
)
from repro.obs.events import Event, EventTrace
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    series_key,
)
from repro.obs.report import diff_reports, render_json, render_text

__all__ = [
    "Counter",
    "Event",
    "EventTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "collect_ahb",
    "collect_analysis",
    "collect_apb",
    "collect_cache",
    "collect_fleet",
    "collect_pipeline",
    "collect_transport",
    "diff_reports",
    "diff_snapshots",
    "point_snapshot",
    "render_json",
    "render_text",
    "series_key",
    "simulator_snapshot",
]
