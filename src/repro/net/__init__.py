"""Network substrate: IP/UDP codecs, the LEON control protocol, channels."""

from repro.net.channel import Channel, ChannelConfig, duplex, pump
from repro.net.packets import (
    Ipv4Packet,
    PacketError,
    UdpDatagram,
    build_udp_packet,
    format_ip,
    internet_checksum,
    parse_ip,
    parse_udp_packet,
)
from repro.net.protocol import (
    Command,
    LeonState,
    ProgramAssembler,
    ProtocolError,
    Response,
    decode_command,
    decode_response,
    packetize_program,
)

__all__ = [
    "Channel", "ChannelConfig", "duplex", "pump",
    "Ipv4Packet", "PacketError", "UdpDatagram", "build_udp_packet",
    "format_ip", "internet_checksum", "parse_ip", "parse_udp_packet",
    "Command", "LeonState", "ProgramAssembler", "ProtocolError", "Response",
    "decode_command", "decode_response", "packetize_program",
]
