"""Network substrate: IP/UDP codecs, the LEON control protocol, channels,
and the scripted fault-injection harness."""

from repro.net.channel import (
    Channel,
    ChannelConfig,
    ChannelStarvation,
    duplex,
    pump,
)
from repro.net.faults import (
    SCENARIOS,
    FaultPhase,
    FaultPlan,
    ScriptedChannel,
    scenario,
    scripted_duplex,
)
from repro.net.packets import (
    Ipv4Packet,
    PacketError,
    UdpDatagram,
    build_udp_packet,
    format_ip,
    internet_checksum,
    parse_ip,
    parse_udp_packet,
)
from repro.net.protocol import (
    Command,
    LeonState,
    ProgramAssembler,
    ProtocolError,
    Response,
    decode_command,
    decode_response,
    packetize_program,
)

__all__ = [
    "Channel", "ChannelConfig", "ChannelStarvation", "duplex", "pump",
    "SCENARIOS", "FaultPhase", "FaultPlan", "ScriptedChannel", "scenario",
    "scripted_duplex",
    "Ipv4Packet", "PacketError", "UdpDatagram", "build_udp_packet",
    "format_ip", "internet_checksum", "parse_ip", "parse_udp_packet",
    "Command", "LeonState", "ProgramAssembler", "ProtocolError", "Response",
    "decode_command", "decode_response", "packetize_program",
]
