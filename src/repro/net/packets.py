"""Byte-exact IPv4 and UDP packet construction and parsing.

"All control packets carry an IP header, UDP header and a payload
specific to the command" (paper §2.6).  The layered protocol wrappers on
the FPX parse these in hardware; here the same parsing/formatting logic
lives in :class:`Ipv4Packet`/:class:`UdpDatagram`, shared between the
control software (client side) and the FPX wrappers (device side), with
real internet checksums so corruption checks are meaningful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

IP_PROTO_UDP = 17
IPV4_VERSION = 4
IPV4_MIN_IHL = 5
DEFAULT_TTL = 64


class PacketError(Exception):
    """Malformed packet (bad version, truncated, checksum mismatch)."""


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def parse_ip(text: str) -> int:
    """Dotted-quad string to 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4 or not all(p.isdigit() and 0 <= int(p) <= 255
                                  for p in parts):
        raise ValueError(f"bad IPv4 address '{text}'")
    value = 0
    for part in parts:
        value = (value << 8) | int(part)
    return value


def format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class UdpDatagram:
    """UDP header + payload."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    HEADER_LEN = 8

    def encode(self, src_ip: int = 0, dst_ip: int = 0) -> bytes:
        """Encode with the UDP checksum over the IPv4 pseudo-header."""
        length = self.HEADER_LEN + len(self.payload)
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = struct.pack("!IIBBH", src_ip, dst_ip, 0, IP_PROTO_UDP, length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted as all-ones
        header = struct.pack("!HHHH", self.src_port, self.dst_port, length,
                             checksum)
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, src_ip: int = 0, dst_ip: int = 0,
               verify_checksum: bool = True) -> "UdpDatagram":
        if len(data) < cls.HEADER_LEN:
            raise PacketError("truncated UDP header")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        if length < cls.HEADER_LEN or length > len(data):
            raise PacketError(f"bad UDP length {length}")
        payload = data[cls.HEADER_LEN:length]
        if verify_checksum and checksum != 0:
            pseudo = struct.pack("!IIBBH", src_ip, dst_ip, 0, IP_PROTO_UDP,
                                 length)
            if internet_checksum(pseudo + data[:length]) != 0:
                raise PacketError("UDP checksum mismatch")
        return cls(src_port, dst_port, payload)


@dataclass
class Ipv4Packet:
    """IPv4 header + payload (no options, no fragmentation — the FPX
    wrappers did not reassemble fragments either; the control protocol
    keeps every command within one datagram)."""

    src_ip: int
    dst_ip: int
    payload: bytes = b""
    protocol: int = IP_PROTO_UDP
    ttl: int = DEFAULT_TTL
    identification: int = 0
    _header_len: int = field(default=20, repr=False)

    HEADER_LEN = 20

    def encode(self) -> bytes:
        total_len = self.HEADER_LEN + len(self.payload)
        header = struct.pack(
            "!BBHHHBBHII",
            (IPV4_VERSION << 4) | IPV4_MIN_IHL, 0, total_len,
            self.identification, 0, self.ttl, self.protocol, 0,
            self.src_ip, self.dst_ip,
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "Ipv4Packet":
        if len(data) < cls.HEADER_LEN:
            raise PacketError("truncated IPv4 header")
        version_ihl = data[0]
        if version_ihl >> 4 != IPV4_VERSION:
            raise PacketError(f"not IPv4 (version {version_ihl >> 4})")
        ihl = (version_ihl & 0xF) * 4
        if ihl < cls.HEADER_LEN or len(data) < ihl:
            raise PacketError("bad IHL")
        if verify_checksum and internet_checksum(data[:ihl]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        total_len = struct.unpack("!H", data[2:4])[0]
        if total_len < ihl or total_len > len(data):
            raise PacketError(f"bad total length {total_len}")
        ttl, protocol = data[8], data[9]
        src_ip, dst_ip = struct.unpack("!II", data[12:20])
        return cls(src_ip=src_ip, dst_ip=dst_ip, payload=data[ihl:total_len],
                   protocol=protocol, ttl=ttl,
                   identification=struct.unpack("!H", data[4:6])[0])


def build_udp_packet(src_ip: int, dst_ip: int, src_port: int, dst_port: int,
                     payload: bytes, identification: int = 0) -> bytes:
    """One-call IP(UDP(payload)) encoder — what the Java servlet's UDP
    client effectively produced."""
    udp = UdpDatagram(src_port, dst_port, payload).encode(src_ip, dst_ip)
    return Ipv4Packet(src_ip=src_ip, dst_ip=dst_ip, payload=udp,
                      identification=identification).encode()


def parse_udp_packet(data: bytes) -> tuple[Ipv4Packet, UdpDatagram]:
    """Decode and checksum-verify an IP/UDP packet."""
    ip = Ipv4Packet.decode(data)
    if ip.protocol != IP_PROTO_UDP:
        raise PacketError(f"not UDP (protocol {ip.protocol})")
    udp = UdpDatagram.decode(ip.payload, ip.src_ip, ip.dst_ip)
    return ip, udp
