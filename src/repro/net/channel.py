"""Datagram channel with UDP's failure modes, deterministic and seeded.

The paper's control path runs over the open Internet, so the protocol
must survive loss, reordering and duplication ("as UDP protocol does not
guarantee order of delivery").  :class:`Channel` injects exactly those
faults with a seeded generator so tests and benchmarks are reproducible.

A channel is unidirectional; :func:`duplex` builds a matched pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ChannelConfig:
    """Fault probabilities, each applied independently per datagram."""

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0      # probability a datagram is delayed past
    max_delay_slots: int = 3  # ...up to this many later deliveries
    corrupt: float = 0.0      # single byte flip (checksums should catch it)

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        # A delayed datagram is postponed by 1..max_delay_slots rounds,
        # drawn as integers(1, max_delay_slots + 1) — zero or a negative
        # would crash the draw (low >= high) the first time reorder hits.
        if self.max_delay_slots < 1:
            raise ValueError("max_delay_slots must be >= 1")


class ChannelStarvation(RuntimeError):
    """A drain/pump round budget ran out with traffic still in flight."""

    def __init__(self, channel: "Channel", max_rounds: int):
        self.in_flight = len(channel._in_flight)
        self.delayed = len(channel._delayed)
        super().__init__(
            f"channel not idle after {max_rounds} delivery rounds "
            f"({self.in_flight} in flight, {self.delayed} delayed)")


class Channel:
    """Queue of in-flight datagrams with fault injection on delivery."""

    def __init__(self, config: ChannelConfig | None = None, seed: int = 1):
        self.config = config or ChannelConfig()
        self._rng = np.random.default_rng(seed)
        self._in_flight: deque[bytes] = deque()
        self._delayed: list[tuple[int, bytes]] = []  # (slots_left, datagram)
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0

    def send(self, datagram: bytes) -> None:
        self._in_flight.append(bytes(datagram))
        self.sent += 1

    def deliver(self) -> list[bytes]:
        """Drain the channel, applying faults; returns datagrams in their
        (possibly shuffled) arrival order."""
        config = self.config
        arriving: list[bytes] = []

        # Age previously delayed datagrams.
        still_delayed = []
        for slots, datagram in self._delayed:
            if slots <= 1:
                arriving.append(datagram)
                self.reordered += 1
            else:
                still_delayed.append((slots - 1, datagram))
        self._delayed = still_delayed

        while self._in_flight:
            datagram = self._in_flight.popleft()
            if config.loss and self._rng.random() < config.loss:
                self.dropped += 1
                continue
            # A zero-length datagram has no byte to flip; corrupting it
            # would crash the RNG's integers(0) draw, so it passes clean.
            if (config.corrupt and len(datagram) > 0
                    and self._rng.random() < config.corrupt):
                index = int(self._rng.integers(len(datagram)))
                mutated = bytearray(datagram)
                mutated[index] ^= 0xFF
                datagram = bytes(mutated)
                self.corrupted += 1
            if config.reorder and self._rng.random() < config.reorder:
                slots = int(self._rng.integers(1, config.max_delay_slots + 1))
                self._delayed.append((slots, datagram))
                continue
            arriving.append(datagram)
            if config.duplicate and self._rng.random() < config.duplicate:
                arriving.append(datagram)
                self.duplicated += 1

        self.delivered += len(arriving)
        return arriving

    def drain_all(self, max_rounds: int = 64) -> list[bytes]:
        """Deliver until nothing is left in flight or delayed.

        Raises :class:`ChannelStarvation` if the round budget runs out
        with traffic still queued — returning silently would report a
        successful drain while datagrams are still stuck in the channel.
        """
        out: list[bytes] = []
        rounds = 0
        while not self.idle:
            if rounds >= max_rounds:
                raise ChannelStarvation(self, max_rounds)
            out.extend(self.deliver())
            rounds += 1
        return out

    @property
    def idle(self) -> bool:
        return not self._in_flight and not self._delayed

    def stats(self) -> dict:
        return {
            "sent": self.sent, "delivered": self.delivered,
            "dropped": self.dropped, "duplicated": self.duplicated,
            "reordered": self.reordered, "corrupted": self.corrupted,
        }


def duplex(config: ChannelConfig | None = None,
           seed: int = 1) -> tuple[Channel, Channel]:
    """A (client→device, device→client) channel pair with distinct seeds."""
    return Channel(config, seed), Channel(config, seed + 0x9E37)


Handler = Callable[[bytes], None]


def pump(channel: Channel, handler: Handler, max_rounds: int = 64) -> int:
    """Deliver everything in *channel* into *handler*; returns count.

    Like :meth:`Channel.drain_all`, raises :class:`ChannelStarvation`
    instead of silently abandoning delayed datagrams when the round
    budget is exhausted.
    """
    count = 0
    rounds = 0
    while not channel.idle:
        if rounds >= max_rounds:
            raise ChannelStarvation(channel, max_rounds)
        for datagram in channel.deliver():
            handler(datagram)
            count += 1
        rounds += 1
    return count
