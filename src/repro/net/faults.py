"""FaultPlan: seeded, scriptable chaos scenarios for the control plane.

:class:`~repro.net.channel.Channel` injects per-datagram faults with
*stationary* probabilities — good for steady background loss, useless
for the failure shapes an open-Internet control path actually sees:
bursts, outages, duplicate storms.  A :class:`FaultPlan` scripts the
fault model *per delivery round*: an ordered list of
:class:`FaultPhase` segments, each holding a ChannelConfig (and
optionally a total blackout) for a number of rounds, cycling or holding
its last phase.  :class:`ScriptedChannel` plays a plan over the normal
channel machinery, so everything stays deterministic under a seed —
the same plan + seed reproduces the same datagram-level history.

Plans compose over any channel-based transport:
:class:`~repro.control.transport.ChaosTransport` drives one plan per
direction (asymmetric links are one line of configuration), and the
named :data:`SCENARIOS` registry gives tests, benchmarks and CI a
shared vocabulary ("burst-loss", "blackout", ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.channel import Channel, ChannelConfig

__all__ = [
    "CLEAN",
    "FaultPhase",
    "FaultPlan",
    "SCENARIOS",
    "ScriptedChannel",
    "blackout",
    "burst_loss",
    "device_down",
    "duplicate_storm",
    "reorder_heavy",
    "scenario",
    "scripted_duplex",
]

#: A fault-free channel configuration (shared default phase config).
CLEAN = ChannelConfig()


@dataclass(frozen=True)
class FaultPhase:
    """One scripted segment: a fault model held for *rounds* deliveries.

    ``blackout`` drops every datagram that would be delivered during the
    phase — including ones already delayed by earlier reordering — which
    is stronger than ``loss=1.0`` (that only gates newly arriving
    traffic).
    """

    rounds: int
    config: ChannelConfig = CLEAN
    blackout: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("a phase must cover at least one round")


@dataclass(frozen=True)
class FaultPlan:
    """A named script of fault phases, indexed by delivery round.

    With ``repeat=True`` the phase sequence cycles forever (periodic
    impairments: burst loss, flapping links); with ``repeat=False`` the
    last phase holds once reached (one-shot outages with a recovery
    tail).  Scenario builders that end on a non-clean phase and do not
    repeat would impair the link permanently — end one-shot plans with
    a clean phase.
    """

    name: str
    phases: tuple[FaultPhase, ...]
    repeat: bool = True

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a plan needs at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def period(self) -> int:
        return sum(phase.rounds for phase in self.phases)

    def phase_at(self, round_index: int) -> FaultPhase:
        """The phase governing delivery round *round_index* (0-based)."""
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        if self.repeat:
            round_index %= self.period
        for phase in self.phases:
            if round_index < phase.rounds:
                return phase
            round_index -= phase.rounds
        return self.phases[-1]  # past the end of a one-shot plan: hold


class ScriptedChannel(Channel):
    """A Channel whose fault model follows a :class:`FaultPlan`.

    Each call to :meth:`deliver` advances the plan by one round and
    applies that round's phase; everything else (seeding, stats,
    drain/pump semantics) is inherited.
    """

    def __init__(self, plan: FaultPlan, seed: int = 1):
        super().__init__(plan.phase_at(0).config, seed)
        self.plan = plan
        self.round_index = 0
        self.blackout_dropped = 0

    def deliver(self) -> list[bytes]:
        phase = self.plan.phase_at(self.round_index)
        self.round_index += 1
        self.config = phase.config
        batch = super().deliver()
        if phase.blackout and batch:
            self.blackout_dropped += len(batch)
            self.dropped += len(batch)
            self.delivered -= len(batch)
            return []
        return batch

    def stats(self) -> dict:
        stats = super().stats()
        stats["blackout_dropped"] = self.blackout_dropped
        return stats


def scripted_duplex(plan: FaultPlan, seed: int = 1,
                    return_plan: FaultPlan | None = None
                    ) -> tuple[ScriptedChannel, ScriptedChannel]:
    """A (client→device, device→client) scripted pair with distinct
    seeds; pass *return_plan* for per-direction asymmetry."""
    return (ScriptedChannel(plan, seed),
            ScriptedChannel(return_plan or plan, seed + 0x9E37))


# ---------------------------------------------------------------------------
# Scenario builders
# ---------------------------------------------------------------------------


def burst_loss(period: int = 7, burst: int = 2,
               loss: float = 0.9) -> FaultPlan:
    """Periodic loss bursts: *burst* rounds of heavy loss out of every
    *period* rounds (congestion episodes, not uniform attrition).

    The default period is prime on purpose: the client's retry backoff
    doubles its polling window each attempt, so a power-of-two period
    phase-locks every retransmission into the same burst offset — the
    deterministic analogue of synchronized retries melting a congested
    link.  (Scripting exactly that is one line: pass ``period=8``.)
    """
    if not 0 < burst < period:
        raise ValueError("need 0 < burst < period")
    return FaultPlan("burst-loss", (
        FaultPhase(burst, ChannelConfig(loss=loss)),
        FaultPhase(period - burst),
    ))


def blackout(before: int = 3, duration: int = 6) -> FaultPlan:
    """A one-shot total outage: *before* clean rounds, then *duration*
    rounds where nothing gets through, then clean forever."""
    return FaultPlan("blackout", (
        FaultPhase(before),
        FaultPhase(duration, blackout=True),
        FaultPhase(1),
    ), repeat=False)


def duplicate_storm(duplicate: float = 0.85,
                    reorder: float = 0.2) -> FaultPlan:
    """Heavy duplication with mild reordering: the same response arrives
    over and over, often out of order — the stale/duplicate-suppression
    stress case."""
    return FaultPlan("duplicate-storm", (
        FaultPhase(1, ChannelConfig(duplicate=duplicate, reorder=reorder,
                                    max_delay_slots=2)),
    ))


def reorder_heavy(reorder: float = 0.75, max_delay_slots: int = 4,
                  duplicate: float = 0.1) -> FaultPlan:
    """Most datagrams delayed several rounds: late responses from old
    requests interleave with fresh ones."""
    return FaultPlan("reorder-heavy", (
        FaultPhase(1, ChannelConfig(reorder=reorder,
                                    max_delay_slots=max_delay_slots,
                                    duplicate=duplicate)),
    ))


def device_down() -> FaultPlan:
    """A permanently black link: every round is a blackout, forever.

    This is the hard-failure shape a fleet supervisor must survive — a
    node that will never answer, however patient the retry budget — as
    opposed to :func:`blackout`'s transient outage with a recovery
    tail.  Pair it with healthier plans in a per-boot schedule (see
    :class:`repro.control.fleet.ChaosClientFactory`) to script a node
    that wedges and then comes back after a rebuild.
    """
    return FaultPlan("device-down", (FaultPhase(1, blackout=True),))


#: Named scenarios shared by the chaos test-suite, benchmarks and CI.
SCENARIOS: dict[str, "FaultPlan"] = {}


def scenario(name: str) -> FaultPlan:
    """Look up a named scenario ("burst-loss", "blackout", ...)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown fault scenario {name!r}; known: "
                       f"{sorted(SCENARIOS)}") from None


for _plan in (burst_loss(), blackout(), duplicate_storm(), reorder_heavy(),
              device_down()):
    SCENARIOS[_plan.name] = _plan
del _plan
