"""The LEON control protocol: command codes and payload codecs (paper §2.6).

Commands carried in UDP payloads, identified by a 1-byte command code so
the VHDL state machine (here: :mod:`repro.fpx.cpp`) can dispatch
"uniquely and efficiently":

* ``LEON_STATUS`` — is the processor up?  Response carries a state byte
  and the cycle counter.
* ``LOAD_PROGRAM`` — program bytes, multi-packet capable: each packet has
  a sequence number (UDP does not guarantee order of delivery), the total
  packet count, the absolute memory address for its chunk and the chunk
  length (trailing bytes of the datagram beyond the length are ignored,
  as the paper specifies).
* ``START_LEON`` — begin execution of the loaded program; optional
  explicit entry address (0 = base of the loaded program).
* ``READ_MEMORY`` — fetch a word range; the Packet Generator answers with
  the data.

Responses (from the FPX's packet generator) set the top bit of the
command code; ``ERROR`` reports the leon_ctrl error states used for
hardware debugging (paper §4.1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum


class Command(IntEnum):
    LEON_STATUS = 0x01
    LOAD_PROGRAM = 0x02
    START_LEON = 0x03
    READ_MEMORY = 0x04
    RESTART = 0x05  # paper 2.1: leon_ctrl directs LEON (Restart, Execute)
    READ_TRACE = 0x06  # Fig 1: stream instrumented traces off the FPX


class Response(IntEnum):
    STATUS = 0x81
    LOAD_ACK = 0x82
    STARTED = 0x83
    MEMORY_DATA = 0x84
    RESTARTED = 0x85
    TRACE_DATA = 0x86
    ERROR = 0xEE


class LeonState(IntEnum):
    """States reported in STATUS responses (leon_ctrl's view)."""

    RESET = 0
    POLLING = 1     # disconnected, waiting for a program
    LOADING = 2     # program packets arriving
    RUNNING = 3
    DONE = 4
    ERROR = 5


class ProtocolError(Exception):
    """Malformed command payload."""


#: Default chunk size for program loading.  Deliberately small so that any
#: realistic program exercises the multi-packet path with sequence numbers.
DEFAULT_CHUNK = 128

#: Maximum bytes a READ_MEMORY response will carry.
MAX_READ_BYTES = 1024

#: Maximum missing-chunk sequence numbers a LOAD_ACK will enumerate.
#: A response listing the first few gaps is enough for the client to
#: retransmit selectively; the next ack reports whatever remains.
MAX_ACK_MISSING = 64


# ---------------------------------------------------------------------------
# Request tags (reliable-request extension)
# ---------------------------------------------------------------------------
#
# The client may append a 4-byte trailer — magic, u16 sequence number,
# closing magic — after any command payload; the device echoes the same
# trailer on its response.  The trailer rides *behind* the structured
# fields every decoder reads, so an untagged seed device simply ignores
# it (all command codecs are prefix decoders and "trailing bytes ... are
# ignored, as the paper specifies"), and a seed client never receives a
# tag because the device only echoes what the request carried.  Tagged
# clients use the echoed sequence number to tell a response to *this*
# request apart from a stale or duplicated response to an earlier one.

TAG_MAGIC = 0xA7
TAG_CLOSE = 0x5A
TAG_LEN = 4
MAX_TAG_SEQ = 0xFFFF


def encode_tag(seq: int) -> bytes:
    """The 4-byte request-tag trailer for sequence number *seq*."""
    if not 0 <= seq <= MAX_TAG_SEQ:
        raise ProtocolError(f"tag sequence {seq} out of range")
    return struct.pack("!BHB", TAG_MAGIC, seq, TAG_CLOSE)


def tag_payload(payload: bytes, seq: int) -> bytes:
    """Append a request tag to a command or response payload."""
    return payload + encode_tag(seq)


def _parse_tag(trailer: bytes) -> int | None:
    """Decode a trailer as a request tag; None if it is not one.

    Callers pass exactly the bytes *beyond* the structured payload, so a
    data payload that happens to end in the magic bytes can never be
    misread — only a trailer at the precise post-payload offset counts.
    """
    if (len(trailer) != TAG_LEN or trailer[0] != TAG_MAGIC
            or trailer[3] != TAG_CLOSE):
        return None
    return struct.unpack("!H", trailer[1:3])[0]


# ---------------------------------------------------------------------------
# Command payload codecs
# ---------------------------------------------------------------------------


def encode_status_request() -> bytes:
    return bytes([Command.LEON_STATUS])


def encode_restart() -> bytes:
    return bytes([Command.RESTART])


def encode_load_chunk(seq: int, total: int, address: int, data: bytes) -> bytes:
    if not 0 <= seq < total <= 0xFFFF:
        raise ProtocolError(f"bad sequence {seq}/{total}")
    if len(data) > 0xFFFF:
        raise ProtocolError("chunk too large")
    return struct.pack("!BHHIH", Command.LOAD_PROGRAM, seq, total,
                       address, len(data)) + data


def encode_start(entry: int = 0) -> bytes:
    return struct.pack("!BI", Command.START_LEON, entry)


def encode_read_trace(offset: int, length: int = 512) -> bytes:
    """Request *length* bytes of the serialized memory trace starting at
    *offset* (Figure 1's trace-streaming path; the trace format is
    :meth:`repro.analysis.trace.MemoryTrace.to_bytes`)."""
    if not 0 < length <= MAX_READ_BYTES:
        raise ProtocolError(f"trace read length {length} out of range")
    return struct.pack("!BIH", Command.READ_TRACE, offset, length)


def encode_read_memory(address: int, length: int = 4) -> bytes:
    if not 0 < length <= MAX_READ_BYTES:
        raise ProtocolError(f"read length {length} out of range")
    return struct.pack("!BIH", Command.READ_MEMORY, address, length)


@dataclass(frozen=True)
class LoadChunk:
    seq: int
    total: int
    address: int
    data: bytes


@dataclass(frozen=True)
class StartRequest:
    entry: int


@dataclass(frozen=True)
class ReadRequest:
    address: int
    length: int


@dataclass(frozen=True)
class StatusRequest:
    pass


@dataclass(frozen=True)
class RestartRequest:
    pass


@dataclass(frozen=True)
class TraceRequest:
    offset: int
    length: int


def _decode_command(payload: bytes):
    """Decode a command payload; returns (request, structured_end)."""
    if not payload:
        raise ProtocolError("empty command payload")
    code = payload[0]
    if code == Command.LEON_STATUS:
        return StatusRequest(), 1
    if code == Command.RESTART:
        return RestartRequest(), 1
    if code == Command.LOAD_PROGRAM:
        if len(payload) < 11:
            raise ProtocolError("truncated LOAD_PROGRAM")
        seq, total, address, length = struct.unpack("!HHIH", payload[1:11])
        data = payload[11:11 + length]
        if len(data) < length:
            raise ProtocolError("LOAD_PROGRAM shorter than its length field")
        # Bytes beyond `length` are ignored, per the paper.
        if not seq < total:
            raise ProtocolError(f"bad sequence {seq}/{total}")
        return LoadChunk(seq, total, address, data), 11 + length
    if code == Command.START_LEON:
        if len(payload) < 5:
            raise ProtocolError("truncated START_LEON")
        return StartRequest(struct.unpack("!I", payload[1:5])[0]), 5
    if code == Command.READ_TRACE:
        if len(payload) < 7:
            raise ProtocolError("truncated READ_TRACE")
        offset, length = struct.unpack("!IH", payload[1:7])
        if not 0 < length <= MAX_READ_BYTES:
            raise ProtocolError(f"trace read length {length} out of range")
        return TraceRequest(offset, length), 7
    if code == Command.READ_MEMORY:
        if len(payload) < 7:
            raise ProtocolError("truncated READ_MEMORY")
        address, length = struct.unpack("!IH", payload[1:7])
        if not 0 < length <= MAX_READ_BYTES:
            raise ProtocolError(f"read length {length} out of range")
        return ReadRequest(address, length), 7
    raise ProtocolError(f"unknown command code 0x{code:02x}")


def decode_command(payload: bytes):
    """Decode a command payload into its request object."""
    return _decode_command(payload)[0]


def decode_command_tagged(payload: bytes):
    """Decode a command and its optional request tag; returns
    ``(request, seq | None)``.  Untagged (seed-format) payloads yield a
    ``None`` tag."""
    command, end = _decode_command(payload)
    return command, _parse_tag(payload[end:])


# ---------------------------------------------------------------------------
# Response payload codecs
# ---------------------------------------------------------------------------


def encode_status_response(state: LeonState, cycles: int) -> bytes:
    return struct.pack("!BBI", Response.STATUS, state, cycles & 0xFFFF_FFFF)


def encode_load_ack(received: int, total: int,
                    missing: tuple[int, ...] = ()) -> bytes:
    """Ack a LOAD_PROGRAM chunk with reassembly progress.

    The optional *missing* list enumerates sequence numbers the device
    has not yet seen (capped at :data:`MAX_ACK_MISSING`), letting the
    client retransmit only lost chunks.  The field trails the original
    fixed header, so a decoder that only reads (received, total) — the
    seed wire format — still parses these payloads.
    """
    head = struct.pack("!BHH", Response.LOAD_ACK, received, total)
    listed = tuple(missing)[:MAX_ACK_MISSING]
    if not listed:
        return head
    return head + struct.pack(f"!B{len(listed)}H", len(listed), *listed)


def encode_started(entry: int) -> bytes:
    return struct.pack("!BI", Response.STARTED, entry)


def encode_restarted() -> bytes:
    return bytes([Response.RESTARTED])


def encode_trace_data(total: int, offset: int, data: bytes) -> bytes:
    return struct.pack("!BIIH", Response.TRACE_DATA, total, offset,
                       len(data)) + data


def encode_memory_data(address: int, data: bytes) -> bytes:
    return struct.pack("!BIH", Response.MEMORY_DATA, address, len(data)) + data


def encode_error(code: int, message: str = "") -> bytes:
    text = message.encode()[:255]
    return struct.pack("!BBB", Response.ERROR, code & 0xFF, len(text)) + text


@dataclass(frozen=True)
class StatusResponse:
    state: LeonState
    cycles: int


@dataclass(frozen=True)
class LoadAck:
    received: int
    total: int
    #: Sequence numbers the device reports as not yet received (possibly
    #: truncated to MAX_ACK_MISSING); empty also for seed-format acks.
    missing: tuple[int, ...] = ()


@dataclass(frozen=True)
class Started:
    entry: int


@dataclass(frozen=True)
class Restarted:
    pass


@dataclass(frozen=True)
class MemoryData:
    address: int
    data: bytes


@dataclass(frozen=True)
class TraceData:
    total: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class ErrorResponse:
    code: int
    message: str


def _unpack(fmt: str, payload: bytes, offset: int, what: str) -> tuple:
    """``struct.unpack`` with an explicit length check.

    Responses arrive off an unreliable channel, so a short datagram is a
    protocol condition (:class:`ProtocolError`), never a
    ``struct.error``/``IndexError`` leaking out of the decoder.
    """
    end = offset + struct.calcsize(fmt)
    if len(payload) < end:
        raise ProtocolError(f"truncated {what}")
    return struct.unpack(fmt, payload[offset:end])


def _decode_response(payload: bytes):
    """Decode a response payload; returns (response, structured_end)."""
    if not payload:
        raise ProtocolError("empty response payload")
    code = payload[0]
    if code == Response.STATUS:
        state, cycles = _unpack("!BI", payload, 1, "STATUS")
        try:
            leon_state = LeonState(state)
        except ValueError:
            raise ProtocolError(f"unknown LEON state {state}") from None
        return StatusResponse(leon_state, cycles), 6
    if code == Response.LOAD_ACK:
        received, total = _unpack("!HH", payload, 1, "LOAD_ACK")
        missing: tuple[int, ...] = ()
        end = 5
        # A count byte can never exceed MAX_ACK_MISSING, so anything
        # larger is not a missing list — on a tagged empty-missing ack
        # it is the first trailer byte (TAG_MAGIC > MAX_ACK_MISSING).
        if len(payload) > 5 and payload[5] <= MAX_ACK_MISSING:
            count = payload[5]
            missing = _unpack(f"!{count}H", payload, 6,
                              "LOAD_ACK missing list")
            end = 6 + 2 * count
        return LoadAck(received, total, missing), end
    if code == Response.STARTED:
        return Started(_unpack("!I", payload, 1, "STARTED")[0]), 5
    if code == Response.RESTARTED:
        return Restarted(), 1
    if code == Response.TRACE_DATA:
        total, offset, length = _unpack("!IIH", payload, 1, "TRACE_DATA")
        data = payload[11:11 + length]
        if len(data) < length:
            raise ProtocolError("TRACE_DATA shorter than its length field")
        return TraceData(total, offset, data), 11 + length
    if code == Response.MEMORY_DATA:
        address, length = _unpack("!IH", payload, 1, "MEMORY_DATA")
        data = payload[7:7 + length]
        if len(data) < length:
            raise ProtocolError("MEMORY_DATA shorter than its length field")
        return MemoryData(address, data), 7 + length
    if code == Response.ERROR:
        err, length = _unpack("!BB", payload, 1, "ERROR")
        text = payload[3:3 + length]
        if len(text) < length:
            raise ProtocolError("ERROR shorter than its length field")
        return ErrorResponse(err, text.decode(errors="replace")), 3 + length
    raise ProtocolError(f"unknown response code 0x{code:02x}")


def decode_response(payload: bytes):
    return _decode_response(payload)[0]


def decode_response_tagged(payload: bytes):
    """Decode a response and its optional echoed request tag; returns
    ``(response, seq | None)``."""
    response, end = _decode_response(payload)
    return response, _parse_tag(payload[end:])


# ---------------------------------------------------------------------------
# Program packetizer (the Forth program of Figure 4)
# ---------------------------------------------------------------------------


def packetize_program(base: int, blob: bytes,
                      chunk: int = DEFAULT_CHUNK) -> list[bytes]:
    """Split a flat binary into LOAD_PROGRAM payloads.

    "If the binary does not fit in 1 packet, they can be sent as multiple
    packets and the packet sequence number ... will need to [be] used to
    mark the order (as UDP protocol does not guarantee order of
    delivery)."
    """
    if not blob:
        raise ProtocolError("empty program")
    if chunk < 4 or chunk % 4:
        raise ProtocolError("chunk must be a positive multiple of 4")
    chunks = [blob[i:i + chunk] for i in range(0, len(blob), chunk)]
    total = len(chunks)
    return [
        encode_load_chunk(seq, total, base + seq * chunk, data)
        for seq, data in enumerate(chunks)
    ]


class ProgramAssembler:
    """Device-side reassembly of a multi-packet program load.

    Tolerates reordering and duplicates; completeness is "all sequence
    numbers 0..total-1 seen".  A packet with a different ``total`` resets
    the assembler (a new load supersedes a half-finished one).
    """

    def __init__(self):
        self.total: int | None = None
        self.chunks: dict[int, LoadChunk] = {}

    def add(self, chunk: LoadChunk) -> bool:
        """Accept one chunk; returns True when the program is complete."""
        if self.total is not None and chunk.total != self.total:
            self.reset()
        self.total = chunk.total
        self.chunks[chunk.seq] = chunk
        return self.complete

    @property
    def complete(self) -> bool:
        return self.total is not None and len(self.chunks) == self.total

    @property
    def received(self) -> int:
        return len(self.chunks)

    def missing(self) -> tuple[int, ...]:
        """Sequence numbers not yet received, ascending (empty until the
        first chunk announces the total)."""
        if self.total is None:
            return ()
        return tuple(seq for seq in range(self.total)
                     if seq not in self.chunks)

    def base_address(self) -> int:
        if not self.chunks:
            raise ProtocolError("no chunks received")
        return min(chunk.address for chunk in self.chunks.values())

    def writes(self) -> list[tuple[int, bytes]]:
        """(address, data) pairs in sequence order."""
        return [
            (chunk.address, chunk.data)
            for _, chunk in sorted(self.chunks.items())
        ]

    def reset(self) -> None:
        self.total = None
        self.chunks.clear()
