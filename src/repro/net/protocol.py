"""The LEON control protocol: command codes and payload codecs (paper §2.6).

Commands carried in UDP payloads, identified by a 1-byte command code so
the VHDL state machine (here: :mod:`repro.fpx.cpp`) can dispatch
"uniquely and efficiently":

* ``LEON_STATUS`` — is the processor up?  Response carries a state byte
  and the cycle counter.
* ``LOAD_PROGRAM`` — program bytes, multi-packet capable: each packet has
  a sequence number (UDP does not guarantee order of delivery), the total
  packet count, the absolute memory address for its chunk and the chunk
  length (trailing bytes of the datagram beyond the length are ignored,
  as the paper specifies).
* ``START_LEON`` — begin execution of the loaded program; optional
  explicit entry address (0 = base of the loaded program).
* ``READ_MEMORY`` — fetch a word range; the Packet Generator answers with
  the data.

Responses (from the FPX's packet generator) set the top bit of the
command code; ``ERROR`` reports the leon_ctrl error states used for
hardware debugging (paper §4.1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum


class Command(IntEnum):
    LEON_STATUS = 0x01
    LOAD_PROGRAM = 0x02
    START_LEON = 0x03
    READ_MEMORY = 0x04
    RESTART = 0x05  # paper 2.1: leon_ctrl directs LEON (Restart, Execute)
    READ_TRACE = 0x06  # Fig 1: stream instrumented traces off the FPX


class Response(IntEnum):
    STATUS = 0x81
    LOAD_ACK = 0x82
    STARTED = 0x83
    MEMORY_DATA = 0x84
    RESTARTED = 0x85
    TRACE_DATA = 0x86
    ERROR = 0xEE


class LeonState(IntEnum):
    """States reported in STATUS responses (leon_ctrl's view)."""

    RESET = 0
    POLLING = 1     # disconnected, waiting for a program
    LOADING = 2     # program packets arriving
    RUNNING = 3
    DONE = 4
    ERROR = 5


class ProtocolError(Exception):
    """Malformed command payload."""


#: Default chunk size for program loading.  Deliberately small so that any
#: realistic program exercises the multi-packet path with sequence numbers.
DEFAULT_CHUNK = 128

#: Maximum bytes a READ_MEMORY response will carry.
MAX_READ_BYTES = 1024

#: Maximum missing-chunk sequence numbers a LOAD_ACK will enumerate.
#: A response listing the first few gaps is enough for the client to
#: retransmit selectively; the next ack reports whatever remains.
MAX_ACK_MISSING = 64


# ---------------------------------------------------------------------------
# Command payload codecs
# ---------------------------------------------------------------------------


def encode_status_request() -> bytes:
    return bytes([Command.LEON_STATUS])


def encode_restart() -> bytes:
    return bytes([Command.RESTART])


def encode_load_chunk(seq: int, total: int, address: int, data: bytes) -> bytes:
    if not 0 <= seq < total <= 0xFFFF:
        raise ProtocolError(f"bad sequence {seq}/{total}")
    if len(data) > 0xFFFF:
        raise ProtocolError("chunk too large")
    return struct.pack("!BHHIH", Command.LOAD_PROGRAM, seq, total,
                       address, len(data)) + data


def encode_start(entry: int = 0) -> bytes:
    return struct.pack("!BI", Command.START_LEON, entry)


def encode_read_trace(offset: int, length: int = 512) -> bytes:
    """Request *length* bytes of the serialized memory trace starting at
    *offset* (Figure 1's trace-streaming path; the trace format is
    :meth:`repro.analysis.trace.MemoryTrace.to_bytes`)."""
    if not 0 < length <= MAX_READ_BYTES:
        raise ProtocolError(f"trace read length {length} out of range")
    return struct.pack("!BIH", Command.READ_TRACE, offset, length)


def encode_read_memory(address: int, length: int = 4) -> bytes:
    if not 0 < length <= MAX_READ_BYTES:
        raise ProtocolError(f"read length {length} out of range")
    return struct.pack("!BIH", Command.READ_MEMORY, address, length)


@dataclass(frozen=True)
class LoadChunk:
    seq: int
    total: int
    address: int
    data: bytes


@dataclass(frozen=True)
class StartRequest:
    entry: int


@dataclass(frozen=True)
class ReadRequest:
    address: int
    length: int


@dataclass(frozen=True)
class StatusRequest:
    pass


@dataclass(frozen=True)
class RestartRequest:
    pass


@dataclass(frozen=True)
class TraceRequest:
    offset: int
    length: int


def decode_command(payload: bytes):
    """Decode a command payload into its request object."""
    if not payload:
        raise ProtocolError("empty command payload")
    code = payload[0]
    if code == Command.LEON_STATUS:
        return StatusRequest()
    if code == Command.RESTART:
        return RestartRequest()
    if code == Command.LOAD_PROGRAM:
        if len(payload) < 11:
            raise ProtocolError("truncated LOAD_PROGRAM")
        seq, total, address, length = struct.unpack("!HHIH", payload[1:11])
        data = payload[11:11 + length]
        if len(data) < length:
            raise ProtocolError("LOAD_PROGRAM shorter than its length field")
        # Bytes beyond `length` are ignored, per the paper.
        if not seq < total:
            raise ProtocolError(f"bad sequence {seq}/{total}")
        return LoadChunk(seq, total, address, data)
    if code == Command.START_LEON:
        if len(payload) < 5:
            raise ProtocolError("truncated START_LEON")
        return StartRequest(struct.unpack("!I", payload[1:5])[0])
    if code == Command.READ_TRACE:
        if len(payload) < 7:
            raise ProtocolError("truncated READ_TRACE")
        offset, length = struct.unpack("!IH", payload[1:7])
        if not 0 < length <= MAX_READ_BYTES:
            raise ProtocolError(f"trace read length {length} out of range")
        return TraceRequest(offset, length)
    if code == Command.READ_MEMORY:
        if len(payload) < 7:
            raise ProtocolError("truncated READ_MEMORY")
        address, length = struct.unpack("!IH", payload[1:7])
        if not 0 < length <= MAX_READ_BYTES:
            raise ProtocolError(f"read length {length} out of range")
        return ReadRequest(address, length)
    raise ProtocolError(f"unknown command code 0x{code:02x}")


# ---------------------------------------------------------------------------
# Response payload codecs
# ---------------------------------------------------------------------------


def encode_status_response(state: LeonState, cycles: int) -> bytes:
    return struct.pack("!BBI", Response.STATUS, state, cycles & 0xFFFF_FFFF)


def encode_load_ack(received: int, total: int,
                    missing: tuple[int, ...] = ()) -> bytes:
    """Ack a LOAD_PROGRAM chunk with reassembly progress.

    The optional *missing* list enumerates sequence numbers the device
    has not yet seen (capped at :data:`MAX_ACK_MISSING`), letting the
    client retransmit only lost chunks.  The field trails the original
    fixed header, so a decoder that only reads (received, total) — the
    seed wire format — still parses these payloads.
    """
    head = struct.pack("!BHH", Response.LOAD_ACK, received, total)
    listed = tuple(missing)[:MAX_ACK_MISSING]
    if not listed:
        return head
    return head + struct.pack(f"!B{len(listed)}H", len(listed), *listed)


def encode_started(entry: int) -> bytes:
    return struct.pack("!BI", Response.STARTED, entry)


def encode_restarted() -> bytes:
    return bytes([Response.RESTARTED])


def encode_trace_data(total: int, offset: int, data: bytes) -> bytes:
    return struct.pack("!BIIH", Response.TRACE_DATA, total, offset,
                       len(data)) + data


def encode_memory_data(address: int, data: bytes) -> bytes:
    return struct.pack("!BIH", Response.MEMORY_DATA, address, len(data)) + data


def encode_error(code: int, message: str = "") -> bytes:
    text = message.encode()[:255]
    return struct.pack("!BBB", Response.ERROR, code & 0xFF, len(text)) + text


@dataclass(frozen=True)
class StatusResponse:
    state: LeonState
    cycles: int


@dataclass(frozen=True)
class LoadAck:
    received: int
    total: int
    #: Sequence numbers the device reports as not yet received (possibly
    #: truncated to MAX_ACK_MISSING); empty also for seed-format acks.
    missing: tuple[int, ...] = ()


@dataclass(frozen=True)
class Started:
    entry: int


@dataclass(frozen=True)
class Restarted:
    pass


@dataclass(frozen=True)
class MemoryData:
    address: int
    data: bytes


@dataclass(frozen=True)
class TraceData:
    total: int
    offset: int
    data: bytes


@dataclass(frozen=True)
class ErrorResponse:
    code: int
    message: str


def _unpack(fmt: str, payload: bytes, offset: int, what: str) -> tuple:
    """``struct.unpack`` with an explicit length check.

    Responses arrive off an unreliable channel, so a short datagram is a
    protocol condition (:class:`ProtocolError`), never a
    ``struct.error``/``IndexError`` leaking out of the decoder.
    """
    end = offset + struct.calcsize(fmt)
    if len(payload) < end:
        raise ProtocolError(f"truncated {what}")
    return struct.unpack(fmt, payload[offset:end])


def decode_response(payload: bytes):
    if not payload:
        raise ProtocolError("empty response payload")
    code = payload[0]
    if code == Response.STATUS:
        state, cycles = _unpack("!BI", payload, 1, "STATUS")
        try:
            leon_state = LeonState(state)
        except ValueError:
            raise ProtocolError(f"unknown LEON state {state}") from None
        return StatusResponse(leon_state, cycles)
    if code == Response.LOAD_ACK:
        received, total = _unpack("!HH", payload, 1, "LOAD_ACK")
        missing: tuple[int, ...] = ()
        if len(payload) > 5:
            count = payload[5]
            missing = _unpack(f"!{count}H", payload, 6,
                              "LOAD_ACK missing list")
        return LoadAck(received, total, missing)
    if code == Response.STARTED:
        return Started(_unpack("!I", payload, 1, "STARTED")[0])
    if code == Response.RESTARTED:
        return Restarted()
    if code == Response.TRACE_DATA:
        total, offset, length = _unpack("!IIH", payload, 1, "TRACE_DATA")
        data = payload[11:11 + length]
        if len(data) < length:
            raise ProtocolError("TRACE_DATA shorter than its length field")
        return TraceData(total, offset, data)
    if code == Response.MEMORY_DATA:
        address, length = _unpack("!IH", payload, 1, "MEMORY_DATA")
        data = payload[7:7 + length]
        if len(data) < length:
            raise ProtocolError("MEMORY_DATA shorter than its length field")
        return MemoryData(address, data)
    if code == Response.ERROR:
        err, length = _unpack("!BB", payload, 1, "ERROR")
        text = payload[3:3 + length]
        if len(text) < length:
            raise ProtocolError("ERROR shorter than its length field")
        return ErrorResponse(err, text.decode(errors="replace"))
    raise ProtocolError(f"unknown response code 0x{code:02x}")


# ---------------------------------------------------------------------------
# Program packetizer (the Forth program of Figure 4)
# ---------------------------------------------------------------------------


def packetize_program(base: int, blob: bytes,
                      chunk: int = DEFAULT_CHUNK) -> list[bytes]:
    """Split a flat binary into LOAD_PROGRAM payloads.

    "If the binary does not fit in 1 packet, they can be sent as multiple
    packets and the packet sequence number ... will need to [be] used to
    mark the order (as UDP protocol does not guarantee order of
    delivery)."
    """
    if not blob:
        raise ProtocolError("empty program")
    if chunk < 4 or chunk % 4:
        raise ProtocolError("chunk must be a positive multiple of 4")
    chunks = [blob[i:i + chunk] for i in range(0, len(blob), chunk)]
    total = len(chunks)
    return [
        encode_load_chunk(seq, total, base + seq * chunk, data)
        for seq, data in enumerate(chunks)
    ]


class ProgramAssembler:
    """Device-side reassembly of a multi-packet program load.

    Tolerates reordering and duplicates; completeness is "all sequence
    numbers 0..total-1 seen".  A packet with a different ``total`` resets
    the assembler (a new load supersedes a half-finished one).
    """

    def __init__(self):
        self.total: int | None = None
        self.chunks: dict[int, LoadChunk] = {}

    def add(self, chunk: LoadChunk) -> bool:
        """Accept one chunk; returns True when the program is complete."""
        if self.total is not None and chunk.total != self.total:
            self.reset()
        self.total = chunk.total
        self.chunks[chunk.seq] = chunk
        return self.complete

    @property
    def complete(self) -> bool:
        return self.total is not None and len(self.chunks) == self.total

    @property
    def received(self) -> int:
        return len(self.chunks)

    def missing(self) -> tuple[int, ...]:
        """Sequence numbers not yet received, ascending (empty until the
        first chunk announces the total)."""
        if self.total is None:
            return ()
        return tuple(seq for seq in range(self.total)
                     if seq not in self.chunks)

    def base_address(self) -> int:
        if not self.chunks:
            raise ProtocolError("no chunks received")
        return min(chunk.address for chunk in self.chunks.values())

    def writes(self) -> list[tuple[int, bytes]]:
        """(address, data) pairs in sequence order."""
        return [
            (chunk.address, chunk.data)
            for _, chunk in sorted(self.chunks.items())
        ]

    def reset(self) -> None:
        self.total = None
        self.chunks.clear()
