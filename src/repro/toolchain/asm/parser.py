"""SPARC V8 assembler (the GAS stage of the paper's cross-compiler flow).

Accepts the standard SPARC assembly dialect: sections, labels, data
directives, the full V8 integer instruction set, and the usual GAS
synthetic instructions (``set``, ``mov``, ``cmp``, ``ret``, ``nop``, …).
Produces a relocatable :class:`~repro.toolchain.objfile.ObjectFile`; the
linker assigns absolute addresses.

Single-pass design: instructions are emitted immediately and references to
symbols are recorded as fix-ups.  PC-relative fix-ups whose target lands
in the same section are patched at the end of assembly; everything else
becomes a relocation for the linker.  This works because no statement's
*size* depends on a forward symbol (``set symbol, reg`` always expands to
two instructions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cpu.isa import BRANCH_MNEMONICS, TRAP_MNEMONICS, Cond, Op3, Op3Mem
from repro.toolchain.asm import encoder
from repro.toolchain.objfile import ObjectFile, RelocKind, Relocation, Section
from repro.utils import s32, u32


class AssemblyError(Exception):
    """Syntax or semantic error, annotated with file:line."""

    def __init__(self, message: str, source: str = "<memory>", line: int = 0):
        self.source = source
        self.line = line
        super().__init__(f"{source}:{line}: {message}")


# ---------------------------------------------------------------------------
# Expressions: integer constants and `symbol + constant`
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Either a pure constant (``symbol is None``) or ``symbol + addend``."""

    symbol: str | None
    addend: int

    @property
    def is_constant(self) -> bool:
        return self.symbol is None

    def constant(self) -> int:
        if self.symbol is not None:
            raise ValueError(f"expression involves symbol '{self.symbol}'")
        return self.addend


_TOKEN_RE = re.compile(
    r"\s*(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|'(?:\\.|[^'])'|[A-Za-z_.$][\w.$]*"
    r"|<<|>>|[-+*/%&|^~()])"
)


class _ExprParser:
    """Recursive-descent parser for assembler expressions.

    Symbols may only combine additively with constants (which is all
    hand-written SPARC assembly and our compiler ever need); any other
    operator applied to a symbolic sub-expression is an error.
    """

    def __init__(self, text: str):
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                if text[pos:].strip():
                    raise ValueError(f"bad expression near '{text[pos:]}'")
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of expression")
        self.index += 1
        return token

    def parse(self) -> Expr:
        result = self._additive()
        if self.peek() is not None:
            raise ValueError(f"trailing tokens: {self.tokens[self.index:]}")
        return result

    def _additive(self) -> Expr:
        left = self._term()
        while self.peek() in ("+", "-"):
            op = self.next()
            right = self._term()
            if op == "+":
                if left.symbol and right.symbol:
                    raise ValueError("cannot add two symbols")
                left = Expr(left.symbol or right.symbol, left.addend + right.addend)
            else:
                if right.symbol:
                    raise ValueError("cannot subtract a symbol")
                left = Expr(left.symbol, left.addend - right.addend)
        return left

    def _term(self) -> Expr:
        left = self._unary()
        while self.peek() in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            op = self.next()
            right = self._unary()
            a, b = left.constant(), right.constant()
            ops = {
                "*": a * b, "/": a // b if b else 0, "%": a % b if b else 0,
                "&": a & b, "|": a | b, "^": a ^ b, "<<": a << b, ">>": a >> b,
            }
            left = Expr(None, ops[op])
        return left

    def _unary(self) -> Expr:
        token = self.peek()
        if token == "-":
            self.next()
            inner = self._unary()
            return Expr(None, -inner.constant())
        if token == "~":
            self.next()
            inner = self._unary()
            return Expr(None, ~inner.constant())
        if token == "+":
            self.next()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        token = self.next()
        if token == "(":
            inner = self._additive()
            if self.next() != ")":
                raise ValueError("missing ')'")
            return inner
        if token[0].isdigit():
            return Expr(None, int(token, 0))
        if token.startswith("'"):
            body = token[1:-1]
            escapes = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\r": "\r",
                       "\\\\": "\\", "\\'": "'"}
            return Expr(None, ord(escapes.get(body, body[-1])))
        if re.fullmatch(r"[A-Za-z_.$][\w.$]*", token):
            return Expr(token, 0)
        raise ValueError(f"unexpected token '{token}'")


def parse_expr(text: str) -> Expr:
    return _ExprParser(text).parse()


# ---------------------------------------------------------------------------
# Register names
# ---------------------------------------------------------------------------

_REG_ALIASES = {"%sp": 14, "%fp": 30}
_SPECIALS = {"%y": "y", "%psr": "psr", "%wim": "wim", "%tbr": "tbr"}


def parse_register(token: str) -> int:
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    match = re.fullmatch(r"%(g|o|l|i|r)(\d+)", token)
    if not match:
        raise ValueError(f"not a register: '{token}'")
    kind, number = match.group(1), int(match.group(2))
    limits = {"g": 8, "o": 8, "l": 8, "i": 8, "r": 32}
    if number >= limits[kind]:
        raise ValueError(f"register number out of range: '{token}'")
    bases = {"g": 0, "o": 8, "l": 16, "i": 24, "r": 0}
    return bases[kind] + number


def is_register(token: str) -> bool:
    try:
        parse_register(token)
        return True
    except ValueError:
        return False


# ---------------------------------------------------------------------------
# Operand model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemOperand:
    """An ``[rs1 + rs2]`` or ``[rs1 + simm]`` address operand."""

    rs1: int
    rs2: int | None
    expr: Expr | None  # None means offset 0


@dataclass(frozen=True)
class HiLo:
    """%hi(expr) or %lo(expr)."""

    which: str  # "hi" | "lo"
    expr: Expr


def split_operands(text: str) -> list[str]:
    """Split on top-level commas, respecting ``[]``, ``()`` and quotes."""
    parts, depth, current, quote = [], 0, [], None
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote and (len(current) < 2 or current[-2] != "\\"):
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch in "[(":
            depth += 1
            current.append(ch)
        elif ch in "])":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_operand(token: str):
    """Parse one operand into a register number, MemOperand, HiLo, special
    register name, or Expr."""
    token = token.strip()
    lowered = token.lower()
    if lowered in _SPECIALS:
        return ("special", _SPECIALS[lowered])
    match = re.fullmatch(r"%asr(\d+)", lowered)
    if match:
        return ("asr", int(match.group(1)))
    if is_register(token):
        return ("reg", parse_register(token))
    if token.startswith("[") and token.endswith("]"):
        return ("mem", _parse_mem(token[1:-1]))
    match = re.fullmatch(r"%(hi|lo)\s*\((.*)\)", token, re.IGNORECASE | re.DOTALL)
    if match:
        return ("hilo", HiLo(match.group(1).lower(), parse_expr(match.group(2))))
    return ("expr", parse_expr(token))


def parse_address(token: str) -> MemOperand:
    """Parse an address operand with or without brackets — JMPL/RETT take
    ``%reg + simm`` bare, loads/stores take ``[%reg + simm]``."""
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        token = token[1:-1]
    return _parse_mem(token)


def _parse_mem(body: str) -> MemOperand:
    body = body.strip()
    # rs1 +/- something, or bare rs1, or bare expression (rs1 = %g0).
    match = re.match(r"(%\w+)\s*([-+])\s*(.+)$", body)
    if match and is_register(match.group(1)):
        rs1 = parse_register(match.group(1))
        sign, rest = match.group(2), match.group(3).strip()
        if sign == "+" and is_register(rest):
            return MemOperand(rs1, parse_register(rest), None)
        expr = parse_expr(rest)
        if sign == "-":
            if expr.symbol:
                raise ValueError("cannot negate a symbol in address")
            expr = Expr(None, -expr.addend)
        return MemOperand(rs1, None, expr)
    if is_register(body):
        return MemOperand(parse_register(body), None, None)
    match = re.fullmatch(r"%lo\s*\((.*)\)", body, re.IGNORECASE | re.DOTALL)
    if match:
        # [%lo(sym)] is unusual; treat as absolute low-part via %g0.
        raise ValueError("[%lo(...)] without a base register is unsupported")
    return MemOperand(0, None, parse_expr(body))


# ---------------------------------------------------------------------------
# The assembler
# ---------------------------------------------------------------------------

_ALU_OPS = {
    "add": Op3.ADD, "addcc": Op3.ADDCC, "addx": Op3.ADDX, "addxcc": Op3.ADDXCC,
    "sub": Op3.SUB, "subcc": Op3.SUBCC, "subx": Op3.SUBX, "subxcc": Op3.SUBXCC,
    "and": Op3.AND, "andcc": Op3.ANDCC, "andn": Op3.ANDN, "andncc": Op3.ANDNCC,
    "or": Op3.OR, "orcc": Op3.ORCC, "orn": Op3.ORN, "orncc": Op3.ORNCC,
    "xor": Op3.XOR, "xorcc": Op3.XORCC, "xnor": Op3.XNOR, "xnorcc": Op3.XNORCC,
    "taddcc": Op3.TADDCC, "tsubcc": Op3.TSUBCC,
    "taddcctv": Op3.TADDCCTV, "tsubcctv": Op3.TSUBCCTV,
    "mulscc": Op3.MULSCC,
    "umul": Op3.UMUL, "umulcc": Op3.UMULCC, "smul": Op3.SMUL, "smulcc": Op3.SMULCC,
    "udiv": Op3.UDIV, "udivcc": Op3.UDIVCC, "sdiv": Op3.SDIV, "sdivcc": Op3.SDIVCC,
    "sll": Op3.SLL, "srl": Op3.SRL, "sra": Op3.SRA,
    "save": Op3.SAVE, "restore": Op3.RESTORE,
}

_LOAD_OPS = {
    "ld": Op3Mem.LD, "ldub": Op3Mem.LDUB, "lduh": Op3Mem.LDUH,
    "ldsb": Op3Mem.LDSB, "ldsh": Op3Mem.LDSH, "ldd": Op3Mem.LDD,
    "lda": Op3Mem.LDA, "lduba": Op3Mem.LDUBA, "lduha": Op3Mem.LDUHA,
    "ldsba": Op3Mem.LDSBA, "ldsha": Op3Mem.LDSHA, "ldda": Op3Mem.LDDA,
}
_STORE_OPS = {
    "st": Op3Mem.ST, "stb": Op3Mem.STB, "sth": Op3Mem.STH, "std": Op3Mem.STD,
    "sta": Op3Mem.STA, "stba": Op3Mem.STBA, "stha": Op3Mem.STHA,
    "stda": Op3Mem.STDA,
}

_BRANCHES = {name: cond for cond, name in BRANCH_MNEMONICS.items()}
_BRANCHES.update({"b": Cond.A, "bz": Cond.E, "bnz": Cond.NE,
                  "bgeu": Cond.CC, "blu": Cond.CS})
_TRAPS = {name: cond for cond, name in TRAP_MNEMONICS.items()}

_COMMENT_RE = re.compile(r"(?<!%)\!.*$|#.*$")
_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:\s*")


@dataclass
class _Fixup:
    section: str
    offset: int
    kind: RelocKind
    symbol: str
    addend: int
    line: int


class Assembler:
    """Two-stage (emit + fix-up) SPARC assembler producing object files."""

    def __init__(self):
        self.obj = ObjectFile()
        self.current = ".text"
        self.fixups: list[_Fixup] = []
        self.source = "<memory>"
        self.line = 0
        self.absolutes: dict[str, int] = {}

    # -- public entry --------------------------------------------------------

    def assemble(self, text: str, source_name: str = "<memory>") -> ObjectFile:
        self.obj = ObjectFile(source_name=source_name)
        self.obj.section(".text")
        self.current = ".text"
        self.fixups = []
        self.source = source_name
        self.absolutes = {}
        for number, raw in enumerate(text.splitlines(), start=1):
            self.line = number
            try:
                self._process_line(raw)
            except (ValueError, encoder.EncodeError) as exc:
                raise AssemblyError(str(exc), source_name, number) from exc
        self._resolve_fixups()
        return self.obj

    # -- line processing -------------------------------------------------

    def _process_line(self, raw: str) -> None:
        line = _COMMENT_RE.sub("", raw).strip()
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            self._define_label(match.group(1))
            line = line[match.end():]
        if not line:
            return
        if line.startswith("."):
            self._directive(line)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = split_operands(parts[1]) if len(parts) > 1 else []
        self._instruction(mnemonic, operands)

    def _define_label(self, name: str) -> None:
        section = self.obj.section(self.current)
        self.obj.define(name, self.current, section.size)

    @property
    def _section(self) -> Section:
        return self.obj.section(self.current)

    # -- directives ------------------------------------------------------

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name in (".text", ".data", ".bss", ".rodata"):
            self.current = name
            self.obj.section(name)
        elif name == ".section":
            self.current = split_operands(rest)[0]
            self.obj.section(self.current)
        elif name == ".align":
            alignment = parse_expr(rest).constant()
            section = self._section
            while section.size % alignment:
                section.data.append(0)
        elif name in (".word", ".long"):
            for op in split_operands(rest):
                self._emit_data_expr(parse_expr(op), 4)
        elif name in (".half", ".short"):
            for op in split_operands(rest):
                self._emit_data_expr(parse_expr(op), 2)
        elif name == ".byte":
            for op in split_operands(rest):
                self._emit_data_expr(parse_expr(op), 1)
        elif name in (".ascii", ".asciz", ".string"):
            for op in split_operands(rest):
                body = _decode_string(op)
                self._section.data += body
                if name in (".asciz", ".string"):
                    self._section.data.append(0)
        elif name in (".skip", ".space"):
            operands = split_operands(rest)
            count = parse_expr(operands[0]).constant()
            fill = parse_expr(operands[1]).constant() if len(operands) > 1 else 0
            self._section.data += bytes([fill & 0xFF]) * count
        elif name in (".global", ".globl"):
            for op in split_operands(rest):
                sym = op.strip()
                if sym in self.obj.symbols:
                    self.obj.symbols[sym].is_global = True
                else:
                    # Forward declaration: remember to mark it later.
                    self.fixups.append(_Fixup("", -1, RelocKind.WORD32, sym, 0,
                                              self.line))
        elif name in (".set", ".equ"):
            operands = split_operands(rest)
            value = parse_expr(operands[1])
            self.absolutes[operands[0].strip()] = self._resolve_abs(value)
        elif name in (".file", ".ident", ".type", ".size", ".proc", ".seg"):
            pass  # accepted and ignored, like GAS does for our purposes
        else:
            raise ValueError(f"unknown directive {name}")

    def _resolve_abs(self, expr: Expr) -> int:
        if expr.symbol is None:
            return expr.addend
        if expr.symbol in self.absolutes:
            return self.absolutes[expr.symbol] + expr.addend
        raise ValueError(f".set value must be absolute, got '{expr.symbol}'")

    def _emit_data_expr(self, expr: Expr, size: int) -> None:
        section = self._section
        if expr.symbol and expr.symbol in self.absolutes:
            expr = Expr(None, self.absolutes[expr.symbol] + expr.addend)
        if expr.symbol:
            if size != 4:
                raise ValueError("symbolic data must be word-sized")
            self.fixups.append(_Fixup(self.current, section.size,
                                      RelocKind.WORD32, expr.symbol,
                                      expr.addend, self.line))
            section.append_word(0)
        else:
            section.data += (expr.addend & ((1 << (8 * size)) - 1)).to_bytes(
                size, "big")

    # -- instruction emission ---------------------------------------------

    def _emit(self, word: int) -> None:
        self._section.append_word(word)

    def _emit_with_fixup(self, word: int, kind: RelocKind, expr: Expr) -> None:
        if expr.symbol and expr.symbol in self.absolutes:
            expr = Expr(None, self.absolutes[expr.symbol] + expr.addend)
        if expr.symbol is None and kind in (RelocKind.WDISP22, RelocKind.WDISP30):
            # Absolute branch target: treat the constant as an address and
            # leave it to the fix-up resolver via a synthetic symbol-less
            # relocation (the linker knows the section base).
            self.fixups.append(_Fixup(self.current, self._section.size, kind,
                                      "", expr.addend, self.line))
            self._emit(word)
            return
        if expr.symbol is None:
            self._emit(self._apply_const(word, kind, expr.addend))
            return
        self.fixups.append(_Fixup(self.current, self._section.size, kind,
                                  expr.symbol, expr.addend, self.line))
        self._emit(word)

    @staticmethod
    def _apply_const(word: int, kind: RelocKind, value: int) -> int:
        value = u32(value)
        if kind == RelocKind.HI22:
            return word | (value >> 10)
        if kind == RelocKind.LO10:
            return word | (value & 0x3FF)
        if kind == RelocKind.SIMM13:
            signed = s32(value)
            if not -4096 <= signed <= 4095:
                raise encoder.EncodeError(f"immediate {signed} exceeds simm13")
            return word | (signed & 0x1FFF)
        raise encoder.EncodeError(f"cannot fold constant into {kind}")

    # -- operand utilities ------------------------------------------------

    def _reg(self, token: str) -> int:
        kind, value = parse_operand(token)
        if kind != "reg":
            raise ValueError(f"expected register, got '{token}'")
        return value

    def _reg_or_imm(self, token: str):
        """Return ('reg', n) or ('imm', Expr) or ('hilo', HiLo)."""
        kind, value = parse_operand(token)
        if kind in ("reg", "expr", "hilo"):
            return kind, value
        raise ValueError(f"expected register or immediate, got '{token}'")

    # -- instructions ------------------------------------------------------

    def _instruction(self, mnemonic: str, operands: list[str]) -> None:
        annul = False
        if "," in mnemonic:  # handled below via split on ','
            pass
        if mnemonic.endswith(",a"):
            mnemonic, annul = mnemonic[:-2], True

        if mnemonic in _ALU_OPS:
            self._alu(_ALU_OPS[mnemonic], operands)
        elif mnemonic in _LOAD_OPS:
            self._load(_LOAD_OPS[mnemonic], operands)
        elif mnemonic in _STORE_OPS:
            self._store(_STORE_OPS[mnemonic], operands)
        elif mnemonic in _BRANCHES:
            self._branch(_BRANCHES[mnemonic], annul, operands)
        elif mnemonic in _TRAPS:
            self._ticc(_TRAPS[mnemonic], operands)
        elif mnemonic == "sethi":
            self._sethi(operands)
        elif mnemonic == "call":
            self._call(operands)
        elif mnemonic == "jmpl":
            self._jmpl(operands)
        elif mnemonic == "rett":
            self._rett(operands)
        elif mnemonic == "rd":
            self._rd(operands)
        elif mnemonic == "wr":
            self._wr(operands)
        elif mnemonic in ("ldstub", "swap"):
            op3 = Op3Mem.LDSTUB if mnemonic == "ldstub" else Op3Mem.SWAP
            mem = self._mem_operand(operands[0])
            rd = self._reg(operands[1])
            self._emit_mem(op3, rd, mem)
        elif mnemonic == "flush":
            mem = self._mem_operand(operands[0] if operands else "[%g0]")
            self._emit_mem_arith(Op3.FLUSH, 0, mem)
        elif mnemonic == "unimp":
            const = parse_expr(operands[0]).constant() if operands else 0
            self._emit(encoder.unimp(const))
        elif mnemonic == "custom":
            self._custom(operands)
        else:
            self._synthetic(mnemonic, operands)

    def _alu(self, op3: Op3, operands: list[str]) -> None:
        if op3 in (Op3.SAVE, Op3.RESTORE) and not operands:
            self._emit(encoder.arith_reg(op3, 0, 0, 0))
            return
        if len(operands) != 3:
            raise ValueError(f"expected 3 operands, got {len(operands)}")
        rs1 = self._reg(operands[0])
        kind, value = self._reg_or_imm(operands[1])
        rd = self._reg(operands[2])
        if kind == "reg":
            self._emit(encoder.arith_reg(op3, rd, rs1, value))
        elif kind == "hilo":
            reloc = RelocKind.LO10 if value.which == "lo" else RelocKind.HI22
            word = encoder.fmt3_imm(2, rd, int(op3), rs1, 0)
            self._emit_with_fixup(word, reloc, value.expr)
        else:
            word = encoder.fmt3_imm(2, rd, int(op3), rs1, 0)
            self._emit_with_fixup(word, RelocKind.SIMM13, value)

    def _mem_operand(self, token: str) -> MemOperand:
        kind, value = parse_operand(token)
        if kind != "mem":
            raise ValueError(f"expected memory operand, got '{token}'")
        return value

    def _emit_mem(self, op3: Op3Mem, rd: int, mem: MemOperand,
                  asi: int = 0) -> None:
        if mem.rs2 is not None:
            self._emit(encoder.mem_reg(op3, rd, mem.rs1, mem.rs2, asi))
        else:
            expr = mem.expr or Expr(None, 0)
            word = encoder.fmt3_imm(3, rd, int(op3), mem.rs1, 0)
            if asi:
                # ASI forms use i=0; an offset expression is not encodable.
                if expr.symbol or expr.addend:
                    raise ValueError("ASI access cannot take an offset")
                self._emit(encoder.mem_reg(op3, rd, mem.rs1, 0, asi))
                return
            self._emit_with_fixup(word, RelocKind.SIMM13, expr)

    def _emit_mem_arith(self, op3: Op3, rd: int, mem: MemOperand) -> None:
        if mem.rs2 is not None:
            self._emit(encoder.arith_reg(op3, rd, mem.rs1, mem.rs2))
        else:
            expr = mem.expr or Expr(None, 0)
            word = encoder.fmt3_imm(2, rd, int(op3), mem.rs1, 0)
            self._emit_with_fixup(word, RelocKind.SIMM13, expr)

    def _load(self, op3: Op3Mem, operands: list[str]) -> None:
        if len(operands) == 3:  # lda [addr] asi, rd — asi as separate operand
            mem = self._mem_operand(operands[0])
            asi = parse_expr(operands[1]).constant()
            rd = self._reg(operands[2])
            self._emit_mem(op3, rd, mem, asi)
            return
        if len(operands) != 2:
            raise ValueError("load expects '[address], rd'")
        # "lda [%r] 0x5, %rd" style: asi glued to the bracket operand.
        mem_token, rd_token = operands
        asi = 0
        match = re.fullmatch(r"(\[.*\])\s*(\S+)", mem_token)
        if match:
            mem_token, asi_text = match.group(1), match.group(2)
            asi = parse_expr(asi_text).constant()
        mem = self._mem_operand(mem_token)
        rd = self._reg(rd_token)
        self._emit_mem(op3, rd, mem, asi)

    def _store(self, op3: Op3Mem, operands: list[str]) -> None:
        if len(operands) < 2:
            raise ValueError("store expects 'rd, [address]'")
        rd = self._reg(operands[0])
        mem_token = operands[1]
        asi = 0
        match = re.fullmatch(r"(\[.*\])\s*(\S+)", mem_token)
        if match:
            mem_token, asi_text = match.group(1), match.group(2)
            asi = parse_expr(asi_text).constant()
        elif len(operands) == 3:
            asi = parse_expr(operands[2]).constant()
        mem = self._mem_operand(mem_token)
        self._emit_mem(op3, rd, mem, asi)

    def _branch(self, cond: Cond, annul: bool, operands: list[str]) -> None:
        if len(operands) != 1:
            raise ValueError("branch expects one target")
        expr = parse_expr(operands[0])
        word = encoder.branch(int(cond), 0, annul)
        self._emit_with_fixup(word, RelocKind.WDISP22, expr)

    def _ticc(self, cond: Cond, operands: list[str]) -> None:
        if len(operands) == 1:
            kind, value = self._reg_or_imm(operands[0])
            if kind == "reg":
                self._emit(encoder.fmt3_reg(2, int(cond), int(Op3.TICC), 0, value))
            else:
                self._emit(encoder.fmt3_imm(2, int(cond), int(Op3.TICC), 0,
                                            value.constant()))
        elif len(operands) == 2:
            rs1 = self._reg(operands[0])
            kind, value = self._reg_or_imm(operands[1])
            if kind == "reg":
                self._emit(encoder.fmt3_reg(2, int(cond), int(Op3.TICC), rs1, value))
            else:
                self._emit(encoder.fmt3_imm(2, int(cond), int(Op3.TICC), rs1,
                                            value.constant()))
        else:
            raise ValueError("trap expects 1 or 2 operands")

    def _sethi(self, operands: list[str]) -> None:
        if len(operands) != 2:
            raise ValueError("sethi expects 2 operands")
        kind, value = parse_operand(operands[0])
        rd = self._reg(operands[1])
        if kind == "hilo":
            if value.which != "hi":
                raise ValueError("sethi needs %hi(...)")
            self._emit_with_fixup(encoder.sethi(rd, 0), RelocKind.HI22, value.expr)
        elif kind == "expr":
            self._emit(encoder.sethi(rd, value.constant() & 0x3FFFFF))
        else:
            raise ValueError("sethi operand must be %hi(...) or constant")

    def _call(self, operands: list[str]) -> None:
        if len(operands) not in (1, 2):
            raise ValueError("call expects a target")
        kind, value = parse_operand(operands[0])
        if kind == "reg":
            self._emit(encoder.jmpl_imm(15, value, 0))
            return
        if kind == "mem":
            self._emit_mem_arith(Op3.JMPL, 15, value)
            return
        if kind != "expr":
            raise ValueError("bad call target")
        self._emit_with_fixup(encoder.call(0), RelocKind.WDISP30, value)

    def _jmpl(self, operands: list[str]) -> None:
        if len(operands) != 2:
            raise ValueError("jmpl expects 'address, rd'")
        rd = self._reg(operands[1])
        self._emit_mem_arith(Op3.JMPL, rd, parse_address(operands[0]))

    def _rett(self, operands: list[str]) -> None:
        self._emit_mem_arith(Op3.RETT, 0, parse_address(operands[0]))

    def _rd(self, operands: list[str]) -> None:
        source, rd_token = operands
        rd = self._reg(rd_token)
        kind, value = parse_operand(source)
        if kind == "special":
            op3 = {"y": Op3.RDASR, "psr": Op3.RDPSR,
                   "wim": Op3.RDWIM, "tbr": Op3.RDTBR}[value]
            self._emit(encoder.fmt3_reg(2, rd, int(op3), 0, 0))
        elif kind == "asr":
            self._emit(encoder.fmt3_reg(2, rd, int(Op3.RDASR), value, 0))
        else:
            raise ValueError("rd expects %y/%psr/%wim/%tbr/%asrN")

    def _wr(self, operands: list[str]) -> None:
        if len(operands) == 2:
            operands = [operands[0], "0", operands[1]]
        rs1 = self._reg(operands[0])
        kind, value = self._reg_or_imm(operands[1])
        dest_kind, dest = parse_operand(operands[2])
        if dest_kind == "special":
            op3 = {"y": Op3.WRASR, "psr": Op3.WRPSR,
                   "wim": Op3.WRWIM, "tbr": Op3.WRTBR}[dest]
            rd = 0
        elif dest_kind == "asr":
            op3, rd = Op3.WRASR, dest
        else:
            raise ValueError("wr destination must be %y/%psr/%wim/%tbr/%asrN")
        if kind == "reg":
            self._emit(encoder.fmt3_reg(2, rd, int(op3), rs1, value))
        else:
            self._emit(encoder.fmt3_imm(2, rd, int(op3), rs1, value.constant()))

    def _custom(self, operands: list[str]) -> None:
        """``custom opf, rs1, rs2, rd`` — CPop1 extension slot."""
        if len(operands) != 4:
            raise ValueError("custom expects 'opf, rs1, rs2, rd'")
        opf = parse_expr(operands[0]).constant()
        rs1 = self._reg(operands[1])
        rs2 = self._reg(operands[2])
        rd = self._reg(operands[3])
        self._emit(encoder.cpop1(rd, opf, rs1, rs2))

    # -- synthetic instructions ---------------------------------------------

    def _synthetic(self, mnemonic: str, operands: list[str]) -> None:
        if mnemonic == "nop":
            self._emit(encoder.nop())
        elif mnemonic == "mov":
            self._mov(operands)
        elif mnemonic == "cmp":
            self._alu(Op3.SUBCC, [operands[0], operands[1], "%g0"])
        elif mnemonic == "tst":
            self._alu(Op3.ORCC, ["%g0", operands[0], "%g0"])
        elif mnemonic == "set":
            self._set(operands)
        elif mnemonic == "clr":
            kind, value = parse_operand(operands[0])
            if kind == "reg":
                self._alu(Op3.OR, ["%g0", "%g0", operands[0]])
            elif kind == "mem":
                self._emit_mem(Op3Mem.ST, 0, value)
            else:
                raise ValueError("clr expects a register or memory operand")
        elif mnemonic == "ret":
            self._emit(encoder.jmpl_imm(0, 31, 8))  # jmpl %i7+8, %g0
        elif mnemonic == "retl":
            self._emit(encoder.jmpl_imm(0, 15, 8))  # jmpl %o7+8, %g0
        elif mnemonic == "jmp":
            self._emit_mem_arith(Op3.JMPL, 0, parse_address(operands[0]))
        elif mnemonic == "inc":
            amount, reg = ("1", operands[0]) if len(operands) == 1 else operands
            self._alu(Op3.ADD, [reg, amount, reg])
        elif mnemonic == "dec":
            amount, reg = ("1", operands[0]) if len(operands) == 1 else operands
            self._alu(Op3.SUB, [reg, amount, reg])
        elif mnemonic == "deccc":
            amount, reg = ("1", operands[0]) if len(operands) == 1 else operands
            self._alu(Op3.SUBCC, [reg, amount, reg])
        elif mnemonic == "inccc":
            amount, reg = ("1", operands[0]) if len(operands) == 1 else operands
            self._alu(Op3.ADDCC, [reg, amount, reg])
        elif mnemonic == "neg":
            src = operands[0]
            dst = operands[1] if len(operands) > 1 else operands[0]
            self._alu(Op3.SUB, ["%g0", src, dst])
        elif mnemonic == "not":
            src = operands[0]
            dst = operands[1] if len(operands) > 1 else operands[0]
            self._alu(Op3.XNOR, [src, "%g0", dst])
        elif mnemonic == "btst":
            self._alu(Op3.ANDCC, [operands[1], operands[0], "%g0"])
        elif mnemonic == "bset":
            self._alu(Op3.OR, [operands[1], operands[0], operands[1]])
        elif mnemonic == "bclr":
            self._alu(Op3.ANDN, [operands[1], operands[0], operands[1]])
        else:
            raise ValueError(f"unknown mnemonic '{mnemonic}'")

    def _mov(self, operands: list[str]) -> None:
        if len(operands) != 2:
            raise ValueError("mov expects 2 operands")
        src_kind, src = parse_operand(operands[0])
        dst_kind, dst = parse_operand(operands[1])
        if dst_kind == "special" or dst_kind == "asr":
            self._wr(["%g0", operands[0], operands[1]])
            return
        if src_kind == "special" or src_kind == "asr":
            self._rd(operands)
            return
        self._alu(Op3.OR, ["%g0", operands[0], operands[1]])

    def _set(self, operands: list[str]) -> None:
        if len(operands) != 2:
            raise ValueError("set expects 'value, rd'")
        rd = self._reg(operands[1])
        kind, value = parse_operand(operands[0])
        if kind == "hilo":
            raise ValueError("use sethi/or directly with %hi/%lo")
        if kind != "expr":
            raise ValueError("set expects an expression")
        if value.symbol and value.symbol in self.absolutes:
            value = Expr(None, self.absolutes[value.symbol] + value.addend)
        if value.is_constant:
            for word in encoder.set32(rd, value.addend):
                self._emit(word)
        else:
            # Always two instructions so sizes don't depend on symbol values.
            self._emit_with_fixup(encoder.sethi(rd, 0), RelocKind.HI22, value)
            word = encoder.fmt3_imm(2, rd, int(Op3.OR), rd, 0)
            self._emit_with_fixup(word, RelocKind.LO10, value)

    # -- fix-up resolution ---------------------------------------------------

    def _resolve_fixups(self) -> None:
        for fixup in self.fixups:
            if fixup.offset == -1:  # deferred .global marker
                if fixup.symbol in self.obj.symbols:
                    self.obj.symbols[fixup.symbol].is_global = True
                else:
                    # Undefined here: importing a symbol another object defines.
                    pass
                continue
            if fixup.symbol in self.absolutes:
                value = self.absolutes[fixup.symbol] + fixup.addend
                section = self.obj.section(fixup.section)
                word = section.word_at(fixup.offset)
                section.patch_word(fixup.offset,
                                   self._apply_const(word, fixup.kind, value))
                continue
            symbol = self.obj.symbols.get(fixup.symbol)
            same_section = symbol is not None and symbol.section == fixup.section
            if fixup.kind in (RelocKind.WDISP22, RelocKind.WDISP30) and same_section:
                section = self.obj.section(fixup.section)
                displacement = (symbol.offset + fixup.addend - fixup.offset) >> 2
                word = section.word_at(fixup.offset)
                if fixup.kind == RelocKind.WDISP22:
                    if not -(1 << 21) <= displacement < (1 << 21):
                        raise AssemblyError("branch displacement overflow",
                                            self.source, fixup.line)
                    word |= displacement & 0x3FFFFF
                else:
                    word |= displacement & 0x3FFF_FFFF
                section.patch_word(fixup.offset, word)
            else:
                self.obj.section(fixup.section).relocations.append(
                    Relocation(fixup.offset, fixup.symbol, fixup.kind,
                               fixup.addend))


def _decode_string(token: str) -> bytes:
    token = token.strip()
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise ValueError(f"expected string literal, got {token}")
    body = token[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34}
            out.append(escapes.get(body[i + 1], ord(body[i + 1])))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def assemble(text: str, source_name: str = "<memory>") -> ObjectFile:
    """Assemble *text* into a relocatable object file."""
    return Assembler().assemble(text, source_name)
