"""SPARC V8 machine-code encoders (the assembler's back end).

Each function returns a 32-bit instruction word.  They are also used
directly by :mod:`repro.mem.bootrom` (which assembles the LEON boot code)
and by the CPU unit tests, and they are the inverse of
:mod:`repro.toolchain.disasm` — a correspondence checked property-style in
``tests/toolchain/test_roundtrip.py``.
"""

from __future__ import annotations

from repro.cpu.isa import OP2_BICC, OP2_SETHI, Op3, Op3Mem
from repro.utils import u32


class EncodeError(Exception):
    """Field out of range for its encoding."""


def _check_reg(reg: int) -> int:
    if not 0 <= reg <= 31:
        raise EncodeError(f"register {reg} out of range")
    return reg


def _check_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodeError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def call(disp30: int) -> int:
    """Format 1: CALL with a signed 30-bit word displacement."""
    return u32((1 << 30) | (disp30 & 0x3FFF_FFFF))


def sethi(rd: int, imm22: int) -> int:
    if not 0 <= imm22 <= 0x3FFFFF:
        raise EncodeError(f"imm22 0x{imm22:x} out of range")
    return (_check_reg(rd) << 25) | (OP2_SETHI << 22) | imm22


def nop() -> int:
    """The canonical NOP is ``sethi 0, %g0``."""
    return sethi(0, 0)


def branch(cond: int, disp22: int, annul: bool = False) -> int:
    """Format 2: Bicc with a signed 22-bit word displacement."""
    disp = _check_signed(disp22, 22, "branch displacement")
    return ((1 << 29) if annul else 0) | ((cond & 0xF) << 25) | \
        (OP2_BICC << 22) | disp


def unimp(const22: int = 0) -> int:
    return const22 & 0x3FFFFF


def fmt3_reg(op: int, rd: int, op3: int, rs1: int, rs2: int, asi: int = 0) -> int:
    """Format 3 with a register second operand (i = 0)."""
    return u32((op << 30) | (_check_reg(rd) << 25) | ((op3 & 0x3F) << 19) |
               (_check_reg(rs1) << 14) | ((asi & 0xFF) << 5) | _check_reg(rs2))


def fmt3_imm(op: int, rd: int, op3: int, rs1: int, simm13: int) -> int:
    """Format 3 with a 13-bit signed immediate (i = 1)."""
    imm = _check_signed(simm13, 13, "simm13")
    return u32((op << 30) | (_check_reg(rd) << 25) | ((op3 & 0x3F) << 19) |
               (_check_reg(rs1) << 14) | (1 << 13) | imm)


def cpop1(rd: int, opf: int, rs1: int, rs2: int) -> int:
    """CPop1 — the custom-instruction slot Liquid Architecture reuses."""
    return u32((2 << 30) | (_check_reg(rd) << 25) | (int(Op3.CPOP1) << 19) |
               (_check_reg(rs1) << 14) | ((opf & 0x1FF) << 5) | _check_reg(rs2))


# -- convenience wrappers used by bootrom / tests ---------------------------


def arith_reg(op3: Op3, rd: int, rs1: int, rs2: int) -> int:
    return fmt3_reg(2, rd, int(op3), rs1, rs2)


def arith_imm(op3: Op3, rd: int, rs1: int, simm13: int) -> int:
    return fmt3_imm(2, rd, int(op3), rs1, simm13)


def mem_reg(op3: Op3Mem, rd: int, rs1: int, rs2: int, asi: int = 0) -> int:
    return fmt3_reg(3, rd, int(op3), rs1, rs2, asi)


def mem_imm(op3: Op3Mem, rd: int, rs1: int, simm13: int) -> int:
    return fmt3_imm(3, rd, int(op3), rs1, simm13)


def ld_imm(rd: int, rs1: int, offset: int = 0) -> int:
    return mem_imm(Op3Mem.LD, rd, rs1, offset)


def st_imm(rd: int, rs1: int, offset: int = 0) -> int:
    return mem_imm(Op3Mem.ST, rd, rs1, offset)


def jmpl_imm(rd: int, rs1: int, offset: int = 0) -> int:
    return arith_imm(Op3.JMPL, rd, rs1, offset)


def or_imm(rd: int, rs1: int, value: int) -> int:
    return arith_imm(Op3.OR, rd, rs1, value)


def set32(rd: int, value: int) -> list[int]:
    """Expand ``set value, rd`` into 1–2 instructions (the GAS synthetic)."""
    value = u32(value)
    if -4096 <= value < 4096 or value >= 0xFFFF_F000:
        # fits in simm13 (either small positive or sign-extended negative)
        simm = value if value < 4096 else value - 0x1_0000_0000
        return [or_imm(rd, 0, simm)]
    if value & 0x3FF == 0:
        return [sethi(rd, value >> 10)]
    return [sethi(rd, value >> 10), or_imm(rd, rd, value & 0x3FF)]
