"""SPARC V8 assembler (GAS stage of the cross-compiler flow)."""

from repro.toolchain.asm import encoder
from repro.toolchain.asm.parser import Assembler, AssemblyError, assemble

__all__ = ["encoder", "Assembler", "AssemblyError", "assemble"]
