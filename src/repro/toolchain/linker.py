"""Linker: place sections at absolute addresses and resolve relocations.

The paper extracts a memory map "from the design of the supervisory state
machine" and feeds it to LD.  :class:`MemoryMapScript` plays that role: it
names the placement of each output section.  The default script matches
:mod:`repro.mem.memmap` — user code loads into FPX SRAM above the mailbox
words that the leon_ctrl circuitry reserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.toolchain.objfile import (
    Image,
    LinkError,
    ObjectFile,
    RelocKind,
    Section,
)
from repro.utils import s32, u32


@dataclass
class MemoryMapScript:
    """Output-section placement.

    ``placements`` maps section name → absolute base address, or to the
    name of a *preceding* section to be placed directly after (the common
    "``.data`` follows ``.text``" layout).  Sections are placed in the
    order given.  ``align`` pads follow-on placements.
    """

    placements: dict[str, int | str] = field(default_factory=dict)
    align: int = 8

    @classmethod
    def default(cls, text_base: int = 0x4000_1000) -> "MemoryMapScript":
        """The Liquid Processor memory map: code + data in FPX SRAM."""
        return cls(placements={
            ".text": text_base,
            ".rodata": ".text",
            ".data": ".rodata",
            ".bss": ".data",
        })


@dataclass
class LinkedSection:
    name: str
    base: int
    data: bytearray


class Linker:
    """Combine object files, place sections, resolve relocations."""

    def __init__(self, script: MemoryMapScript | None = None):
        self.script = script or MemoryMapScript.default()

    def link(self, objects: list[ObjectFile], entry_symbol: str = "_start") -> Image:
        merged, symbols = self._merge(objects)
        placed = self._place(merged)
        addresses = self._absolute_symbols(symbols, placed)
        self._relocate(merged, placed, addresses)
        segments = {sec.base: bytes(sec.data) for sec in placed.values()
                    if sec.data}
        entry = addresses.get(entry_symbol)
        if entry is None:
            text = placed.get(".text")
            entry = text.base if text else (min(segments) if segments else 0)
        return Image(segments=segments, symbols=addresses, entry=entry)

    # -- merging -----------------------------------------------------------

    def _merge(self, objects: list[ObjectFile]):
        """Concatenate same-named sections; rebase symbols and relocations.

        Assembler-temporary labels (``.L`` prefix — what our compiler
        emits for branch targets and string literals) are local to their
        translation unit, so they are silently renamed per object; every
        other symbol shares the global namespace, and colliding
        definitions are an error.
        """
        merged: dict[str, Section] = {}
        symbols: dict[str, tuple[str, int]] = {}  # name -> (section, offset)
        for index, obj in enumerate(objects):
            def localize(name: str) -> str:
                if name.startswith(".L"):
                    return f"{name}@tu{index}"
                return name

            bases: dict[str, int] = {}
            for name, section in obj.sections.items():
                if name not in merged:
                    merged[name] = Section(name)
                out = merged[name]
                while out.size % 4:
                    out.data.append(0)
                bases[name] = out.size
                out.data += section.data
            for name, section in obj.sections.items():
                base = bases[name]
                for reloc in section.relocations:
                    merged[name].relocations.append(
                        type(reloc)(reloc.offset + base,
                                    localize(reloc.symbol),
                                    reloc.kind, reloc.addend))
            for sym in obj.symbols.values():
                name = localize(sym.name)
                if name in symbols:
                    raise LinkError(f"duplicate definition of '{sym.name}'")
                symbols[name] = (sym.section, sym.offset + bases.get(
                    sym.section, 0))
        return merged, symbols

    # -- placement -----------------------------------------------------------

    def _place(self, merged: dict[str, Section]) -> dict[str, LinkedSection]:
        placed: dict[str, LinkedSection] = {}
        ends: dict[str, int] = {}  # end address even for empty sections
        cursor: int | None = None
        order = list(self.script.placements) + [
            name for name in merged if name not in self.script.placements]
        for name in order:
            section = merged.get(name)
            spec = self.script.placements.get(name)
            if isinstance(spec, int):
                base = spec
            elif isinstance(spec, str):
                if spec not in ends:
                    raise LinkError(f"section '{name}' placed after unknown "
                                    f"'{spec}'")
                base = ends[spec]
            elif cursor is not None:
                base = cursor
            else:
                raise LinkError(f"no placement for section '{name}'")
            align = self.script.align
            base = (base + align - 1) & ~(align - 1)
            size = section.size if section is not None else 0
            ends[name] = base + size
            cursor = ends[name]
            if section is not None and (section.size or section.relocations):
                placed[name] = LinkedSection(name, base, bytearray(section.data))
        # Overlap check.
        spans = sorted((sec.base, sec.base + len(sec.data), sec.name)
                       for sec in placed.values())
        for (s1, e1, n1), (s2, _e2, n2) in zip(spans, spans[1:]):
            if s2 < e1:
                raise LinkError(f"sections '{n1}' and '{n2}' overlap at "
                                f"0x{s2:08x}")
        return placed

    # -- symbols ---------------------------------------------------------

    @staticmethod
    def _absolute_symbols(symbols: dict[str, tuple[str, int]],
                          placed: dict[str, LinkedSection]) -> dict[str, int]:
        addresses: dict[str, int] = {}
        for name, (section, offset) in symbols.items():
            sec = placed.get(section)
            if sec is None:
                continue  # symbol in a dropped (empty) section
            addresses[name] = u32(sec.base + offset)
        return addresses

    # -- relocation ----------------------------------------------------------

    def _relocate(self, merged: dict[str, Section],
                  placed: dict[str, LinkedSection],
                  addresses: dict[str, int]) -> None:
        for name, section in merged.items():
            out = placed.get(name)
            if out is None:
                continue
            for reloc in section.relocations:
                if reloc.symbol == "":
                    value = u32(reloc.addend)  # absolute branch target
                elif reloc.symbol in addresses:
                    value = u32(addresses[reloc.symbol] + reloc.addend)
                else:
                    raise LinkError(f"undefined symbol '{reloc.symbol}' "
                                    f"referenced from {name}+0x{reloc.offset:x}")
                word = int.from_bytes(out.data[reloc.offset:reloc.offset + 4],
                                      "big")
                patched = self._apply(word, reloc.kind, value,
                                      out.base + reloc.offset, reloc.symbol)
                out.data[reloc.offset:reloc.offset + 4] = patched.to_bytes(4, "big")

    @staticmethod
    def _apply(word: int, kind: RelocKind, value: int, place: int,
               symbol: str) -> int:
        if kind == RelocKind.WORD32:
            return value
        if kind == RelocKind.HI22:
            return word | (value >> 10)
        if kind == RelocKind.LO10:
            return word | (value & 0x3FF)
        if kind == RelocKind.SIMM13:
            signed = s32(value)
            if not -4096 <= signed <= 4095:
                raise LinkError(f"simm13 overflow for '{symbol}' "
                                f"(value 0x{value:08x})")
            return word | (signed & 0x1FFF)
        if kind == RelocKind.WDISP30:
            disp = (value - place) >> 2
            return word | (disp & 0x3FFF_FFFF)
        if kind == RelocKind.WDISP22:
            disp = (value - place) >> 2
            if not -(1 << 21) <= disp < (1 << 21):
                raise LinkError(f"branch to '{symbol}' out of range")
            return word | (disp & 0x3FFFFF)
        raise LinkError(f"unknown relocation kind {kind}")


def link(objects: list[ObjectFile], script: MemoryMapScript | None = None,
         entry_symbol: str = "_start") -> Image:
    """Convenience wrapper over :class:`Linker`."""
    return Linker(script).link(objects, entry_symbol)
