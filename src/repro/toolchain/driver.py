"""Toolchain driver: the one-call path from source files to a loadable
image (the batch file of the paper's §2.5).

Steps, mirroring Figure 4: *1. Compile w/ GCC → 2. Assemble w/ GAS →
3. Link w/ LD → 4. Convert to bin w/ OBJCOPY → 5. Convert to IP*.  Here:
:func:`repro.toolchain.cc.compile_c` → :func:`repro.toolchain.asm.assemble`
→ :func:`repro.toolchain.linker.link` → ``Image.flatten`` →
:func:`repro.net.protocol.packetize_program`.

``crt0`` is the startup stub every C program gets: call ``main``, store
its return value at the RESULT word, and exit through the ``ta 0``
syscall back to the boot ROM's polling loop ("the last instruction in
the user program instructs the LEON processor to jump back to its
polling loop").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.memmap import DEFAULT_MAP, MemoryMap
from repro.net.protocol import DEFAULT_CHUNK, packetize_program
from repro.toolchain.asm import assemble
from repro.toolchain.cc import compile_c
from repro.toolchain.linker import Linker, MemoryMapScript
from repro.toolchain.objfile import Image, ObjectFile


def crt0_source(memmap: MemoryMap = DEFAULT_MAP) -> str:
    """The C runtime startup stub."""
    return f"""
    .text
    .global _start
_start:
    call main
    nop
    set {memmap.result_addr}, %g1
    st %o0, [%g1]                  ! expose main()'s result to Read Memory
    ta 0                           ! exit: back to the boot polling loop
    nop
"""


@dataclass
class SourceFile:
    """One input to the driver.  ``language`` is 'c' or 'asm'."""

    text: str
    language: str = "c"
    name: str = "<memory>"


def compile_sources(sources: list[SourceFile],
                    memmap: MemoryMap = DEFAULT_MAP,
                    with_crt0: bool = True) -> list[ObjectFile]:
    """Compile/assemble every source to an object file."""
    objects: list[ObjectFile] = []
    if with_crt0:
        objects.append(assemble(crt0_source(memmap), "crt0.s"))
    for source in sources:
        if source.language == "c":
            asm_text = compile_c(source.text)
            objects.append(assemble(asm_text, source.name + ".s"))
        elif source.language == "asm":
            objects.append(assemble(source.text, source.name))
        else:
            raise ValueError(f"unknown language '{source.language}'")
    return objects


def build_image(sources: list[SourceFile],
                memmap: MemoryMap = DEFAULT_MAP,
                text_base: int | None = None,
                with_crt0: bool = True,
                entry_symbol: str = "_start") -> Image:
    """Sources → linked image placed at the program load address."""
    objects = compile_sources(sources, memmap, with_crt0)
    script = MemoryMapScript.default(text_base if text_base is not None
                                     else memmap.program_base)
    return Linker(script).link(objects, entry_symbol)


def compile_c_program(c_source: str, memmap: MemoryMap = DEFAULT_MAP,
                      extra_asm: str | None = None,
                      with_libc: bool = False) -> Image:
    """One C translation unit (plus optional extra assembly) → image.

    ``with_libc=True`` links the runtime library
    (:data:`repro.toolchain.runtime.LIBC_SOURCE` — mem/str routines and
    UART console output) and pre-declares its functions for the user
    code."""
    from repro.toolchain.runtime import LIBC_DECLARATIONS, LIBC_SOURCE

    user = c_source
    if with_libc:
        user = LIBC_DECLARATIONS + "\n" + c_source
    sources = [SourceFile(user, "c", "program.c")]
    if with_libc:
        sources.append(SourceFile(LIBC_SOURCE, "c", "libc.c"))
    if extra_asm:
        sources.append(SourceFile(extra_asm, "asm", "extra.s"))
    return build_image(sources, memmap)


def image_to_packets(image: Image,
                     chunk: int = DEFAULT_CHUNK) -> list[bytes]:
    """OBJCOPY + packetize: the flat binary as LOAD_PROGRAM payloads."""
    base, blob = image.flatten()
    return packetize_program(base, blob, chunk)
