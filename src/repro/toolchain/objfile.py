"""Relocatable object format shared by the assembler and linker.

The paper's flow is GCC → GAS → LD → OBJCOPY; our from-scratch toolchain
mirrors it with a deliberately small object format: named sections of raw
bytes, a symbol table, and a relocation list.  Relocation kinds cover what
SPARC V8 code generation actually needs (the same subset ELF calls
``R_SPARC_32/HI22/LO10/13/WDISP30/WDISP22``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils import u32


class RelocKind(Enum):
    """Relocation kinds, named after their ELF SPARC equivalents."""

    WORD32 = "word32"    # full 32-bit value (data words)
    HI22 = "hi22"        # SETHI: bits 31:10 of the value
    LO10 = "lo10"        # OR-immediate: bits 9:0 of the value
    SIMM13 = "simm13"    # 13-bit signed immediate (absolute, must fit)
    WDISP30 = "wdisp30"  # CALL: (target - place) >> 2 in 30 bits
    WDISP22 = "wdisp22"  # Bicc: (target - place) >> 2 in 22 signed bits


@dataclass
class Relocation:
    """A fix-up at ``section[offset]`` against ``symbol + addend``."""

    offset: int
    symbol: str
    kind: RelocKind
    addend: int = 0


@dataclass
class Symbol:
    """A label: its defining section, byte offset, and linkage visibility."""

    name: str
    section: str
    offset: int
    is_global: bool = False


@dataclass
class Section:
    """A contiguous run of bytes plus its pending relocations."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    relocations: list[Relocation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.data)

    def append_word(self, value: int) -> None:
        self.data += u32(value).to_bytes(4, "big")

    def patch_word(self, offset: int, value: int) -> None:
        self.data[offset:offset + 4] = u32(value).to_bytes(4, "big")

    def word_at(self, offset: int) -> int:
        return int.from_bytes(self.data[offset:offset + 4], "big")


@dataclass
class ObjectFile:
    """One translation unit's worth of sections and symbols."""

    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    source_name: str = "<memory>"

    def section(self, name: str) -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def define(self, name: str, section: str, offset: int,
               is_global: bool = False) -> None:
        if name in self.symbols:
            raise LinkError(f"duplicate symbol '{name}' in {self.source_name}")
        self.symbols[name] = Symbol(name, section, offset, is_global)


class LinkError(Exception):
    """Unresolved/duplicate symbols, overlapping placements, range overflow."""


@dataclass
class Image:
    """A linked, absolutely-placed memory image.

    ``segments`` maps base address → bytes; ``symbols`` maps name → absolute
    address; ``entry`` is where execution starts (symbol ``_start`` when
    present, else the base of ``.text``).
    """

    segments: dict[int, bytes]
    symbols: dict[str, int]
    entry: int

    @property
    def start(self) -> int:
        return min(self.segments) if self.segments else 0

    @property
    def end(self) -> int:
        return max(base + len(data) for base, data in self.segments.items()) \
            if self.segments else 0

    def flatten(self, fill: int = 0) -> tuple[int, bytes]:
        """Return ``(base, blob)`` covering all segments, gap-filled.

        This is the OBJCOPY step of the paper's flow: the flat binary that
        gets packetized into UDP payloads and written into FPX SRAM.
        """
        if not self.segments:
            return 0, b""
        base = self.start
        blob = bytearray([fill]) * 0  # keep type; build below
        blob = bytearray(self.end - base)
        if fill:
            for i in range(len(blob)):
                blob[i] = fill
        for seg_base, data in self.segments.items():
            blob[seg_base - base:seg_base - base + len(data)] = data
        return base, bytes(blob)
