"""Mini-C semantic analysis: name resolution, typing, frame layout.

Walks the AST, binding identifiers to storage — ``('local', offset)``
frame slots or ``('global', label)`` — annotating every expression with
its :class:`~repro.toolchain.cc.cast.CType`, folding ``sizeof``, and
computing each function's frame size (the 64-byte register-window save
area the boot ROM's overflow handler spills into, plus locals, plus the
code generator's spill slots).

Parameters are spilled to frame slots in the prologue (as gcc -O0 does),
which makes ``&param`` well-defined and keeps the code generator uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.toolchain.cc import cast as A
from repro.toolchain.cc.cast import INT, UNSIGNED, CompileError, CType

WINDOW_SAVE_BYTES = 64  # mandatory %sp-relative save area (SPARC ABI)
MAX_REG_PARAMS = 6


@dataclass
class FunctionInfo:
    name: str
    return_type: CType
    param_types: list[CType]
    defined: bool


@dataclass
class LocalSlot:
    name: str
    ctype: CType
    offset: int  # positive; address is %fp - offset


@dataclass
class _Scope:
    parent: "._Scope | None" = None
    names: dict[str, LocalSlot] = field(default_factory=dict)

    def lookup(self, name: str) -> LocalSlot | None:
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    def __init__(self, unit: A.TranslationUnit):
        self.unit = unit
        self.functions: dict[str, FunctionInfo] = {}
        self.globals: dict[str, A.Global] = {}
        self._string_count = 0
        self._scope: _Scope | None = None
        self._frame_bytes = 0
        self._current: A.Function | None = None
        self._loop_depth = 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def analyze(self) -> A.TranslationUnit:
        for glob in self.unit.globals:
            if glob.name in self.globals or glob.name in self.functions:
                raise CompileError(f"redefinition of '{glob.name}'", glob.line)
            self._check_global_init(glob)
            self.globals[glob.name] = glob
        for function in self.unit.functions:
            info = self.functions.get(function.name)
            signature = FunctionInfo(
                function.name, function.return_type,
                [param.ctype for param in function.params],
                function.body is not None)
            if info is None:
                if function.name in self.globals:
                    raise CompileError(f"'{function.name}' already a variable",
                                       function.line)
                self.functions[function.name] = signature
            else:
                if info.defined and function.body is not None:
                    raise CompileError(f"redefinition of '{function.name}'",
                                       function.line)
                if info.param_types != signature.param_types:
                    raise CompileError(
                        f"conflicting declaration of '{function.name}'",
                        function.line)
                info.defined = info.defined or signature.defined
        for function in self.unit.functions:
            if function.body is not None:
                self._analyze_function(function)
        return self.unit

    def _check_global_init(self, glob: A.Global) -> None:
        if glob.ctype.is_void:
            raise CompileError(f"variable '{glob.name}' has type void",
                               glob.line)
        if glob.init is not None:
            if isinstance(glob.init, A.StrLit):
                if not (glob.ctype.is_array and glob.ctype.base in
                        ("char", "uchar")):
                    raise CompileError("string initializer needs a char array",
                                       glob.line)
                if len(glob.init.value) + 1 > glob.ctype.size:
                    raise CompileError("string too long for array", glob.line)
                return
            # Scalar initializers must be compile-time constants.
            from repro.toolchain.cc.parser import _fold_const
            glob.init = A.IntLit(_fold_const(glob.init), line=glob.line)
        if glob.init_list is not None:
            from repro.toolchain.cc.parser import _fold_const
            if not glob.ctype.is_array:
                raise CompileError("brace initializer needs an array",
                                   glob.line)
            if len(glob.init_list) > glob.ctype.array_len:
                raise CompileError("too many initializers", glob.line)
            glob.init_list = [A.IntLit(_fold_const(item), line=glob.line)
                              for item in glob.init_list]

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _analyze_function(self, function: A.Function) -> None:
        if len(function.params) > MAX_REG_PARAMS:
            raise CompileError(
                f"'{function.name}': at most {MAX_REG_PARAMS} parameters "
                "are supported (register-window calling convention)",
                function.line)
        self._current = function
        self._frame_bytes = 0
        self._scope = _Scope()
        for param in function.params:
            slot = self._allocate(param.name, param.ctype, param.line)
            function.locals[param.name] = slot
        self._statement(function.body)
        # Round the frame up; the code generator adds its spill slots on top.
        function.frame_size = WINDOW_SAVE_BYTES + _align(self._frame_bytes, 8)
        self._scope = None
        self._current = None

    def _allocate(self, name: str, ctype: CType, line: int) -> LocalSlot:
        if ctype.is_void:
            raise CompileError(f"variable '{name}' has type void", line)
        if self._scope.names.get(name) is not None:
            raise CompileError(f"redefinition of '{name}'", line)
        size = _align(ctype.size, 4)
        self._frame_bytes = _align(self._frame_bytes + size, 4)
        slot = LocalSlot(name, ctype, self._frame_bytes)
        self._scope.names[name] = slot
        return slot

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _statement(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Compound):
            outer = self._scope
            self._scope = _Scope(parent=outer)
            for child in stmt.body:
                self._statement(child)
            self._scope = outer
        elif isinstance(stmt, A.DeclList):
            for decl in stmt.decls:
                self._var_decl(decl)
        elif isinstance(stmt, A.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self._expr(stmt.cond)
            self._statement(stmt.then)
            if stmt.otherwise is not None:
                self._statement(stmt.otherwise)
        elif isinstance(stmt, A.While):
            self._expr(stmt.cond)
            self._in_loop(stmt.body)
        elif isinstance(stmt, A.DoWhile):
            self._in_loop(stmt.body)
            self._expr(stmt.cond)
        elif isinstance(stmt, A.For):
            outer = self._scope
            self._scope = _Scope(parent=outer)
            if stmt.init is not None:
                self._statement(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                self._expr(stmt.step)
            self._in_loop(stmt.body)
            self._scope = outer
        elif isinstance(stmt, A.Return):
            want = self._current.return_type
            if stmt.value is not None:
                if want.is_void:
                    raise CompileError("void function returns a value",
                                       stmt.line)
                self._expr(stmt.value)
            elif not want.is_void:
                raise CompileError("non-void function returns nothing",
                                   stmt.line)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, A.Break) else "continue"
                raise CompileError(f"'{kind}' outside a loop", stmt.line)
        else:  # pragma: no cover
            raise AssertionError(f"unknown statement {stmt!r}")

    def _in_loop(self, body: A.Stmt) -> None:
        self._loop_depth += 1
        self._statement(body)
        self._loop_depth -= 1

    def _var_decl(self, decl: A.VarDecl) -> None:
        slot = self._allocate(decl.name, decl.ctype, decl.line)
        decl.offset = slot.offset
        if decl.init is not None:
            if isinstance(decl.init, A.StrLit) and decl.ctype.is_array:
                if len(decl.init.value) + 1 > decl.ctype.size:
                    raise CompileError("string too long for array", decl.line)
                self._expr(decl.init)
                return
            self._expr(decl.init)
            if decl.ctype.is_array:
                raise CompileError("array initializer must be a brace list",
                                   decl.line)
        if decl.init_list is not None:
            if not decl.ctype.is_array:
                raise CompileError("brace initializer needs an array",
                                   decl.line)
            if len(decl.init_list) > decl.ctype.array_len:
                raise CompileError("too many initializers", decl.line)
            for item in decl.init_list:
                self._expr(item)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr(self, expr: A.Expr) -> CType:
        ctype = self._expr_inner(expr)
        expr.ctype = ctype
        return ctype

    def _expr_inner(self, expr: A.Expr) -> CType:
        if isinstance(expr, A.IntLit):
            return UNSIGNED if expr.value > 0x7FFF_FFFF else INT
        if isinstance(expr, A.StrLit):
            if expr.label is None:
                expr.label = f".Lstr{self._string_count}"
                self._string_count += 1
                self.unit.strings[expr.label] = expr.value
            return CType("char", 0, len(expr.value) + 1)
        if isinstance(expr, A.Ident):
            return self._ident(expr)
        if isinstance(expr, A.Unary):
            inner = self._expr(expr.operand)
            if inner.is_void:
                raise CompileError("void value in expression", expr.line)
            if expr.op == "!":
                return INT
            return UNSIGNED if inner.is_unsigned else INT
        if isinstance(expr, A.Binary):
            return self._binary(expr)
        if isinstance(expr, A.Assign):
            return self._assign(expr)
        if isinstance(expr, A.Conditional):
            self._expr(expr.cond)
            then = self._expr(expr.then)
            otherwise = self._expr(expr.otherwise)
            return self._merge(then, otherwise, expr.line)
        if isinstance(expr, A.Call):
            return self._call(expr)
        if isinstance(expr, A.Index):
            base = self._expr(expr.array)
            index = self._expr(expr.index)
            if not (base.is_array or base.is_pointer):
                # C allows i[arr]; support it by swapping.
                if index.is_array or index.is_pointer:
                    expr.array, expr.index = expr.index, expr.array
                    base, index = index, base
                else:
                    raise CompileError("subscript of non-array", expr.line)
            return base.element()
        if isinstance(expr, A.Deref):
            inner = self._expr(expr.pointer)
            if not (inner.is_pointer or inner.is_array):
                raise CompileError("dereference of non-pointer", expr.line)
            return inner.element()
        if isinstance(expr, A.AddrOf):
            inner = self._expr(expr.operand)
            self._require_lvalue(expr.operand)
            return inner.pointer_to() if not inner.is_array else \
                CType(inner.base, inner.pointer + 1)
        if isinstance(expr, A.Cast):
            self._expr(expr.operand)
            return expr.target
        if isinstance(expr, A.SizeOf):
            if expr.target is None:
                expr.target = self._expr(expr.operand)
            return UNSIGNED
        if isinstance(expr, A.IncDec):
            inner = self._expr(expr.target)
            self._require_lvalue(expr.target)
            return inner
        if isinstance(expr, A.CustomOp):
            self._expr(expr.lhs)
            self._expr(expr.rhs)
            return UNSIGNED
        raise AssertionError(f"unknown expression {expr!r}")  # pragma: no cover

    def _ident(self, expr: A.Ident) -> CType:
        slot = self._scope.lookup(expr.name) if self._scope else None
        if slot is not None:
            expr.binding = ("local", slot.offset)
            return slot.ctype
        glob = self.globals.get(expr.name)
        if glob is not None:
            expr.binding = ("global", glob.name)
            return glob.ctype
        if expr.name in self.functions:
            raise CompileError(f"function '{expr.name}' used as a value "
                               "(function pointers are unsupported)",
                               expr.line)
        raise CompileError(f"undeclared identifier '{expr.name}'", expr.line)

    def _call(self, expr: A.Call) -> CType:
        info = self.functions.get(expr.name)
        if info is None:
            raise CompileError(f"call to undeclared function '{expr.name}'",
                               expr.line)
        if len(expr.args) != len(info.param_types):
            raise CompileError(
                f"'{expr.name}' expects {len(info.param_types)} arguments, "
                f"got {len(expr.args)}", expr.line)
        for arg in expr.args:
            self._expr(arg)
        return info.return_type

    def _binary(self, expr: A.Binary) -> CType:
        lhs = self._expr(expr.lhs)
        rhs = self._expr(expr.rhs)
        op = expr.op
        if op == ",":
            return rhs
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT
        lhs_ptr = lhs.is_pointer or lhs.is_array
        rhs_ptr = rhs.is_pointer or rhs.is_array
        if op == "+" and (lhs_ptr ^ rhs_ptr):
            return (lhs if lhs_ptr else rhs).decayed()
        if op == "-" and lhs_ptr and rhs_ptr:
            return INT
        if op == "-" and lhs_ptr:
            return lhs.decayed()
        if lhs_ptr or rhs_ptr:
            raise CompileError(f"invalid pointer arithmetic '{op}'",
                               expr.line)
        return self._merge(lhs, rhs, expr.line)

    @staticmethod
    def _merge(a: CType, b: CType, line: int) -> CType:
        if a.is_void or b.is_void:
            raise CompileError("void value in expression", line)
        if a.is_pointer or a.is_array:
            return a.decayed()
        if b.is_pointer or b.is_array:
            return b.decayed()
        return UNSIGNED if (a.is_unsigned or b.is_unsigned) else INT

    def _assign(self, expr: A.Assign) -> CType:
        target = self._expr(expr.target)
        self._expr(expr.value)
        self._require_lvalue(expr.target)
        if target.is_array:
            raise CompileError("cannot assign to an array", expr.line)
        return target

    def _require_lvalue(self, expr: A.Expr) -> None:
        if isinstance(expr, (A.Ident, A.Deref, A.Index)):
            return
        if isinstance(expr, A.Cast):
            self._require_lvalue(expr.operand)
            return
        raise CompileError("expression is not an lvalue",
                           getattr(expr, "line", 0))

    # ------------------------------------------------------------------
    # Queries used by codegen
    # ------------------------------------------------------------------

    def signature(self, name: str) -> FunctionInfo | None:
        return self.functions.get(name)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def analyze(unit: A.TranslationUnit) -> SemanticAnalyzer:
    analyzer = SemanticAnalyzer(unit)
    analyzer.analyze()
    return analyzer
