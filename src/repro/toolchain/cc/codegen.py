"""Mini-C → SPARC V8 assembly code generator.

Calling convention (the SPARC register-window ABI, as LEON uses it):

* each function opens its own window with ``save %sp, -frame, %sp``;
* arguments arrive in ``%i0``–``%i5`` (the caller's ``%o0``–``%o5``) and
  are spilled to frame slots in the prologue (so ``&param`` works);
* the return value leaves in ``%i0``;
* ``[%sp+0 .. %sp+63]`` is the register-window save area the boot ROM's
  overflow/underflow handlers use — never touched by generated code.

Expression evaluation uses a register stack over the window-local
``%l0``–``%l7`` (safe across calls, since a callee runs in its own
window).  When an expression is deeper than eight live temporaries, the
generator spills the *deepest* temporary to a dedicated frame slot and
reuses its register, reloading through the reserved scratch ``%g1``; the
reserved ``%g2`` carries the second operand when both sides of a binary
operation were spilled.  Depth > 8 is rare, so hot code never pays for
the mechanism — a profile-first trade the HPC guides would endorse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.toolchain.cc import cast as A
from repro.toolchain.cc.cast import CompileError, CType
from repro.toolchain.cc.sema import SemanticAnalyzer, _align

TEMP_REGS = ["%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7"]
SCRATCH = "%g1"    # reserved: spill reloads, division Y setup, stores
SCRATCH2 = "%g2"   # reserved: second spilled operand
SCRATCH3 = "%g3"   # reserved: address operand of read-modify-write forms

_COND_FOR_OP = {
    # op -> (signed branch, unsigned branch)
    "==": ("be", "be"), "!=": ("bne", "bne"),
    "<": ("bl", "blu"), "<=": ("ble", "bleu"),
    ">": ("bg", "bgu"), ">=": ("bge", "bgeu"),
}
_NEGATED = {"be": "bne", "bne": "be", "bl": "bge", "bge": "bl",
            "ble": "bg", "bg": "ble", "blu": "bgeu", "bgeu": "blu",
            "bleu": "bgu", "bgu": "bleu"}


@dataclass
class _Entry:
    """One expression-stack slot: in a register or spilled to the frame."""

    register: str | None    # None when spilled
    spill_offset: int | None = None


class _RegStack:
    """The register stack with spill-deepest overflow policy."""

    def __init__(self, gen: "CodeGen"):
        self.gen = gen
        self.entries: list[_Entry] = []
        self.free = list(TEMP_REGS)

    @property
    def depth(self) -> int:
        return len(self.entries)

    def push(self) -> str:
        """Reserve a register for a new top-of-stack value."""
        if not self.free:
            victim = next(e for e in self.entries if e.register is not None)
            offset = self.gen.alloc_spill()
            self.gen.emit(f"st {victim.register}, [%fp - {offset}]")
            self.free.append(victim.register)
            victim.register = None
            victim.spill_offset = offset
        register = self.free.pop()
        self.entries.append(_Entry(register))
        return register

    def pop(self, into: str = SCRATCH) -> str:
        """Release the top value; returns the register holding it (the
        entry's own register, or *into* after a reload)."""
        entry = self.entries.pop()
        if entry.register is not None:
            self.free.append(entry.register)
            return entry.register
        self.gen.emit(f"ld [%fp - {entry.spill_offset}], {into}")
        self.gen.release_spill(entry.spill_offset)
        return into

    def pop2(self) -> tuple[str, str]:
        """Pop (lhs, rhs) for a binary operation, avoiding scratch clash."""
        rhs = self.pop(into=SCRATCH2)
        lhs = self.pop(into=SCRATCH)
        return lhs, rhs

    def top_register(self) -> str:
        """Register of the top entry, reloading it if it was spilled."""
        entry = self.entries[-1]
        if entry.register is None:
            # Re-materialise: push semantics guarantee a register exists
            # only by spilling someone else, so go through push/pop.
            offset = entry.spill_offset
            self.entries.pop()
            register = self.push()
            self.gen.emit(f"ld [%fp - {offset}], {register}")
            self.gen.release_spill(offset)
            return register
        return entry.register

    def dup(self) -> None:
        """Duplicate the top entry (used by compound assignment)."""
        source = self.top_register()
        register = self.push()
        self.gen.emit(f"mov {source}, {register}")

    def pop_below(self, into: str = SCRATCH3) -> str:
        """Release the entry *under* the top (read-modify-write forms push
        their result before consuming the address beneath it, so the
        result register can never alias the address register)."""
        entry = self.entries.pop(-2)
        if entry.register is not None:
            self.free.append(entry.register)
            return entry.register
        self.gen.emit(f"ld [%fp - {entry.spill_offset}], {into}")
        self.gen.release_spill(entry.spill_offset)
        return into


class CodeGen:
    def __init__(self, sema: SemanticAnalyzer):
        self.sema = sema
        self.unit = sema.unit
        self.lines: list[str] = []
        self._label_count = 0
        self._function: A.Function | None = None
        self.stack = _RegStack(self)
        # Spill-slot management (per function).
        self._spill_base = 0
        self._spill_free: list[int] = []
        self._spill_next = 0
        self._spill_max = 0
        self._frame_patch_index: int | None = None
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        self._label_count += 1
        return f".{hint}{self._label_count}"

    def alloc_spill(self) -> int:
        if self._spill_free:
            return self._spill_free.pop()
        self._spill_next += 4
        self._spill_max = max(self._spill_max, self._spill_next)
        return self._spill_base + self._spill_next

    def release_spill(self, offset: int) -> None:
        self._spill_free.append(offset)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def generate(self) -> str:
        self.lines = []
        self.lines.append("! generated by the Liquid Architecture mini-C "
                          "compiler")
        for function in self.unit.functions:
            if function.body is not None:
                self._gen_function(function)
        self._gen_data()
        return "\n".join(self.lines) + "\n"

    def _gen_data(self) -> None:
        if self.unit.strings:
            self.lines.append("    .rodata")
            for label, text in self.unit.strings.items():
                self.emit_label(label)
                escaped = text.replace("\\", "\\\\").replace('"', '\\"')
                escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
                self.emit(f'.asciz "{escaped}"')
            self.emit(".align 4")
        emitted_data = False
        for glob in self.unit.globals:
            if glob.is_extern:
                continue
            if not emitted_data:
                self.lines.append("    .data")
                self.lines.append("    .align 4")
                emitted_data = True
            self.lines.append(f"    .global {glob.name}")
            self.emit_label(glob.name)
            self._gen_global_body(glob)

    def _gen_global_body(self, glob: A.Global) -> None:
        ctype = glob.ctype
        if isinstance(glob.init, A.StrLit):
            text = glob.init.value
            escaped = text.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            self.emit(f'.asciz "{escaped}"')
            pad = ctype.size - (len(text) + 1)
            if pad > 0:
                self.emit(f".skip {pad}")
            self.emit(".align 4")
            return
        if glob.init_list is not None:
            element = ctype.element()
            directive = ".word" if element.load_size == 4 else ".byte"
            values = [str(item.value) for item in glob.init_list]
            if values:
                self.emit(f"{directive} " + ", ".join(values))
            remaining = ctype.array_len - len(glob.init_list)
            if remaining > 0:
                self.emit(f".skip {remaining * element.size}")
            self.emit(".align 4")
            return
        if glob.init is not None:
            assert isinstance(glob.init, A.IntLit)
            directive = ".word" if ctype.load_size == 4 else ".byte"
            self.emit(f"{directive} {glob.init.value}")
            self.emit(".align 4")
            return
        self.emit(f".skip {max(ctype.size, 1)}")
        self.emit(".align 4")

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _gen_function(self, function: A.Function) -> None:
        self._function = function
        self._spill_base = function.frame_size - 64  # locals end here
        self._spill_next = 0
        self._spill_max = 0
        self._spill_free = []
        self.stack = _RegStack(self)
        self.lines.append("    .text")
        self.lines.append(f"    .global {function.name}")
        self.emit_label(function.name)
        # Frame size is finalised after codegen (spill slots); patch later.
        self._frame_patch_index = len(self.lines)
        self.emit("save %sp, -0, %sp")  # placeholder
        for index, param in enumerate(function.params):
            slot = function.locals[param.name]
            store = "st" if param.ctype.load_size == 4 else "stb"
            self.emit(f"{store} %i{index}, [%fp - {slot.offset}]")
        self._return_label = self.new_label("Lret")
        self._statement(function.body)
        self.emit_label(self._return_label)
        self.emit("ret")
        self.emit("restore")
        # Patch the frame size now that spill usage is known.
        frame = _align(function.frame_size - 64 + self._spill_max, 8) + 64
        # SPARC wants 8-byte-aligned stack pointers.
        self.lines[self._frame_patch_index] = f"    save %sp, -{frame}, %sp"
        self._function = None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _statement(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Compound):
            for child in stmt.body:
                self._statement(child)
        elif isinstance(stmt, A.DeclList):
            for decl in stmt.decls:
                self._gen_var_decl(decl)
        elif isinstance(stmt, A.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr)
                self.stack.pop()
        elif isinstance(stmt, A.If):
            self._gen_if(stmt)
        elif isinstance(stmt, A.While):
            self._gen_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self._gen_do(stmt)
        elif isinstance(stmt, A.For):
            self._gen_for(stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                register = self.stack.pop()
                self.emit(f"mov {register}, %i0")
            self.emit(f"ba {self._return_label}")
            self.emit("nop")
        elif isinstance(stmt, A.Break):
            self.emit(f"ba {self._break_labels[-1]}")
            self.emit("nop")
        elif isinstance(stmt, A.Continue):
            self.emit(f"ba {self._continue_labels[-1]}")
            self.emit("nop")
        else:  # pragma: no cover
            raise AssertionError(f"unknown statement {stmt!r}")

    def _gen_var_decl(self, decl: A.VarDecl) -> None:
        if decl.init is not None and isinstance(decl.init, A.StrLit) \
                and decl.ctype.is_array:
            # Copy the string into the local array, byte by byte.
            label = decl.init.label
            data = decl.init.value + "\0"
            address = self.stack.push()
            self.emit(f"set {label}, {address}")
            for index in range(len(data)):
                self.emit(f"ldub [{address} + {index}], {SCRATCH}")
                self.emit(f"stb {SCRATCH}, [%fp - {decl.offset - index}]")
            self.stack.pop()
            return
        if decl.init is not None:
            self._expr(decl.init)
            register = self.stack.pop()
            store = "st" if decl.ctype.load_size == 4 else "stb"
            self.emit(f"{store} {register}, [%fp - {decl.offset}]")
            return
        if decl.init_list is not None:
            element = decl.ctype.element()
            store = "st" if element.load_size == 4 else "stb"
            for index, item in enumerate(decl.init_list):
                self._expr(item)
                register = self.stack.pop()
                offset = decl.offset - index * element.size
                self.emit(f"{store} {register}, [%fp - {offset}]")

    def _gen_if(self, stmt: A.If) -> None:
        else_label = self.new_label("Lelse")
        end_label = self.new_label("Lend") if stmt.otherwise else else_label
        self._branch_if_false(stmt.cond, else_label)
        self._statement(stmt.then)
        if stmt.otherwise is not None:
            self.emit(f"ba {end_label}")
            self.emit("nop")
            self.emit_label(else_label)
            self._statement(stmt.otherwise)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _gen_while(self, stmt: A.While) -> None:
        head = self.new_label("Lwhile")
        end = self.new_label("Lendw")
        self.emit_label(head)
        self._branch_if_false(stmt.cond, end)
        self._loop_body(stmt.body, break_to=end, continue_to=head)
        self.emit(f"ba {head}")
        self.emit("nop")
        self.emit_label(end)

    def _gen_do(self, stmt: A.DoWhile) -> None:
        head = self.new_label("Ldo")
        cond = self.new_label("Ldocond")
        end = self.new_label("Lendd")
        self.emit_label(head)
        self._loop_body(stmt.body, break_to=end, continue_to=cond)
        self.emit_label(cond)
        self._branch_if_false(stmt.cond, end)
        self.emit(f"ba {head}")
        self.emit("nop")
        self.emit_label(end)

    def _gen_for(self, stmt: A.For) -> None:
        head = self.new_label("Lfor")
        step = self.new_label("Lstep")
        end = self.new_label("Lendf")
        if stmt.init is not None:
            self._statement(stmt.init)
        self.emit_label(head)
        if stmt.cond is not None:
            self._branch_if_false(stmt.cond, end)
        self._loop_body(stmt.body, break_to=end, continue_to=step)
        self.emit_label(step)
        if stmt.step is not None:
            self._expr(stmt.step)
            self.stack.pop()
        self.emit(f"ba {head}")
        self.emit("nop")
        self.emit_label(end)

    def _loop_body(self, body: A.Stmt, break_to: str, continue_to: str) -> None:
        self._break_labels.append(break_to)
        self._continue_labels.append(continue_to)
        self._statement(body)
        self._continue_labels.pop()
        self._break_labels.pop()

    # ------------------------------------------------------------------
    # Conditional branching (with comparison fast paths)
    # ------------------------------------------------------------------

    def _branch_if_false(self, cond: A.Expr, target: str) -> None:
        if isinstance(cond, A.Unary) and cond.op == "!":
            self._branch_if_true(cond.operand, target)
            return
        if isinstance(cond, A.Binary) and cond.op in _COND_FOR_OP:
            branch = self._compare(cond)
            self.emit(f"{_NEGATED[branch]} {target}")
            self.emit("nop")
            return
        if isinstance(cond, A.Binary) and cond.op == "&&":
            self._branch_if_false(cond.lhs, target)
            self._branch_if_false(cond.rhs, target)
            return
        if isinstance(cond, A.Binary) and cond.op == "||":
            through = self.new_label("Lor")
            self._branch_if_true(cond.lhs, through)
            self._branch_if_false(cond.rhs, target)
            self.emit_label(through)
            return
        self._expr(cond)
        register = self.stack.pop()
        self.emit(f"cmp {register}, 0")
        self.emit(f"be {target}")
        self.emit("nop")

    def _branch_if_true(self, cond: A.Expr, target: str) -> None:
        if isinstance(cond, A.Unary) and cond.op == "!":
            self._branch_if_false(cond.operand, target)
            return
        if isinstance(cond, A.Binary) and cond.op in _COND_FOR_OP:
            branch = self._compare(cond)
            self.emit(f"{branch} {target}")
            self.emit("nop")
            return
        if isinstance(cond, A.Binary) and cond.op == "||":
            self._branch_if_true(cond.lhs, target)
            self._branch_if_true(cond.rhs, target)
            return
        if isinstance(cond, A.Binary) and cond.op == "&&":
            through = self.new_label("Land")
            self._branch_if_false(cond.lhs, through)
            self._branch_if_true(cond.rhs, target)
            self.emit_label(through)
            return
        self._expr(cond)
        register = self.stack.pop()
        self.emit(f"cmp {register}, 0")
        self.emit(f"bne {target}")
        self.emit("nop")

    def _compare(self, expr: A.Binary) -> str:
        """Emit the cmp for a comparison; returns the taken-branch mnemonic."""
        self._expr(expr.lhs)
        self._expr(expr.rhs)
        lhs, rhs = self.stack.pop2()
        self.emit(f"cmp {lhs}, {rhs}")
        signed, unsigned = _COND_FOR_OP[expr.op]
        use_unsigned = expr.lhs.ctype.is_unsigned or expr.rhs.ctype.is_unsigned
        return unsigned if use_unsigned else signed

    # ------------------------------------------------------------------
    # Expressions — values
    # ------------------------------------------------------------------

    def _expr(self, expr: A.Expr) -> None:
        """Generate code leaving the expression's value on the stack top."""
        if isinstance(expr, A.IntLit):
            register = self.stack.push()
            self.emit(f"set {expr.value & 0xFFFFFFFF}, {register}")
        elif isinstance(expr, A.StrLit):
            register = self.stack.push()
            self.emit(f"set {expr.label}, {register}")
        elif isinstance(expr, A.Ident):
            self._gen_ident_value(expr)
        elif isinstance(expr, A.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, A.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, A.Assign):
            self._gen_assign(expr)
        elif isinstance(expr, A.Conditional):
            self._gen_conditional(expr)
        elif isinstance(expr, A.Call):
            self._gen_call(expr)
        elif isinstance(expr, A.Index):
            self._gen_addr(expr)
            self._load_from_top(expr.ctype)
        elif isinstance(expr, A.Deref):
            self._gen_addr(expr)
            self._load_from_top(expr.ctype)
        elif isinstance(expr, A.AddrOf):
            self._gen_addr(expr.operand)
        elif isinstance(expr, A.Cast):
            self._expr(expr.operand)
            self._apply_cast(expr.target)
        elif isinstance(expr, A.SizeOf):
            register = self.stack.push()
            self.emit(f"set {expr.target.size}, {register}")
        elif isinstance(expr, A.IncDec):
            self._gen_incdec(expr)
        elif isinstance(expr, A.CustomOp):
            self._expr(expr.lhs)
            self._expr(expr.rhs)
            lhs, rhs = self.stack.pop2()
            register = self.stack.push()
            self.emit(f"custom {expr.opf}, {lhs}, {rhs}, {register}")
        else:  # pragma: no cover
            raise AssertionError(f"unknown expression {expr!r}")

    def _gen_ident_value(self, expr: A.Ident) -> None:
        ctype = expr.ctype
        if ctype.is_array:
            # Arrays decay to their address.
            self._gen_addr(expr)
            return
        kind, value = expr.binding
        register = self.stack.push()
        load = self._load_op(ctype)
        if kind == "local":
            self.emit(f"{load} [%fp - {value}], {register}")
        else:
            self.emit(f"set {value}, {register}")
            self.emit(f"{load} [{register}], {register}")

    @staticmethod
    def _load_op(ctype: CType) -> str:
        if ctype.load_size == 4:
            return "ld"
        return "ldub" if ctype.is_unsigned else "ldsb"

    @staticmethod
    def _store_op(ctype: CType) -> str:
        return "st" if ctype.load_size == 4 else "stb"

    def _load_from_top(self, ctype: CType) -> None:
        """Replace the address on top of the stack with the loaded value."""
        if ctype.is_array:
            return  # address of sub-array IS the value
        register = self.stack.top_register()
        self.emit(f"{self._load_op(ctype)} [{register}], {register}")

    def _apply_cast(self, target: CType) -> None:
        if target.load_size == 1:
            register = self.stack.top_register()
            if target.is_unsigned:
                self.emit(f"and {register}, 0xff, {register}")
            else:
                self.emit(f"sll {register}, 24, {register}")
                self.emit(f"sra {register}, 24, {register}")
        # 32-bit <-> 32-bit casts are free.

    # ------------------------------------------------------------------
    # Addresses (lvalues)
    # ------------------------------------------------------------------

    def _gen_addr(self, expr: A.Expr) -> None:
        if isinstance(expr, A.Ident):
            kind, value = expr.binding
            register = self.stack.push()
            if kind == "local":
                self.emit(f"sub %fp, {value}, {register}")
            else:
                self.emit(f"set {value}, {register}")
        elif isinstance(expr, A.Deref):
            self._expr(expr.pointer)
        elif isinstance(expr, A.Index):
            self._expr(expr.array)       # base address (decayed)
            self._expr(expr.index)
            base, index = self.stack.pop2()
            register = self.stack.push()
            scale = expr.ctype.size if expr.ctype.is_array else \
                expr.array.ctype.decayed().element().size
            if scale == 1:
                self.emit(f"add {base}, {index}, {register}")
            elif scale & (scale - 1) == 0:
                shift = scale.bit_length() - 1
                # SCRATCH3 as the temp: base/index may live in %g1/%g2
                # after a spill reload.
                self.emit(f"sll {index}, {shift}, {SCRATCH3}")
                self.emit(f"add {base}, {SCRATCH3}, {register}")
            else:
                self.emit(f"set {scale}, {SCRATCH3}")
                self.emit(f"umul {index}, {SCRATCH3}, {SCRATCH3}")
                self.emit(f"add {base}, {SCRATCH3}, {register}")
        elif isinstance(expr, A.Cast):
            self._gen_addr(expr.operand)
        else:
            raise CompileError("expression is not an lvalue",
                               getattr(expr, "line", 0))

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _gen_unary(self, expr: A.Unary) -> None:
        if expr.op == "!":
            # !x == (x == 0), branchless via the annulled-slot idiom.
            self._expr(expr.operand)
            register = self.stack.top_register()
            done = self.new_label("Lnot")
            self.emit(f"cmp {register}, 0")
            self.emit(f"be,a {done}")
            self.emit(f"mov 1, {register}")
            self.emit(f"mov 0, {register}")
            self.emit_label(done)
            return
        self._expr(expr.operand)
        register = self.stack.top_register()
        if expr.op == "-":
            self.emit(f"neg {register}")
        elif expr.op == "~":
            self.emit(f"not {register}")
        else:  # pragma: no cover - '+' folded by the parser
            raise AssertionError(expr.op)

    def _gen_binary(self, expr: A.Binary) -> None:
        op = expr.op
        if op == ",":
            self._expr(expr.lhs)
            self.stack.pop()
            self._expr(expr.rhs)
            return
        if op in ("&&", "||"):
            self._gen_logical(expr)
            return
        if op in _COND_FOR_OP:
            branch = self._compare(expr)
            register = self.stack.push()
            done = self.new_label("Lcmp")
            self.emit(f"{branch},a {done}")
            self.emit(f"mov 1, {register}")
            self.emit(f"mov 0, {register}")
            self.emit_label(done)
            return

        lhs_t = expr.lhs.ctype
        rhs_t = expr.rhs.ctype
        lhs_ptr = lhs_t.is_pointer or lhs_t.is_array
        rhs_ptr = rhs_t.is_pointer or rhs_t.is_array

        # Pointer arithmetic: scale the integer side by the element size.
        if op in ("+", "-") and (lhs_ptr ^ rhs_ptr):
            pointer_side, int_side = (expr.lhs, expr.rhs) if lhs_ptr \
                else (expr.rhs, expr.lhs)
            scale = pointer_side.ctype.decayed().element().size
            self._expr(expr.lhs)
            self._expr(expr.rhs)
            lhs, rhs = self.stack.pop2()
            register = self.stack.push()
            int_reg = rhs if lhs_ptr else lhs
            ptr_reg = lhs if lhs_ptr else rhs
            if scale > 1:
                if scale & (scale - 1) == 0:
                    self.emit(f"sll {int_reg}, {scale.bit_length() - 1}, "
                              f"{SCRATCH3}")
                else:
                    self.emit(f"set {scale}, {SCRATCH3}")
                    self.emit(f"umul {int_reg}, {SCRATCH3}, {SCRATCH3}")
                int_reg = SCRATCH3
            mnemonic = "add" if op == "+" else "sub"
            if op == "-" and not lhs_ptr:
                raise CompileError("integer - pointer is invalid", expr.line)
            self.emit(f"{mnemonic} {ptr_reg}, {int_reg}, {register}")
            return

        if op == "-" and lhs_ptr and rhs_ptr:
            scale = lhs_t.decayed().element().size
            self._expr(expr.lhs)
            self._expr(expr.rhs)
            lhs, rhs = self.stack.pop2()
            register = self.stack.push()
            self.emit(f"sub {lhs}, {rhs}, {register}")
            if scale > 1:
                if scale & (scale - 1) == 0:
                    self.emit(f"sra {register}, {scale.bit_length() - 1}, "
                              f"{register}")
                else:
                    self._emit_divide(register, scale_const=scale,
                                      signed=True)
            return

        # Strength reduction: multiply/divide/modulo by a power-of-two
        # constant become shifts/masks (what the paper's gcc would emit;
        # essential for the Figure 7 kernel's `i % 1024` not to drown the
        # cache effect under a 35-cycle divide).
        if isinstance(expr.rhs, A.IntLit) and expr.rhs.value > 0 and \
                (expr.rhs.value & (expr.rhs.value - 1)) == 0 and \
                op in ("*", "/", "%"):
            constant = expr.rhs.value
            shift = constant.bit_length() - 1
            unsigned_lhs = expr.lhs.ctype.is_unsigned
            if op == "*" or (op in ("/", "%") and unsigned_lhs):
                self._expr(expr.lhs)
                register = self.stack.top_register()
                if op == "*":
                    if shift:
                        self.emit(f"sll {register}, {shift}, {register}")
                elif op == "/":
                    if shift:
                        self.emit(f"srl {register}, {shift}, {register}")
                else:
                    self.emit(f"and {register}, {constant - 1}, {register}")
                return

        self._expr(expr.lhs)
        self._expr(expr.rhs)
        lhs, rhs = self.stack.pop2()
        register = self.stack.push()
        unsigned = expr.ctype.is_unsigned
        simple = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                  "<<": "sll"}
        if op in simple:
            self.emit(f"{simple[op]} {lhs}, {rhs}, {register}")
        elif op == ">>":
            mnemonic = "srl" if expr.lhs.ctype.is_unsigned else "sra"
            self.emit(f"{mnemonic} {lhs}, {rhs}, {register}")
        elif op == "*":
            mnemonic = "umul" if unsigned else "smul"
            self.emit(f"{mnemonic} {lhs}, {rhs}, {register}")
        elif op in ("/", "%"):
            self._emit_y_setup(lhs, unsigned)
            divide = "udiv" if unsigned else "sdiv"
            if op == "/":
                self.emit(f"{divide} {lhs}, {rhs}, {register}")
            else:
                # a % b = a - (a / b) * b; SCRATCH3 so the quotient can't
                # clobber a spill-reloaded lhs in %g1.
                self.emit(f"{divide} {lhs}, {rhs}, {SCRATCH3}")
                mul = "umul" if unsigned else "smul"
                self.emit(f"{mul} {SCRATCH3}, {rhs}, {SCRATCH3}")
                self.emit(f"sub {lhs}, {SCRATCH3}, {register}")
        else:  # pragma: no cover
            raise AssertionError(f"unknown operator {op}")

    def _emit_y_setup(self, dividend_reg: str, unsigned: bool) -> None:
        """SPARC divide uses the 64-bit Y:rs1 dividend; set Y accordingly.
        WRY has a 3-instruction hazard window on real silicon."""
        if unsigned:
            self.emit("wr %g0, 0, %y")
        else:
            self.emit(f"sra {dividend_reg}, 31, {SCRATCH3}")
            self.emit(f"wr {SCRATCH3}, 0, %y")
        self.emit("nop")
        self.emit("nop")
        self.emit("nop")

    def _emit_divide(self, register: str, scale_const: int,
                     signed: bool) -> None:
        self.emit(f"sra {register}, 31, {SCRATCH}" if signed
                  else "wr %g0, 0, %y")
        if signed:
            self.emit(f"wr {SCRATCH}, 0, %y")
        self.emit("nop")
        self.emit("nop")
        self.emit("nop")
        self.emit(f"set {scale_const}, {SCRATCH}")
        divide = "sdiv" if signed else "udiv"
        self.emit(f"{divide} {register}, {SCRATCH}, {register}")

    def _gen_logical(self, expr: A.Binary) -> None:
        register = self.stack.push()
        short_label = self.new_label("Lsc")
        done = self.new_label("Lscend")
        if expr.op == "&&":
            self._branch_if_false(expr.lhs, short_label)
            self._branch_if_false(expr.rhs, short_label)
            self.emit(f"ba {done}")
            self.emit(f"mov 1, {register}")   # delay slot does the work
            self.emit_label(short_label)
            self.emit(f"mov 0, {register}")
        else:
            self._branch_if_true(expr.lhs, short_label)
            self._branch_if_true(expr.rhs, short_label)
            self.emit(f"ba {done}")
            self.emit(f"mov 0, {register}")
            self.emit_label(short_label)
            self.emit(f"mov 1, {register}")
        self.emit_label(done)

    def _gen_conditional(self, expr: A.Conditional) -> None:
        register = self.stack.push()
        else_label = self.new_label("Lcelse")
        done = self.new_label("Lcend")
        self._branch_if_false(expr.cond, else_label)
        self._expr(expr.then)
        value = self.stack.pop()
        self.emit(f"mov {value}, {register}")
        self.emit(f"ba {done}")
        self.emit("nop")
        self.emit_label(else_label)
        self._expr(expr.otherwise)
        value = self.stack.pop()
        self.emit(f"mov {value}, {register}")
        self.emit_label(done)

    # ------------------------------------------------------------------
    # Assignment / inc-dec / calls
    # ------------------------------------------------------------------

    def _gen_assign(self, expr: A.Assign) -> None:
        target_type = expr.target.ctype

        # Fast path: simple store to a named scalar.
        if expr.op == "=" and isinstance(expr.target, A.Ident) \
                and not target_type.is_array:
            self._expr(expr.value)
            register = self.stack.top_register()
            kind, value = expr.target.binding
            store = self._store_op(target_type)
            if kind == "local":
                self.emit(f"{store} {register}, [%fp - {value}]")
            else:
                self.emit(f"set {value}, {SCRATCH}")
                self.emit(f"{store} {register}, [{SCRATCH}]")
            return

        self._gen_addr(expr.target)
        if expr.op == "=":
            self._expr(expr.value)
            value_reg = self.stack.pop(into=SCRATCH2)
            addr_reg = self.stack.pop()
            result = self.stack.push()
            self.emit(f"{self._store_op(target_type)} {value_reg}, "
                      f"[{addr_reg}]")
            self.emit(f"mov {value_reg}, {result}")
            return

        # Compound assignment: load, operate, store.
        binary_op = expr.op[:-1]
        self.stack.dup()
        self._load_from_top(target_type)
        self._expr(expr.value)
        rhs = self.stack.pop(into=SCRATCH2)
        current = self.stack.pop()
        result = self.stack.push()        # stack: [addr, result]
        self._emit_compound_op(binary_op, current, rhs, result,
                               target_type, expr)
        addr = self.stack.pop_below()
        self.emit(f"{self._store_op(target_type)} {result}, [{addr}]")

    def _emit_compound_op(self, op: str, lhs: str, rhs: str, result: str,
                          target_type: CType, expr: A.Assign) -> None:
        unsigned = target_type.is_unsigned
        if target_type.is_pointer and op in ("+", "-"):
            scale = target_type.element().size
            if scale > 1:
                if scale & (scale - 1) == 0:
                    self.emit(f"sll {rhs}, {scale.bit_length() - 1}, {rhs}")
                else:
                    self.emit(f"set {scale}, {SCRATCH3}")
                    self.emit(f"umul {rhs}, {SCRATCH3}, {rhs}")
        simple = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
                  "<<": "sll"}
        if op in simple:
            self.emit(f"{simple[op]} {lhs}, {rhs}, {result}")
        elif op == ">>":
            self.emit(f"{'srl' if unsigned else 'sra'} {lhs}, {rhs}, {result}")
        elif op == "*":
            self.emit(f"{'umul' if unsigned else 'smul'} {lhs}, {rhs}, "
                      f"{result}")
        elif op in ("/", "%"):
            self._emit_y_setup(lhs, unsigned)
            divide = "udiv" if unsigned else "sdiv"
            if op == "/":
                self.emit(f"{divide} {lhs}, {rhs}, {result}")
            else:
                self.emit(f"{divide} {lhs}, {rhs}, {SCRATCH3}")
                mul = "umul" if unsigned else "smul"
                self.emit(f"{mul} {SCRATCH3}, {rhs}, {SCRATCH3}")
                self.emit(f"sub {lhs}, {SCRATCH3}, {result}")
        else:  # pragma: no cover
            raise AssertionError(op)

    def _gen_incdec(self, expr: A.IncDec) -> None:
        ctype = expr.target.ctype
        step = 1
        if ctype.is_pointer:
            step = ctype.element().size
        mnemonic = "add" if expr.op == "++" else "sub"
        self._gen_addr(expr.target)
        result = self.stack.push()        # stack: [addr, result]
        addr = self.stack.pop_below()
        load = self._load_op(ctype)
        store = self._store_op(ctype)
        if expr.prefix:
            self.emit(f"{load} [{addr}], {result}")
            self.emit(f"{mnemonic} {result}, {step}, {result}")
            self.emit(f"{store} {result}, [{addr}]")
        else:
            self.emit(f"{load} [{addr}], {result}")
            self.emit(f"{mnemonic} {result}, {step}, {SCRATCH}")
            self.emit(f"{store} {SCRATCH}, [{addr}]")

    def _gen_call(self, expr: A.Call) -> None:
        for arg in expr.args:
            self._expr(arg)
        # Move argument values into %o registers (reverse pop order).
        for index in reversed(range(len(expr.args))):
            register = self.stack.pop()
            self.emit(f"mov {register}, %o{index}")
        self.emit(f"call {expr.name}")
        self.emit("nop")
        result = self.stack.push()
        self.emit(f"mov %o0, {result}")


def generate(sema: SemanticAnalyzer) -> str:
    return CodeGen(sema).generate()
