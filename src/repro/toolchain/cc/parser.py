"""Mini-C recursive-descent parser.

Grammar (C89-flavoured subset):

    unit        := (function | global)*
    type        := ['volatile'|'const'|'static'|'extern']* base '*'*
    base        := 'void' | 'char' | 'int' | 'unsigned' ['int'|'char'] | ...
    function    := type ident '(' params ')' (compound | ';')
    global      := type declarator (',' declarator)* ';'
    declarator  := '*'* ident ['[' const-expr ']'] ['=' initializer]

Expressions implement the full C precedence ladder down to comma-free
assignment; ``sizeof``, casts, pre/post inc/dec, short-circuit logicals
and the ternary operator are included.  ``__builtin_custom(opf, a, b)``
parses into :class:`~repro.toolchain.cc.cast.CustomOp`.
"""

from __future__ import annotations

from repro.toolchain.cc import cast as A
from repro.toolchain.cc.cast import CompileError, CType
from repro.toolchain.cc.lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

_BASE_KEYWORDS = {"void", "char", "int", "unsigned", "signed", "short",
                  "long"}
_QUALIFIERS = {"volatile", "const", "static", "extern"}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise CompileError(f"expected '{want}', got '{token.text}'",
                               token.line)
        return self.next()

    # -- types ---------------------------------------------------------------

    def _at_type(self) -> bool:
        token = self.peek()
        return token.kind == "kw" and (token.text in _BASE_KEYWORDS
                                       or token.text in _QUALIFIERS)

    def parse_type(self) -> tuple[CType, bool]:
        """Parse qualifiers + base + stars; returns (type, is_extern)."""
        volatile = False
        is_extern = False
        words: list[str] = []
        while True:
            token = self.peek()
            if token.kind == "kw" and token.text in _QUALIFIERS:
                self.next()
                if token.text == "volatile":
                    volatile = True
                if token.text == "extern":
                    is_extern = True
                continue
            if token.kind == "kw" and token.text in _BASE_KEYWORDS:
                self.next()
                words.append(token.text)
                continue
            break
        if not words:
            raise CompileError(f"expected a type, got '{self.peek().text}'",
                               self.peek().line)
        base = self._resolve_base(words)
        pointer = 0
        while self.accept("op", "*"):
            pointer += 1
            # Qualifiers after '*' bind to the pointer; we just accept them.
            while self.peek().kind == "kw" and self.peek().text in _QUALIFIERS:
                self.next()
        return CType(base, pointer, None, volatile), is_extern

    @staticmethod
    def _resolve_base(words: list[str]) -> str:
        unsigned = "unsigned" in words
        if "void" in words:
            return "void"
        if "char" in words:
            return "uchar" if unsigned else "char"
        # short/long/int all map to the 32-bit integer in this model.
        return "unsigned" if unsigned else "int"

    # -- top level ---------------------------------------------------------------

    def parse_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while not self.at("eof"):
            self._top_level(unit)
        return unit

    def _top_level(self, unit: A.TranslationUnit) -> None:
        line = self.peek().line
        ctype, is_extern = self.parse_type()
        name = self.expect("ident").text
        if self.at("op", "("):
            unit.functions.append(self._function(ctype, name, line))
            return
        # Global variable(s).
        while True:
            var_type = self._array_suffix(ctype)
            init, init_list = self._initializer(var_type)
            unit.globals.append(A.Global(name, var_type, init, init_list,
                                         line, is_extern))
            if not self.accept("op", ","):
                break
            pointer = 0
            while self.accept("op", "*"):
                pointer += 1
            ctype = CType(ctype.base, pointer, None, ctype.volatile)
            name = self.expect("ident").text
        self.expect("op", ";")

    def _array_suffix(self, ctype: CType) -> CType:
        if self.accept("op", "["):
            length_tok = self.peek()
            length = self._const_expr()
            self.expect("op", "]")
            if length <= 0:
                raise CompileError("array length must be positive",
                                   length_tok.line)
            return CType(ctype.base, ctype.pointer, length, ctype.volatile)
        return ctype

    def _initializer(self, ctype: CType):
        if not self.accept("op", "="):
            return None, None
        if self.accept("op", "{"):
            items = []
            if not self.at("op", "}"):
                items.append(self.parse_assignment())
                while self.accept("op", ","):
                    if self.at("op", "}"):
                        break
                    items.append(self.parse_assignment())
            self.expect("op", "}")
            return None, items
        return self.parse_assignment(), None

    def _const_expr(self) -> int:
        expr = self.parse_conditional()
        return _fold_const(expr)

    def _function(self, return_type: CType, name: str, line: int) -> A.Function:
        self.expect("op", "(")
        params: list[A.Param] = []
        if not self.at("op", ")"):
            if self.at("kw", "void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    ptype, _ = self.parse_type()
                    pname_tok = self.expect("ident")
                    ptype = self._array_suffix(ptype).decayed()
                    params.append(A.Param(pname_tok.text, ptype,
                                          pname_tok.line))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        if self.accept("op", ";"):
            return A.Function(name, return_type, params, None, line)
        body = self.parse_compound()
        return A.Function(name, return_type, params, body, line)

    # -- statements ---------------------------------------------------------------

    def parse_compound(self) -> A.Compound:
        open_tok = self.expect("op", "{")
        body: list[A.Stmt] = []
        while not self.at("op", "}"):
            if self.at("eof"):
                raise CompileError("unterminated block", open_tok.line)
            body.append(self.parse_statement())
        self.expect("op", "}")
        return A.Compound(body, line=open_tok.line)

    def parse_statement(self) -> A.Stmt:
        token = self.peek()
        if self.at("op", "{"):
            return self.parse_compound()
        if self.at("op", ";"):
            self.next()
            return A.Compound([], line=token.line)
        if self._at_type():
            return self._local_decl()
        if token.kind == "kw":
            handler = {
                "if": self._if, "while": self._while, "do": self._do,
                "for": self._for, "return": self._return,
                "break": self._break, "continue": self._continue,
            }.get(token.text)
            if handler:
                return handler()
        expr = self.parse_expression()
        self.expect("op", ";")
        return A.ExprStmt(expr, line=token.line)

    def _local_decl(self) -> A.Stmt:
        line = self.peek().line
        ctype, _ = self.parse_type()
        decls: list[A.Stmt] = []
        while True:
            name = self.expect("ident").text
            var_type = self._array_suffix(ctype)
            init, init_list = self._initializer(var_type)
            decls.append(A.VarDecl(name, var_type, init, init_list,
                                   line=line))
            if not self.accept("op", ","):
                break
            pointer = 0
            while self.accept("op", "*"):
                pointer += 1
            ctype = CType(ctype.base, pointer, None, ctype.volatile)
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return A.DeclList(decls, line=line)

    def _if(self) -> A.Stmt:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self.accept("kw", "else") else None
        return A.If(cond, then, otherwise, line=line)

    def _while(self) -> A.Stmt:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        return A.While(cond, self.parse_statement(), line=line)

    def _do(self) -> A.Stmt:
        line = self.expect("kw", "do").line
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return A.DoWhile(body, cond, line=line)

    def _for(self) -> A.Stmt:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: A.Stmt | None = None
        if not self.at("op", ";"):
            if self._at_type():
                init = self._local_decl()  # consumes the ';'
            else:
                init = A.ExprStmt(self.parse_expression(), line=line)
                self.expect("op", ";")
        else:
            self.next()
        cond = None
        if not self.at("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.at("op", ")"):
            step = self.parse_expression()
        self.expect("op", ")")
        return A.For(init, cond, step, self.parse_statement(), line=line)

    def _return(self) -> A.Stmt:
        line = self.expect("kw", "return").line
        value = None
        if not self.at("op", ";"):
            value = self.parse_expression()
        self.expect("op", ";")
        return A.Return(value, line=line)

    def _break(self) -> A.Stmt:
        line = self.expect("kw", "break").line
        self.expect("op", ";")
        return A.Break(line=line)

    def _continue(self) -> A.Stmt:
        line = self.expect("kw", "continue").line
        self.expect("op", ";")
        return A.Continue(line=line)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> A.Expr:
        """Comma operator: evaluate left, yield right."""
        expr = self.parse_assignment()
        while self.at("op", ","):
            line = self.next().line
            rhs = self.parse_assignment()
            expr = A.Binary(",", expr, rhs, line=line)
        return expr

    def parse_assignment(self) -> A.Expr:
        lhs = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return A.Assign(token.text, lhs, rhs, line=token.line)
        return lhs

    def parse_conditional(self) -> A.Expr:
        cond = self._binary(0)
        if self.at("op", "?"):
            line = self.next().line
            then = self.parse_expression()
            self.expect("op", ":")
            otherwise = self.parse_conditional()
            return A.Conditional(cond, then, otherwise, line=line)
        return cond

    _PRECEDENCE = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="),
        ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def _binary(self, level: int) -> A.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self._binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            token = self.next()
            rhs = self._binary(level + 1)
            lhs = A.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def parse_unary(self) -> A.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("!", "~", "-", "+"):
            self.next()
            operand = self.parse_unary()
            if token.text == "+":
                return operand
            return A.Unary(token.text, operand, line=token.line)
        if token.kind == "op" and token.text == "*":
            self.next()
            return A.Deref(self.parse_unary(), line=token.line)
        if token.kind == "op" and token.text == "&":
            self.next()
            return A.AddrOf(self.parse_unary(), line=token.line)
        if token.kind == "op" and token.text in ("++", "--"):
            self.next()
            return A.IncDec(token.text, True, self.parse_unary(),
                            line=token.line)
        if token.kind == "kw" and token.text == "sizeof":
            self.next()
            if self.at("op", "(") and self._type_ahead(1):
                self.next()
                ctype, _ = self.parse_type()
                ctype = self._array_suffix(ctype)
                self.expect("op", ")")
                return A.SizeOf(ctype, None, line=token.line)
            return A.SizeOf(None, self.parse_unary(), line=token.line)
        if self.at("op", "(") and self._type_ahead(1):
            self.next()
            ctype, _ = self.parse_type()
            self.expect("op", ")")
            return A.Cast(ctype, self.parse_unary(), line=token.line)
        return self.parse_postfix()

    def _type_ahead(self, offset: int) -> bool:
        token = self.peek(offset)
        return token.kind == "kw" and (token.text in _BASE_KEYWORDS
                                       or token.text in _QUALIFIERS)

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if self.at("op", "["):
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = A.Index(expr, index, line=token.line)
            elif self.at("op", "(") and isinstance(expr, A.Ident):
                expr = self._call(expr)
            elif self.at("op", "++") or self.at("op", "--"):
                self.next()
                expr = A.IncDec(token.text, False, expr, line=token.line)
            else:
                return expr

    def _call(self, callee: A.Ident) -> A.Expr:
        open_tok = self.expect("op", "(")
        args: list[A.Expr] = []
        if not self.at("op", ")"):
            args.append(self.parse_assignment())
            while self.accept("op", ","):
                args.append(self.parse_assignment())
        self.expect("op", ")")
        if callee.name == "__builtin_custom":
            if len(args) != 3:
                raise CompileError("__builtin_custom(opf, a, b) takes 3 "
                                   "arguments", open_tok.line)
            opf = _fold_const(args[0])
            return A.CustomOp(opf, args[1], args[2], line=open_tok.line)
        return A.Call(callee.name, args, line=open_tok.line)

    def parse_primary(self) -> A.Expr:
        token = self.next()
        if token.kind == "num":
            return A.IntLit(token.value, line=token.line)
        if token.kind == "string":
            return A.StrLit(token.value, line=token.line)
        if token.kind == "ident":
            return A.Ident(token.text, line=token.line)
        if token.kind == "op" and token.text == "(":
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token '{token.text}'", token.line)


def _norm32(value: int, unsigned: bool) -> int:
    """32-bit wrap-around into the type's value range: [0, 2**32) for
    unsigned, [-2**31, 2**31) two's complement for signed."""
    value &= 0xFFFFFFFF
    if not unsigned and value >= (1 << 31):
        value -= 1 << 32
    return value


def _trunc_div(a: int, b: int) -> int:
    """C signed division: truncate toward zero (Python's // floors)."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _trunc_mod(a: int, b: int) -> int:
    """C signed remainder: sign follows the dividend."""
    if b == 0:
        return 0
    return a - _trunc_div(a, b) * b


#: Lazy per-operator folders over (value, both-operands-unsigned).
#: Division, remainder, right shift and the orderings are the operators
#: whose result depends on signedness; shift counts are masked to the
#: low five bits, matching the SPARC shifter's register behaviour.
_FOLD_BINOPS = {
    "+": lambda a, b, u: a + b,
    "-": lambda a, b, u: a - b,
    "*": lambda a, b, u: a * b,
    "/": lambda a, b, u: (a // b if b else 0) if u else _trunc_div(a, b),
    "%": lambda a, b, u: (a % b if b else 0) if u else _trunc_mod(a, b),
    "<<": lambda a, b, u: a << (b & 31),
    ">>": lambda a, b, u: a >> (b & 31),
    "&": lambda a, b, u: a & b,
    "|": lambda a, b, u: a | b,
    "^": lambda a, b, u: a ^ b,
    "==": lambda a, b, u: int(a == b),
    "!=": lambda a, b, u: int(a != b),
    "<": lambda a, b, u: int(a < b),
    ">": lambda a, b, u: int(a > b),
    "<=": lambda a, b, u: int(a <= b),
    ">=": lambda a, b, u: int(a >= b),
    "&&": lambda a, b, u: int(bool(a) and bool(b)),
    "||": lambda a, b, u: int(bool(a) or bool(b)),
}

#: Operators whose folded result keeps the operands' unsignedness (the
#: comparisons and logicals always produce a signed 0/1).
_FOLD_VALUE_OPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"}


def _fold_typed(expr: A.Expr) -> tuple[int, bool]:
    """Fold to (value, is_unsigned) with C semantics: literals that
    don't fit a signed int are unsigned (the 0xFFFFFFFF rule), the usual
    arithmetic conversions make an operation unsigned when either side
    is, and everything wraps to 32 bits."""
    if isinstance(expr, A.IntLit):
        unsigned = expr.value >= (1 << 31)
        return _norm32(expr.value, unsigned), unsigned
    if isinstance(expr, A.Unary):
        inner, unsigned = _fold_typed(expr.operand)
        if expr.op == "!":
            return int(not inner), False
        value = -inner if expr.op == "-" else ~inner
        return _norm32(value, unsigned), unsigned
    if isinstance(expr, A.Binary):
        try:
            fold = _FOLD_BINOPS[expr.op]
        except KeyError:
            raise CompileError(
                f"operator '{expr.op}' is not a compile-time constant",
                getattr(expr, "line", 0)) from None
        (a, a_u), (b, b_u) = _fold_typed(expr.lhs), _fold_typed(expr.rhs)
        unsigned = a_u or b_u
        if unsigned:  # usual arithmetic conversions: compute on u32
            a, b = _norm32(a, True), _norm32(b, True)
        result_unsigned = unsigned and expr.op in _FOLD_VALUE_OPS
        return _norm32(fold(a, b, unsigned), result_unsigned), result_unsigned
    if isinstance(expr, A.SizeOf) and expr.target is not None:
        return expr.target.size, True
    raise CompileError("expression is not a compile-time constant",
                       getattr(expr, "line", 0))


def _fold_const(expr: A.Expr) -> int:
    """Fold a compile-time constant expression (array sizes, opf codes,
    global initializers)."""
    return _fold_typed(expr)[0]


def parse(source: str) -> A.TranslationUnit:
    return Parser(tokenize(source)).parse_unit()
