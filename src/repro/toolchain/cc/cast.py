"""Mini-C abstract syntax tree and type model.

Types are value objects: a base kind (``int``/``unsigned``/``char``/
``uchar``/``void``) plus a pointer depth and an optional array length.
``int``/``unsigned``/pointers are 32-bit; ``char`` is a byte.  Arrays are
one-dimensional with compile-time length and decay to pointers in
expressions, as in C.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CompileError(Exception):
    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    base: str                  # 'int' | 'unsigned' | 'char' | 'uchar' | 'void'
    pointer: int = 0           # levels of indirection
    array_len: int | None = None  # outermost array dimension, if any
    volatile: bool = False

    def __post_init__(self) -> None:
        if self.base not in ("int", "unsigned", "char", "uchar", "void"):
            raise CompileError(f"unknown base type '{self.base}'")

    # -- structural helpers ----------------------------------------------

    @property
    def is_pointer(self) -> bool:
        return self.pointer > 0 and self.array_len is None

    @property
    def is_array(self) -> bool:
        return self.array_len is not None

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointer == 0

    @property
    def is_unsigned(self) -> bool:
        if self.pointer:
            return True  # pointer comparisons are unsigned
        return self.base in ("unsigned", "uchar")

    def element(self) -> "CType":
        """The type this array/pointer refers to."""
        if self.is_array:
            return CType(self.base, self.pointer, None, self.volatile)
        if self.pointer:
            return CType(self.base, self.pointer - 1, None, self.volatile)
        raise CompileError(f"cannot dereference non-pointer {self}")

    def decayed(self) -> "CType":
        """Array-to-pointer decay."""
        if self.is_array:
            return CType(self.base, self.pointer + 1, None, self.volatile)
        return self

    def pointer_to(self) -> "CType":
        return CType(self.base, self.decayed().pointer + 1
                     if self.is_array else self.pointer + 1)

    @property
    def size(self) -> int:
        if self.is_array:
            return self.element().size * self.array_len
        if self.pointer:
            return 4
        return {"int": 4, "unsigned": 4, "char": 1, "uchar": 1,
                "void": 1}[self.base]

    @property
    def load_size(self) -> int:
        """Size of a scalar load/store of this type (1 or 4)."""
        if self.pointer or self.base in ("int", "unsigned"):
            return 4
        return 1

    def __str__(self) -> str:
        text = self.base + "*" * self.pointer
        if self.is_array:
            text += f"[{self.array_len}]"
        return text


INT = CType("int")
UNSIGNED = CType("unsigned")
CHAR = CType("char")
VOID = CType("void")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)
    ctype: CType | None = field(default=None, kw_only=True)  # set by sema


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""
    label: str | None = field(default=None, kw_only=True)  # set by sema


@dataclass
class Ident(Expr):
    name: str = ""
    # Filled by sema: ('local', offset) | ('param', idx) | ('global', label)
    binding: tuple | None = field(default=None, kw_only=True)


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Assign(Expr):
    op: str = "="           # '=', '+=', ...
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Conditional(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass
class Deref(Expr):
    pointer: Expr | None = None


@dataclass
class AddrOf(Expr):
    operand: Expr | None = None


@dataclass
class Cast(Expr):
    target: CType | None = None
    operand: Expr | None = None


@dataclass
class SizeOf(Expr):
    target: CType | None = None
    operand: Expr | None = None


@dataclass
class IncDec(Expr):
    op: str = "++"
    prefix: bool = True
    target: Expr | None = None


@dataclass
class CustomOp(Expr):
    """``__builtin_custom(opf, a, b)`` — emits a CPop1 instruction.  The
    Liquid rewrite recipes use this to target custom accelerators."""

    opf: int = 0
    lhs: Expr | None = None
    rhs: Expr | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Compound(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None        # ExprStmt or VarDecl or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class DeclList(Stmt):
    """Several declarators from one statement (``int a, b;``) — unlike a
    Compound, this does not open a scope."""

    decls: list["VarDecl"] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: CType | None = None
    init: Expr | None = None
    init_list: list[Expr] | None = None   # array initializers
    # Filled by sema for locals: frame offset.
    offset: int | None = field(default=None, kw_only=True)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0


@dataclass
class Function:
    name: str
    return_type: CType
    params: list[Param]
    body: Compound | None      # None for a declaration (prototype / extern)
    line: int = 0
    # Filled by sema:
    frame_size: int = 0
    locals: dict = field(default_factory=dict)


@dataclass
class Global:
    name: str
    ctype: CType
    init: Expr | None = None
    init_list: list[Expr] | None = None
    line: int = 0
    is_extern: bool = False


@dataclass
class TranslationUnit:
    functions: list[Function] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    strings: dict[str, str] = field(default_factory=dict)  # label -> text
