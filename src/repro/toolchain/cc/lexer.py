"""Mini-C lexer.

Tokenizes the C subset the Liquid toolchain compiles (the paper's flow
used LECCS gcc-2.95; our from-scratch compiler accepts the language that
the paper's workloads — and our benchmark kernels — are written in:
ints/chars/pointers/arrays, full expression and statement grammar,
functions, globals, `volatile` for memory-mapped I/O).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "int", "unsigned", "signed", "char", "short", "long", "void",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "volatile", "const", "static", "extern", "sizeof",
}

# Longest-first so '<<=' wins over '<<' wins over '<'.
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ",", ";", "(", ")", "{", "}", "[", "]",
]

_OP_RE = re.compile("|".join(re.escape(op) for op in OPERATORS))
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"0[xX][0-9a-fA-F]+[uUlL]*|0[bB][01]+[uUlL]*|\d+[uUlL]*")
_CHAR_RE = re.compile(r"'(\\x[0-9a-fA-F]{1,2}|\\.|[^'\\])'")
_STRING_RE = re.compile(r'"(\\.|[^"\\])*"')

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "b": "\b", "f": "\f", "v": "\v"}


class LexError(Exception):
    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {message}")


@dataclass(frozen=True)
class Token:
    kind: str       # 'ident' | 'num' | 'char' | 'string' | 'kw' | 'op' | 'eof'
    text: str
    value: int | str | None
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def _strip_comments(source: str) -> str:
    """Remove // and /* */ comments, preserving line numbers."""
    out = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", line)
            out.append("\n" * source.count("\n", i, end + 2))
            line += source.count("\n", i, end + 2)
            i = end + 2
        elif ch in "\"'":
            # Don't strip comment-like text inside literals.
            regex = _STRING_RE if ch == '"' else _CHAR_RE
            match = regex.match(source, i)
            if not match:
                raise LexError(f"unterminated {ch} literal", line)
            out.append(match.group(0))
            i = match.end()
        else:
            if ch == "\n":
                line += 1
            out.append(ch)
            i += 1
    return "".join(out)


def _decode_escapes(body: str) -> str:
    out = []
    i = 0
    while i < len(body):
        if body[i] == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            if nxt == "x" and i + 3 < len(body) + 1:
                hexpart = body[i + 2:i + 4]
                out.append(chr(int(hexpart, 16)))
                i += 4
                continue
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(body[i])
            i += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    source = _strip_comments(source)
    tokens: list[Token] = []
    i, line = 0, 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch == "#":  # preprocessor lines are not supported; skip them
            while i < n and source[i] != "\n":
                i += 1
            continue
        match = _NUM_RE.match(source, i)
        if match:
            text = match.group(0).rstrip("uUlL")
            tokens.append(Token("num", match.group(0), int(text, 0), line))
            i = match.end()
            continue
        match = _IDENT_RE.match(source, i)
        if match:
            text = match.group(0)
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, text, line))
            i = match.end()
            continue
        match = _CHAR_RE.match(source, i)
        if match:
            decoded = _decode_escapes(match.group(1))
            tokens.append(Token("num", match.group(0), ord(decoded), line))
            i = match.end()
            continue
        match = _STRING_RE.match(source, i)
        if match:
            decoded = _decode_escapes(match.group(0)[1:-1])
            tokens.append(Token("string", match.group(0), decoded, line))
            i = match.end()
            continue
        match = _OP_RE.match(source, i)
        if match:
            tokens.append(Token("op", match.group(0), match.group(0), line))
            i = match.end()
            continue
        raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens
