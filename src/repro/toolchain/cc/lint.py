"""Source-level lint for the mini-C front end.

Reuses the typed diagnostic model of :mod:`repro.analysis.diagnostics`
(one currency for machine-code and source findings) and runs on the
parsed AST — no sema required, so even code that fails later stages can
be linted.  Two analyses, both scope-aware:

* ``use-before-init`` — a local variable read on some path before any
  assignment.  Definite-assignment rules mirror the binary verifier's
  ``DefinedRegisters`` analysis: branches intersect, loops may run
  zero times (``do``/``while`` runs at least once), and taking a
  variable's address conservatively counts as initializing it.
* ``unreachable-stmt`` — statements following a ``return`` / ``break``
  / ``continue`` (or a construct that terminates on every path) inside
  the same block.

Findings are warnings: mini-C has no undefined-behaviour police, and
the kernels' CI gate keys on errors.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.toolchain.cc import cast as A
from repro.toolchain.cc.parser import parse


def lint_source(source: str,
                subject: str = "<source>") -> DiagnosticReport:
    """Parse and lint mini-C text.  A parse failure becomes a single
    ``parse-error`` diagnostic instead of an exception."""
    report = DiagnosticReport(subject=subject)
    try:
        unit = parse(source)
    except A.CompileError as exc:
        report.error("parse-error", str(exc))
        return report
    return lint_unit(unit, subject=subject)


def lint_unit(unit: A.TranslationUnit,
              subject: str = "<unit>") -> DiagnosticReport:
    report = DiagnosticReport(subject=subject)
    for function in unit.functions:
        if function.body is not None:
            _FunctionLinter(function, report).run()
    return report


class _FunctionLinter:
    """Walks one function body carrying the definite-assignment state.

    State is the set of *uninitialized* local names currently in scope
    (everything else — params, globals, initialized locals — is fine).
    Statement walkers return ``True`` when the statement terminates on
    every path (return/break/continue), which both feeds the
    unreachable check and stops state propagation.
    """

    def __init__(self, function: A.Function, report: DiagnosticReport):
        self.function = function
        self.report = report

    def run(self) -> None:
        self._compound(self.function.body, set())

    # -- statements --------------------------------------------------------

    def _statement(self, stmt: A.Stmt, uninit: set[str]) -> bool:
        """Lint *stmt*, updating *uninit* in place; True if it always
        transfers control out of the enclosing block."""
        if isinstance(stmt, A.Compound):
            return self._compound(stmt, uninit)
        if isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, uninit)
            return False
        if isinstance(stmt, A.DeclList):
            for decl in stmt.decls:
                self._statement(decl, uninit)
            return False
        if isinstance(stmt, A.VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init, uninit)
            if stmt.init_list is not None:
                for expr in stmt.init_list:
                    self._expr(expr, uninit)
            # Arrays are scratch buffers filled element-wise; tracking
            # them per-element is out of scope, so only scalars count.
            is_scalar = stmt.ctype is None or not stmt.ctype.is_array
            if stmt.init is None and stmt.init_list is None and is_scalar:
                uninit.add(stmt.name)
            else:
                uninit.discard(stmt.name)
            return False
        if isinstance(stmt, A.If):
            self._expr(stmt.cond, uninit)
            then_state = set(uninit)
            else_state = set(uninit)
            then_exits = self._statement(stmt.then, then_state) \
                if stmt.then is not None else False
            else_exits = self._statement(stmt.otherwise, else_state) \
                if stmt.otherwise is not None else False
            # Definite assignment after the if: a variable is
            # initialized iff every *continuing* path initialized it.
            if then_exits and else_exits:
                merged = set(uninit)  # nothing continues; state is moot
            elif then_exits:
                merged = else_state
            elif else_exits:
                merged = then_state
            else:
                merged = then_state | else_state
            uninit.clear()
            uninit.update(merged)
            return then_exits and else_exits
        if isinstance(stmt, A.While):
            self._expr(stmt.cond, uninit)
            body_state = set(uninit)
            if stmt.body is not None:
                self._statement(stmt.body, body_state)
            # Zero iterations possible: the post-state is the pre-state.
            return False
        if isinstance(stmt, A.DoWhile):
            # The body runs at least once, so its effects are definite.
            exits = self._statement(stmt.body, uninit) \
                if stmt.body is not None else False
            self._expr(stmt.cond, uninit)
            return exits
        if isinstance(stmt, A.For):
            if stmt.init is not None:
                self._statement(stmt.init, uninit)
            if stmt.cond is not None:
                self._expr(stmt.cond, uninit)
            body_state = set(uninit)
            if stmt.body is not None:
                self._statement(stmt.body, body_state)
            if stmt.step is not None:
                self._expr(stmt.step, body_state)
            return False
        if isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._expr(stmt.value, uninit)
            return True
        if isinstance(stmt, (A.Break, A.Continue)):
            return True
        return False

    def _compound(self, block: A.Compound, uninit: set[str]) -> bool:
        declared_here: set[str] = set()
        terminated = False
        for stmt in block.body:
            if terminated:
                self.report.warning(
                    "unreachable-stmt",
                    f"statement is unreachable (follows a "
                    f"{self._terminator_name(block, stmt)})",
                    line=stmt.line, symbol=self.function.name)
                break  # one finding per block is enough
            declared_here |= self._declared_names(stmt)
            terminated = self._statement(stmt, uninit)
        uninit.difference_update(declared_here)
        return terminated

    @staticmethod
    def _declared_names(stmt: A.Stmt) -> set[str]:
        if isinstance(stmt, A.VarDecl):
            return {stmt.name}
        if isinstance(stmt, A.DeclList):
            return {decl.name for decl in stmt.decls}
        return set()

    @staticmethod
    def _terminator_name(block: A.Compound, stmt: A.Stmt) -> str:
        index = block.body.index(stmt)
        before = block.body[index - 1] if index else None
        if isinstance(before, A.Return):
            return "return"
        if isinstance(before, A.Break):
            return "break"
        if isinstance(before, A.Continue):
            return "continue"
        return "statement that always transfers control"

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: A.Expr | None, uninit: set[str]) -> None:
        if expr is None:
            return
        if isinstance(expr, A.Ident):
            if expr.name in uninit:
                self.report.warning(
                    "use-before-init",
                    f"'{expr.name}' may be used before it is "
                    f"initialized", line=expr.line,
                    symbol=self.function.name)
            return
        if isinstance(expr, A.Assign):
            # Compound assignment reads the target first.
            if expr.op != "=" and expr.target is not None:
                self._expr(expr.target, uninit)
            self._expr(expr.value, uninit)
            target = expr.target
            if isinstance(target, A.Ident):
                uninit.discard(target.name)
            else:
                self._expr(target, uninit)
            return
        if isinstance(expr, A.IncDec):
            # ++/-- both reads and writes.
            self._expr(expr.target, uninit)
            if isinstance(expr.target, A.Ident):
                uninit.discard(expr.target.name)
            return
        if isinstance(expr, A.AddrOf):
            # &x escapes: anything may initialize it through the
            # pointer, so stop tracking rather than report noise.
            if isinstance(expr.operand, A.Ident):
                uninit.discard(expr.operand.name)
            else:
                self._expr(expr.operand, uninit)
            return
        if isinstance(expr, A.Unary):
            self._expr(expr.operand, uninit)
        elif isinstance(expr, A.Binary):
            self._expr(expr.lhs, uninit)
            self._expr(expr.rhs, uninit)
        elif isinstance(expr, A.Conditional):
            self._expr(expr.cond, uninit)
            self._expr(expr.then, uninit)
            self._expr(expr.otherwise, uninit)
        elif isinstance(expr, A.Call):
            for arg in expr.args:
                self._expr(arg, uninit)
        elif isinstance(expr, A.Index):
            self._expr(expr.array, uninit)
            self._expr(expr.index, uninit)
        elif isinstance(expr, A.Deref):
            self._expr(expr.pointer, uninit)
        elif isinstance(expr, (A.Cast, A.SizeOf)):
            self._expr(expr.operand, uninit)
        elif isinstance(expr, A.CustomOp):
            self._expr(expr.lhs, uninit)
            self._expr(expr.rhs, uninit)
        # IntLit / StrLit: nothing to do.


__all__ = ["lint_source", "lint_unit"]
