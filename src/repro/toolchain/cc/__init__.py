"""Mini-C compiler: lexer → parser → sema → SPARC V8 codegen."""

from repro.toolchain.cc.cast import CompileError, CType
from repro.toolchain.cc.codegen import generate
from repro.toolchain.cc.lexer import LexError, tokenize
from repro.toolchain.cc.parser import parse
from repro.toolchain.cc.sema import analyze


def compile_c(source: str) -> str:
    """Compile mini-C source text to SPARC V8 assembly text."""
    unit = parse(source)
    sema = analyze(unit)
    return generate(sema)


__all__ = ["CompileError", "CType", "LexError", "tokenize", "parse",
           "analyze", "generate", "compile_c"]
