"""Cross-compiler substrate: mini-C compiler, assembler, linker, objcopy.

Mirrors the paper's GCC → GAS → LD → OBJCOPY flow:

* :func:`repro.toolchain.driver.compile_c` — mini-C → SPARC assembly
* :func:`repro.toolchain.asm.assemble` — assembly → relocatable object
* :func:`repro.toolchain.linker.link` — objects + memory map → image
* :mod:`repro.toolchain.objcopy` — image → flat binary for UDP loading
"""

from repro.toolchain.asm import assemble
from repro.toolchain.linker import Linker, MemoryMapScript, link
from repro.toolchain.objfile import Image, LinkError, ObjectFile

__all__ = [
    "assemble",
    "Linker",
    "MemoryMapScript",
    "link",
    "Image",
    "LinkError",
    "ObjectFile",
]
