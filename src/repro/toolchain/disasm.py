"""SPARC V8 disassembler — the inverse of the assembler's encoder.

Used by the debugger console of the control software, by error reporting
in the FPX model, and heavily by tests: the encoder→disassembler→assembler
round-trip is property-tested to pin down both directions.
"""

from __future__ import annotations

from repro.cpu.decode import DecodedInstruction, decode
from repro.cpu.isa import (
    BRANCH_MNEMONICS,
    OP2_BICC,
    OP2_CBCCC,
    OP2_FBFCC,
    OP2_SETHI,
    OP2_UNIMP,
    OP_ARITH,
    OP_BRANCH_SETHI,
    OP_CALL,
    TRAP_MNEMONICS,
    Cond,
    Op3,
    Op3Mem,
)
from repro.utils import u32

_REG_NAMES = (
    [f"%g{i}" for i in range(8)] + [f"%o{i}" for i in range(8)]
    + [f"%l{i}" for i in range(8)] + [f"%i{i}" for i in range(8)]
)

_ALU_NAMES = {
    Op3.ADD: "add", Op3.ADDCC: "addcc", Op3.ADDX: "addx", Op3.ADDXCC: "addxcc",
    Op3.SUB: "sub", Op3.SUBCC: "subcc", Op3.SUBX: "subx", Op3.SUBXCC: "subxcc",
    Op3.AND: "and", Op3.ANDCC: "andcc", Op3.ANDN: "andn", Op3.ANDNCC: "andncc",
    Op3.OR: "or", Op3.ORCC: "orcc", Op3.ORN: "orn", Op3.ORNCC: "orncc",
    Op3.XOR: "xor", Op3.XORCC: "xorcc", Op3.XNOR: "xnor", Op3.XNORCC: "xnorcc",
    Op3.TADDCC: "taddcc", Op3.TSUBCC: "tsubcc",
    Op3.TADDCCTV: "taddcctv", Op3.TSUBCCTV: "tsubcctv",
    Op3.MULSCC: "mulscc",
    Op3.UMUL: "umul", Op3.UMULCC: "umulcc",
    Op3.SMUL: "smul", Op3.SMULCC: "smulcc",
    Op3.UDIV: "udiv", Op3.UDIVCC: "udivcc",
    Op3.SDIV: "sdiv", Op3.SDIVCC: "sdivcc",
    Op3.SLL: "sll", Op3.SRL: "srl", Op3.SRA: "sra",
    Op3.SAVE: "save", Op3.RESTORE: "restore",
}

_LOAD_NAMES = {
    Op3Mem.LD: "ld", Op3Mem.LDUB: "ldub", Op3Mem.LDUH: "lduh",
    Op3Mem.LDSB: "ldsb", Op3Mem.LDSH: "ldsh", Op3Mem.LDD: "ldd",
    Op3Mem.LDA: "lda", Op3Mem.LDUBA: "lduba", Op3Mem.LDUHA: "lduha",
    Op3Mem.LDSBA: "ldsba", Op3Mem.LDSHA: "ldsha", Op3Mem.LDDA: "ldda",
    Op3Mem.LDSTUB: "ldstub", Op3Mem.LDSTUBA: "ldstuba",
    Op3Mem.SWAP: "swap", Op3Mem.SWAPA: "swapa",
}
_STORE_NAMES = {
    Op3Mem.ST: "st", Op3Mem.STB: "stb", Op3Mem.STH: "sth", Op3Mem.STD: "std",
    Op3Mem.STA: "sta", Op3Mem.STBA: "stba", Op3Mem.STHA: "stha",
    Op3Mem.STDA: "stda",
}


def _operand2(inst: DecodedInstruction) -> str:
    if inst.imm:
        return str(inst.simm13)
    return _REG_NAMES[inst.rs2]


def _address(inst: DecodedInstruction) -> str:
    if inst.imm:
        if inst.simm13 == 0:
            return f"[{_REG_NAMES[inst.rs1]}]"
        sign = "+" if inst.simm13 >= 0 else "-"
        return f"[{_REG_NAMES[inst.rs1]} {sign} {abs(inst.simm13)}]"
    # Keep the register form explicit even for %g0 so that the
    # disassemble->assemble round trip is byte-exact (i=0 vs i=1).
    return f"[{_REG_NAMES[inst.rs1]} + {_REG_NAMES[inst.rs2]}]"


def disassemble(word: int, pc: int | None = None) -> str:
    """Disassemble a single instruction word.

    When *pc* is given, branch and call targets are shown as absolute
    addresses instead of relative displacements.
    """
    inst = decode(u32(word))
    op = inst.op
    if op == OP_CALL:
        if pc is not None:
            return f"call 0x{u32(pc + (inst.disp30 << 2)):x}"
        return f"call .{inst.disp30 << 2:+d}"
    if op == OP_BRANCH_SETHI:
        return _disasm_fmt2(inst, pc)
    if op == OP_ARITH:
        return _disasm_arith(inst, pc)
    return _disasm_mem(inst)


def _disasm_fmt2(inst: DecodedInstruction, pc: int | None) -> str:
    if inst.op2 == OP2_SETHI:
        if inst.rd == 0 and inst.imm22 == 0:
            return "nop"
        return f"sethi %hi(0x{inst.imm22 << 10:x}), {_REG_NAMES[inst.rd]}"
    if inst.op2 == OP2_BICC:
        name = BRANCH_MNEMONICS[Cond(inst.cond)]
        if inst.annul:
            name += ",a"
        if pc is not None:
            return f"{name} 0x{u32(pc + (inst.disp22 << 2)):x}"
        return f"{name} .{inst.disp22 << 2:+d}"
    if inst.op2 == OP2_UNIMP:
        return f"unimp 0x{inst.imm22:x}"
    if inst.op2 == OP2_FBFCC:
        # No FPU in this core: keep the bytes reassemblable instead of
        # inventing a mnemonic the assembler would reject.
        return f".word 0x{inst.word:08x}  ! fbfcc<{inst.cond}> (fp disabled)"
    if inst.op2 == OP2_CBCCC:
        return f".word 0x{inst.word:08x}  ! cbccc<{inst.cond}> (cp disabled)"
    return f".word 0x{inst.word:08x}"


def _disasm_arith(inst: DecodedInstruction, pc: int | None) -> str:
    try:
        op3 = Op3(inst.op3)
    except ValueError:
        return f".word 0x{inst.word:08x}"
    rd, rs1 = _REG_NAMES[inst.rd], _REG_NAMES[inst.rs1]
    if op3 in _ALU_NAMES:
        return f"{_ALU_NAMES[op3]} {rs1}, {_operand2(inst)}, {rd}"
    if op3 == Op3.JMPL:
        if inst.rd == 0 and inst.rs1 == 31 and inst.imm and inst.simm13 == 8:
            return "ret"
        if inst.rd == 0 and inst.rs1 == 15 and inst.imm and inst.simm13 == 8:
            return "retl"
        return f"jmpl {rs1} + {_operand2(inst)}, {rd}"
    if op3 == Op3.RETT:
        return f"rett {rs1} + {_operand2(inst)}"
    if op3 == Op3.TICC:
        # Comma forms only — the assembler's trap syntax has no
        # `rs1 + imm` shape, and round-tripping matters here.
        name = TRAP_MNEMONICS[Cond(inst.cond)]
        if inst.rs1 == 0:
            return f"{name} {_operand2(inst)}"
        return f"{name} {rs1}, {_operand2(inst)}"
    if op3 == Op3.RDASR:
        src = "%y" if inst.rs1 == 0 else f"%asr{inst.rs1}"
        return f"rd {src}, {rd}"
    if op3 == Op3.RDPSR:
        return f"rd %psr, {rd}"
    if op3 == Op3.RDWIM:
        return f"rd %wim, {rd}"
    if op3 == Op3.RDTBR:
        return f"rd %tbr, {rd}"
    if op3 == Op3.WRASR:
        dst = "%y" if inst.rd == 0 else f"%asr{inst.rd}"
        return f"wr {rs1}, {_operand2(inst)}, {dst}"
    if op3 == Op3.WRPSR:
        return f"wr {rs1}, {_operand2(inst)}, %psr"
    if op3 == Op3.WRWIM:
        return f"wr {rs1}, {_operand2(inst)}, %wim"
    if op3 == Op3.WRTBR:
        return f"wr {rs1}, {_operand2(inst)}, %tbr"
    if op3 == Op3.FLUSH:
        return f"flush {_address_from_arith(inst)}"
    if op3 == Op3.CPOP1:
        return (f"custom {inst.opf}, {rs1}, {_REG_NAMES[inst.rs2]}, {rd}")
    if op3 in (Op3.FPOP1, Op3.FPOP2, Op3.CPOP2):
        return f".word 0x{inst.word:08x}  ! {op3.name.lower()}"
    return f".word 0x{inst.word:08x}"


def _address_from_arith(inst: DecodedInstruction) -> str:
    if inst.imm:
        if inst.simm13 == 0:
            return f"[{_REG_NAMES[inst.rs1]}]"
        sign = "+" if inst.simm13 >= 0 else "-"
        return f"[{_REG_NAMES[inst.rs1]} {sign} {abs(inst.simm13)}]"
    return f"[{_REG_NAMES[inst.rs1]} + {_REG_NAMES[inst.rs2]}]"


def _disasm_mem(inst: DecodedInstruction) -> str:
    try:
        op3 = Op3Mem(inst.op3)
    except ValueError:
        return f".word 0x{inst.word:08x}"
    rd = _REG_NAMES[inst.rd]
    addr = _address(inst)
    if op3 in _LOAD_NAMES:
        name = _LOAD_NAMES[op3]
        if name.endswith("a") and op3.name.endswith("A"):
            return f"{name} {addr[:-1]}] {inst.asi}, {rd}".replace("]]", "]")
        return f"{name} {addr}, {rd}"
    if op3 in _STORE_NAMES:
        name = _STORE_NAMES[op3]
        if name.endswith("a") and op3.name.endswith("A"):
            return f"{name} {rd}, {addr} {inst.asi}"
        return f"{name} {rd}, {addr}"
    return f".word 0x{inst.word:08x}"


def disassemble_block(data: bytes, base: int = 0) -> list[str]:
    """Disassemble a block of words, one line per instruction."""
    lines = []
    for offset in range(0, len(data) - 3, 4):
        word = int.from_bytes(data[offset:offset + 4], "big")
        lines.append(f"{base + offset:08x}:  {word:08x}  "
                     f"{disassemble(word, base + offset)}")
    return lines
