"""Minimal C runtime library for Liquid programs.

The paper's LECCS toolchain shipped newlib; our mini-C programs get the
same essentials as *source* that the driver can link in: memory and
string routines, and console output through the LEON UART's memory-
mapped data register (which the model's :class:`~repro.peripherals.uart
.Uart` collects into ``transmitted()``).

Everything is plain mini-C compiled by our own compiler — there is no
host-Python fast path, so these routines exercise the same CPU, caches
and buses as user code.  Include them with::

    build_image([SourceFile(user_code), SourceFile(LIBC_SOURCE, "c")])

or, more conveniently, ``compile_c_program(user_code, with_libc=True)``.
"""

from __future__ import annotations

from repro.mem.memmap import APB_BASE, UART_OFFSET

UART_DATA_ADDRESS = APB_BASE + UART_OFFSET

#: The library source.  Functions deliberately mirror their ISO C
#: namesakes (sizes in bytes, NUL-terminated strings, memcpy returns
#: dest) so kernels can be ported in and out of the model unchanged.
LIBC_SOURCE = f"""
/* ---- Liquid runtime library (linked on request) -------------------- */

void *memcpy(void *dest, void *src, unsigned n) {{
    char *d = (char*)dest;
    char *s = (char*)src;
    /* word-at-a-time when both pointers and the length allow it */
    if ((((unsigned)d | (unsigned)s | n) & 3) == 0) {{
        unsigned *dw = (unsigned*)dest;
        unsigned *sw = (unsigned*)src;
        unsigned words = n >> 2;
        for (unsigned i = 0; i < words; i++) dw[i] = sw[i];
        return dest;
    }}
    for (unsigned i = 0; i < n; i++) d[i] = s[i];
    return dest;
}}

void *memset(void *dest, int value, unsigned n) {{
    char *d = (char*)dest;
    for (unsigned i = 0; i < n; i++) d[i] = (char)value;
    return dest;
}}

int memcmp(void *a, void *b, unsigned n) {{
    unsigned char *pa = (unsigned char*)a;
    unsigned char *pb = (unsigned char*)b;
    for (unsigned i = 0; i < n; i++) {{
        if (pa[i] != pb[i]) return pa[i] < pb[i] ? -1 : 1;
    }}
    return 0;
}}

unsigned strlen(char *s) {{
    unsigned n = 0;
    while (s[n]) n++;
    return n;
}}

int strcmp(char *a, char *b) {{
    unsigned i = 0;
    while (a[i] && a[i] == b[i]) i++;
    unsigned char ca = (unsigned char)a[i];
    unsigned char cb = (unsigned char)b[i];
    return ca == cb ? 0 : (ca < cb ? -1 : 1);
}}

char *strcpy(char *dest, char *src) {{
    unsigned i = 0;
    while ((dest[i] = src[i]) != 0) i++;
    return dest;
}}

int abs(int v) {{
    return v < 0 ? -v : v;
}}

/* ---- console: the LEON UART data register --------------------------- */

void putchar_uart(int c) {{
    volatile unsigned *uart = (unsigned*){UART_DATA_ADDRESS};
    *uart = (unsigned)c;
}}

void puts_uart(char *s) {{
    unsigned i = 0;
    while (s[i]) {{
        putchar_uart(s[i]);
        i++;
    }}
    putchar_uart('\\n');
}}

void print_unsigned(unsigned value) {{
    char digits[12];
    int n = 0;
    if (value == 0) {{
        putchar_uart('0');
        return;
    }}
    while (value) {{
        digits[n] = (char)('0' + value % 10);
        value = value / 10;
        n++;
    }}
    while (n) {{
        n--;
        putchar_uart(digits[n]);
    }}
}}

void print_hex(unsigned value) {{
    putchar_uart('0');
    putchar_uart('x');
    for (int shift = 28; shift >= 0; shift -= 4) {{
        unsigned nibble = (value >> shift) & 0xF;
        putchar_uart(nibble < 10 ? '0' + (int)nibble
                                 : 'a' + (int)nibble - 10);
    }}
}}
"""

#: Names the library defines (the driver uses this to pre-declare them
#: for user translation units, C89 style).
LIBC_DECLARATIONS = """
void *memcpy(void *dest, void *src, unsigned n);
void *memset(void *dest, int value, unsigned n);
int memcmp(void *a, void *b, unsigned n);
unsigned strlen(char *s);
int strcmp(char *a, char *b);
char *strcpy(char *dest, char *src);
int abs(int v);
void putchar_uart(int c);
void puts_uart(char *s);
void print_unsigned(unsigned value);
void print_hex(unsigned value);
"""
