"""OBJCOPY stage: linked image → flat binary / hex dump.

In the paper's flow, OBJCOPY converts the linked executable to a raw
binary and a small Forth program turns it into UDP payloads.  Here the
flat binary feeds :func:`repro.net.protocol.packetize_program` (the Forth
program's role).
"""

from __future__ import annotations

from repro.toolchain.objfile import Image


def to_binary(image: Image, fill: int = 0) -> tuple[int, bytes]:
    """Return ``(load_address, blob)`` for the whole image, gap-filled."""
    return image.flatten(fill)


def to_words(image: Image) -> dict[int, int]:
    """Return a ``{word_address: word_value}`` mapping (big-endian words)."""
    words: dict[int, int] = {}
    for base, data in image.segments.items():
        padded = data + b"\x00" * (-len(data) % 4)
        for offset in range(0, len(padded), 4):
            words[base + offset] = int.from_bytes(padded[offset:offset + 4],
                                                  "big")
    return words


def hexdump(image: Image, width: int = 16) -> str:
    """Human-readable dump, one segment per block (debugging aid)."""
    lines: list[str] = []
    for base in sorted(image.segments):
        data = image.segments[base]
        lines.append(f"segment 0x{base:08x} ({len(data)} bytes)")
        for offset in range(0, len(data), width):
            chunk = data[offset:offset + width]
            hexpart = " ".join(f"{b:02x}" for b in chunk)
            asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
            lines.append(f"  {base + offset:08x}  {hexpart:<{width * 3}} {asciipart}")
    return "\n".join(lines)
