"""Packet (Message) Generator — the modified-MP3 module of Figure 3.

"The Packet Generator is used to send IP packets in response to receiving
a subset of the command codes (e.g. Read Memory, LEON status)."  It owns
the outbound side of the wrappers and remembers where to send unsolicited
packets (program-done and error notifications go back to whoever last
commanded the device, like the hardware version replying to the control
host).
"""

from __future__ import annotations

from typing import Callable

from repro.fpx.wrappers import LayeredProtocolWrappers


class PacketGenerator:
    def __init__(self, wrappers: LayeredProtocolWrappers, src_port: int,
                 transmit: Callable[[bytes], None]):
        self.wrappers = wrappers
        self.src_port = src_port
        self.transmit = transmit
        self.last_requester: tuple[int, int] | None = None  # (ip, port)
        self.sent = 0

    def remember_requester(self, ip: int, port: int) -> None:
        self.last_requester = (ip, port)

    def send_to(self, payload: bytes, dst_ip: int, dst_port: int) -> None:
        frame = self.wrappers.wrap(payload, dst_ip, dst_port, self.src_port)
        self.sent += 1
        self.transmit(frame)

    def send_to_requester(self, payload: bytes) -> bool:
        """Send to the last commanding host; False if none is known."""
        if self.last_requester is None:
            return False
        ip, port = self.last_requester
        self.send_to(payload, ip, port)
        return True
