"""Layered Protocol Wrappers (Braun, Lockwood & Waldvogel — paper ref [7]).

On the FPX, a stack of hardware wrappers parses each arriving cell/frame
level by level — ATM/AAL5, IP, UDP — and hands application modules a
clean payload, then re-wraps outgoing payloads.  Here the same layering
is a pair of codec pipelines over the byte-exact packet classes in
:mod:`repro.net.packets`, with per-layer error counters (malformed frames
are dropped exactly like the hardware wrappers drop bad checksums).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packets import (
    IP_PROTO_UDP,
    Ipv4Packet,
    PacketError,
    UdpDatagram,
    build_udp_packet,
    parse_ip,
)


@dataclass
class WrapperStats:
    frames_in: int = 0
    frames_out: int = 0
    bad_ip: int = 0
    bad_udp: int = 0
    not_for_us: int = 0
    non_udp: int = 0


@dataclass(frozen=True)
class UnwrappedPayload:
    """What the wrappers deliver to the application module."""

    payload: bytes
    src_ip: int
    src_port: int
    dst_port: int


@dataclass
class LayeredProtocolWrappers:
    """IP + UDP wrapper pair bound to the device's address."""

    device_ip: int
    stats: WrapperStats = field(default_factory=WrapperStats)
    accept_any_ip: bool = False

    @classmethod
    def for_address(cls, ip_text: str) -> "LayeredProtocolWrappers":
        return cls(device_ip=parse_ip(ip_text))

    # -- inbound -----------------------------------------------------------

    def unwrap(self, frame: bytes) -> UnwrappedPayload | None:
        """Parse one network frame; None means dropped (with a counter)."""
        self.stats.frames_in += 1
        try:
            ip = Ipv4Packet.decode(frame)
        except PacketError:
            self.stats.bad_ip += 1
            return None
        if not self.accept_any_ip and ip.dst_ip != self.device_ip:
            self.stats.not_for_us += 1
            return None
        if ip.protocol != IP_PROTO_UDP:
            self.stats.non_udp += 1
            return None
        try:
            udp = UdpDatagram.decode(ip.payload, ip.src_ip, ip.dst_ip)
        except PacketError:
            self.stats.bad_udp += 1
            return None
        return UnwrappedPayload(
            payload=udp.payload,
            src_ip=ip.src_ip,
            src_port=udp.src_port,
            dst_port=udp.dst_port,
        )

    # -- outbound ------------------------------------------------------------

    def wrap(self, payload: bytes, dst_ip: int, dst_port: int,
             src_port: int) -> bytes:
        """Format an outgoing payload into a complete IP/UDP frame."""
        self.stats.frames_out += 1
        return build_udp_packet(self.device_ip, dst_ip, src_port, dst_port,
                                payload, identification=self.stats.frames_out)
