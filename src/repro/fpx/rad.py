"""Reconfigurable Application Device (RAD).

The RAD is the Virtex XCV2000E that hosts user modules; it is
reprogrammed through the SelectMap interface, over the network, without
disturbing the NID (paper refs [2], [6]).  In the model, "programming"
the RAD swaps in a new :class:`~repro.core.synthesis.Bitfile`'s worth of
configuration (the module object itself is built by the reconfiguration
server) and charges the SelectMap transfer time on the model clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: SelectMap bandwidth: the XCV2000E bitstream is ~1.2 MB; at 50 MHz x 8 bit
#: programming takes ~20 ms.  We charge time proportional to bitfile size.
SELECTMAP_BYTES_PER_SECOND = 50_000_000

XCV2000E_BITSTREAM_BYTES = 1_261_980


@dataclass
class ProgrammingRecord:
    name: str
    size_bytes: int
    seconds: float


class Rad:
    """Holds the currently-programmed module and its bitfile identity."""

    def __init__(self):
        self.module: Any = None
        self.bitfile_name: str | None = None
        self.history: list[ProgrammingRecord] = []
        self.total_programming_seconds = 0.0

    def program(self, module: Any, bitfile_name: str,
                bitfile_bytes: int = XCV2000E_BITSTREAM_BYTES) -> float:
        """Install *module* (full reconfiguration); returns seconds spent."""
        seconds = bitfile_bytes / SELECTMAP_BYTES_PER_SECOND
        self.module = module
        self.bitfile_name = bitfile_name
        self.history.append(ProgrammingRecord(bitfile_name, bitfile_bytes,
                                              seconds))
        self.total_programming_seconds += seconds
        return seconds

    @property
    def reprogram_count(self) -> int:
        return len(self.history)
