"""FPX platform substrate: NID, RAD, wrappers, CPP, leon_ctrl, platform."""

from repro.fpx.cpp import ControlPacketProcessor
from repro.fpx.leon_ctrl import GatedSram, LeonController
from repro.fpx.nid import FourPortSwitch, VirtualCircuit
from repro.fpx.packet_gen import PacketGenerator
from repro.fpx.platform import (
    DEFAULT_CONTROL_PORT,
    DEFAULT_DEVICE_IP,
    FPXPlatform,
    PlatformConfig,
)
from repro.fpx.rad import Rad
from repro.fpx.wrappers import LayeredProtocolWrappers, UnwrappedPayload

__all__ = [
    "ControlPacketProcessor",
    "GatedSram",
    "LeonController",
    "FourPortSwitch",
    "VirtualCircuit",
    "PacketGenerator",
    "DEFAULT_CONTROL_PORT",
    "DEFAULT_DEVICE_IP",
    "FPXPlatform",
    "PlatformConfig",
    "Rad",
    "LayeredProtocolWrappers",
    "UnwrappedPayload",
]
