"""FPXPlatform: the assembled reconfigurable node (paper Figures 2 and 3).

One object wires together everything on the board:

* the Liquid processor system on the RAD — LEON IU, I/D caches, AHB,
  APB peripherals, boot PROM, gated SRAM, SDRAM behind the §3.2 adapter;
* leon_ctrl + packet generator + control packet processor;
* the layered protocol wrappers and the NID's four-port switch.

Frames enter through :meth:`inject_frame` (as if arriving on a line
card), responses appear on :attr:`tx_frames` / ``on_transmit``.  The
processor advances only when :meth:`step`/:meth:`run_until` is called —
the platform is fully deterministic and single-threaded, so tests and
benchmarks control time explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bus.ahb import AhbBus, AhbConfig
from repro.bus.apb import ApbBridge
from repro.cache import CacheController, CacheGeometry
from repro.cpu import IntegerUnit, TimingConfig
from repro.cpu.traps import ErrorMode
from repro.fpx.cpp import ControlPacketProcessor
from repro.fpx.leon_ctrl import GatedSram, LeonController
from repro.fpx.nid import FourPortSwitch
from repro.fpx.packet_gen import PacketGenerator
from repro.fpx.rad import Rad
from repro.fpx.wrappers import LayeredProtocolWrappers
from repro.mem.adapter import AdapterConfig, AhbSdramAdapter
from repro.mem.bootrom import BootRom, build_boot_rom
from repro.mem.memmap import (
    CYCLE_COUNTER_OFFSET,
    IOPORT_OFFSET,
    IRQCTRL_OFFSET,
    TIMER_OFFSET,
    UART_OFFSET,
    MemoryMap,
)
from repro.mem.sdram import FpxSdramController, SdramTiming
from repro.mem.sram import SramBank
from repro.net import protocol
from repro.net.protocol import LeonState
from repro.peripherals import (
    Clock,
    CycleCounter,
    IrqController,
    LedPort,
    Timer,
    Uart,
)

DEFAULT_DEVICE_IP = "128.252.153.2"  # a wustl.edu address, as in the lab
DEFAULT_CONTROL_PORT = 2000


@dataclass(frozen=True)
class PlatformConfig:
    """Everything tunable about one instantiation of the Liquid system.

    The paper's evaluation (Figure 8) holds ``icache`` at 1 KB / 32 B
    lines and sweeps ``dcache.size`` from 1 KB to 16 KB.
    """

    icache: CacheGeometry = CacheGeometry(size=1024, line_size=32)
    dcache: CacheGeometry = CacheGeometry(size=4096, line_size=32)
    nwindows: int = 8
    timing: TimingConfig = field(default_factory=TimingConfig)
    adapter: AdapterConfig = field(default_factory=AdapterConfig)
    sdram_timing: SdramTiming = field(default_factory=SdramTiming)
    memmap: MemoryMap = field(default_factory=MemoryMap)
    dcache_prefetch: str = "none"
    # Background network DMA on the SDRAM's second arbiter port: one
    # 8-beat burst every N retired instructions (0 = quiet network).
    # Models "simultaneous use by both the LEON processor and the
    # network control components" (paper 2.4).
    net_dma_period: int = 0
    # Attach a trace recorder to the D-cache so the instrumented trace
    # can be streamed off the board with READ_TRACE (Figure 1).
    capture_trace: bool = False
    frequency_hz: int = 30_000_000
    device_ip: str = DEFAULT_DEVICE_IP
    control_port: int = DEFAULT_CONTROL_PORT


class FPXPlatform:
    """The reconfigurable node, ready to receive control packets."""

    def __init__(self, config: PlatformConfig | None = None):
        self.config = config or PlatformConfig()
        cfg = self.config
        memmap = cfg.memmap

        self.clock = Clock(cfg.frequency_hz)

        # ---- memory system -------------------------------------------------
        rom_info = build_boot_rom(memmap, cfg.nwindows, modified=True)
        self.rom_info = rom_info
        self.rom = BootRom(memmap.prom_base, memmap.prom_size, rom_info.image)
        self.sram = SramBank(memmap.sram_base, memmap.sram_size)
        self.gate = GatedSram(self.sram)
        self.sdram = FpxSdramController(memmap.sdram_base, memmap.sdram_size,
                                        cfg.sdram_timing)
        # FPX SDRAM arbitration supports three modules: LEON plus the
        # network components (paper §2.4).
        self.sdram_cpu_port = self.sdram.connect("leon")
        self.sdram_net_port = self.sdram.connect("network")
        self.sdram_adapter = AhbSdramAdapter(self.sdram_cpu_port,
                                             memmap.sdram_base,
                                             memmap.sdram_size, cfg.adapter)

        # ---- peripherals ---------------------------------------------------
        self.uart = Uart()
        self.timer = Timer(self.clock)
        self.irqctrl = IrqController()
        self.leds = LedPort(self.clock)
        self.cycle_counter = CycleCounter(self.clock)

        self.apb = ApbBridge(memmap.apb_base)
        self.apb.attach(self.timer, TIMER_OFFSET, 0x10, "timer")
        self.apb.attach(self.uart, UART_OFFSET, 0x10, "uart")
        self.apb.attach(self.irqctrl, IRQCTRL_OFFSET, 0x10, "irqctrl")
        self.apb.attach(self.leds, IOPORT_OFFSET, 0x10, "ioport")
        self.apb.attach(self.cycle_counter, CYCLE_COUNTER_OFFSET, 0x10,
                        "cycle_counter")

        # ---- AHB ------------------------------------------------------------
        self.ahb = AhbBus(AhbConfig())
        self.ahb.attach(self.rom, memmap.prom_base, memmap.prom_size, "prom")
        self.ahb.attach(self.gate, memmap.sram_base, memmap.sram_size, "sram")
        self.ahb.attach(self.sdram_adapter, memmap.sdram_base,
                        memmap.sdram_size, "sdram")
        self.ahb.attach(self.apb, memmap.apb_base, memmap.apb_size, "apb")

        # ---- caches + CPU -----------------------------------------------------
        self.icache = CacheController(cfg.icache, self.ahb, memmap.cacheable,
                                      name="icache")
        self.dcache = CacheController(cfg.dcache, self.ahb, memmap.cacheable,
                                      name="dcache",
                                      prefetch=cfg.dcache_prefetch)
        self.cpu = IntegerUnit(self.icache, self.dcache,
                               nwindows=cfg.nwindows, timing=cfg.timing,
                               reset_pc=memmap.prom_base)
        self.cpu.interrupt_source = self.irqctrl.pending_level

        # ---- leon_ctrl ---------------------------------------------------------
        self.leon_ctrl = LeonController(
            gate=self.gate,
            cycle_counter=self.cycle_counter,
            poll_address=rom_info.poll_address,
            error_address=rom_info.error_address,
            mailbox_address=memmap.mailbox_start,
            flush_caches=self._flush_caches,
            # Loads/reads addressed to SDRAM go through the controller's
            # host (network) port — how an OS-sized payload would arrive.
            extra_memories=[self.sdram],
        )
        self.cpu.on_fetch = self.leon_ctrl.snoop_fetch
        self.leon_ctrl.on_done = self._program_done
        self.leon_ctrl.on_error = self._program_error

        # ---- network side ---------------------------------------------------------
        self.tx_frames: list[bytes] = []
        self.on_transmit: Callable[[bytes], None] | None = None
        self.wrappers = LayeredProtocolWrappers.for_address(cfg.device_ip)
        self.packet_gen = PacketGenerator(self.wrappers, cfg.control_port,
                                          self._transmit)
        self.trace_recorder = None
        if cfg.capture_trace:
            from repro.analysis.trace import TraceRecorder

            self.trace_recorder = TraceRecorder().attach(self.dcache)
        self.cpp = ControlPacketProcessor(self.leon_ctrl, self.packet_gen,
                                          cfg.control_port,
                                          restart_handler=self.restart,
                                          trace_source=self._trace_bytes)
        self.nid = FourPortSwitch()
        self.nid.attach("rad", self._rad_frame_handler)
        self.rad = Rad()
        self.rad.program(self, bitfile_name="liquid_baseline.bit")

        self.instructions_retired = 0
        self._net_dma_countdown = cfg.net_dma_period
        self._net_dma_cursor = memmap.sdram_base

    # ------------------------------------------------------------------
    # Network path
    # ------------------------------------------------------------------

    def inject_frame(self, frame: bytes, port: str = "linecard0") -> None:
        """A frame arrives from the network (via the NID)."""
        self.nid.ingress(port, frame)

    def _rad_frame_handler(self, ingress_port: str, frame: bytes) -> None:
        unwrapped = self.wrappers.unwrap(frame)
        if unwrapped is None:
            return
        self.cpp.handle(unwrapped)

    def _transmit(self, frame: bytes) -> None:
        self.tx_frames.append(frame)
        if self.on_transmit is not None:
            self.on_transmit(frame)

    def take_tx_frames(self) -> list[bytes]:
        frames, self.tx_frames = self.tx_frames, []
        return frames

    # ------------------------------------------------------------------
    # Events from leon_ctrl
    # ------------------------------------------------------------------

    def _program_done(self, cycles: int) -> None:
        self.packet_gen.send_to_requester(
            protocol.encode_status_response(LeonState.DONE, cycles))

    def _program_error(self, code: int) -> None:
        self.packet_gen.send_to_requester(
            protocol.encode_error(code, "leon_ctrl error state"))

    def _trace_bytes(self):
        if self.trace_recorder is None:
            return None
        return self.trace_recorder.trace().to_bytes()

    def _flush_caches(self) -> None:
        self.icache.flush()
        self.dcache.flush()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def step(self, instructions: int = 1) -> int:
        """Advance the processor; returns cycles consumed.  A processor
        error (trap with ET=0) is converted into the leon_ctrl error
        state, mirroring the hardware's error-packet debug path."""
        total = 0
        for _ in range(instructions):
            if self.cpu.halted:
                break
            try:
                cycles = self.cpu.step()
            except ErrorMode as exc:
                self.leon_ctrl.state = LeonState.ERROR
                self.leon_ctrl.error_code = exc.tt
                self.cycle_counter.freeze()
                self._program_error(exc.tt)
                break
            self.clock.advance(cycles)
            total += cycles
            if self.config.net_dma_period:
                self._net_dma_countdown -= 1
                if self._net_dma_countdown <= 0:
                    self._net_dma_countdown = self.config.net_dma_period
                    self._network_dma_burst()
        self.instructions_retired = self.cpu.instret
        return total

    def _network_dma_burst(self) -> None:
        """One 8-beat SDRAM transfer on the network port.  Its own cycles
        overlap with packet processing; what LEON feels is the arbiter:
        the next CPU access pays the port-switch grant and usually a row
        miss, exactly the FPX controller's sharing cost."""
        memmap = self.config.memmap
        self.sdram_net_port.read_burst(self._net_dma_cursor, 8)
        self._net_dma_cursor += 64
        if self._net_dma_cursor >= memmap.sdram_base + (1 << 16):
            self._net_dma_cursor = memmap.sdram_base

    def run_until(self, states: set[LeonState],
                  max_instructions: int = 50_000_000) -> LeonState:
        """Step until leon_ctrl reaches one of *states*."""
        for _ in range(max_instructions):
            if self.leon_ctrl.state in states:
                return self.leon_ctrl.state
            if self.cpu.halted:
                return self.leon_ctrl.state
            self.step()
        raise TimeoutError(
            f"leon_ctrl did not reach {states} within {max_instructions} "
            f"instructions (state={self.leon_ctrl.state!r})")

    def boot(self, max_instructions: int = 100_000) -> None:
        """Run the boot ROM until the processor parks in the polling loop."""
        self.run_until({LeonState.POLLING}, max_instructions)

    def run_program(self, max_instructions: int = 50_000_000) -> LeonState:
        """After a START command, run to completion (DONE or ERROR)."""
        return self.run_until({LeonState.DONE, LeonState.ERROR},
                              max_instructions)

    def restart(self) -> None:
        """The RESTART command: full processor + controller reset."""
        self.cpu.reset()
        self.leon_ctrl.reset()
        self._flush_caches()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def statistics(self) -> dict:
        return {
            "cycles": self.clock.cycles,
            "instructions": self.cpu.instret,
            "state": self.leon_ctrl.state.name,
            "icache": self.icache.stats_dict(),
            "dcache": self.dcache.stats_dict(),
            "sdram": self.sdram.stats(),
            "adapter": self.sdram_adapter.stats(),
            "wrappers": vars(self.wrappers.stats),
            "uart_tx": self.uart.transmitted().decode(errors="replace"),
        }
