"""leon_ctrl: the control state machine and disconnect circuitry (paper
§3.1, Figures 5 and 6).

Responsibilities, exactly as the paper divides them:

* **Disconnect circuitry** (:class:`GatedSram`) — a mux between the LEON
  processor and main memory.  While disconnected, LEON's data bus is
  driven with zeros (reads return 0, writes are swallowed), so the boot
  ROM's polling loop keeps reading a zero mailbox.
* **Bus snooping** — leon_ctrl watches LEON's address bus.  Fetching the
  polling-loop head means LEON is parked (program finished or never
  started); fetching the error-state address means a trap fell through to
  the error handler, and an error packet must be emitted (§4.1).
* **Program dispatch** — after the user loads a program (written straight
  into SRAM through the host side of the mux), leon_ctrl writes the start
  address into the mailbox word, reconnects LEON, and arms the cycle
  counter.  When LEON returns to the polling loop, it disconnects again,
  freezes the counter and clears the mailbox so the program does not
  immediately re-execute.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.sram import SramBank
from repro.net.protocol import (
    LeonState,
    LoadChunk,
    ProgramAssembler,
)
from repro.peripherals.cycle_counter import CycleCounter

ERROR_TRAP_FELL_THROUGH = 0x01
ERROR_BAD_READ = 0x02
ERROR_NOT_LOADED = 0x03


class GatedSram:
    """AHB-slave wrapper implementing the Figure 6 mux.

    When ``connected`` is False, processor-side reads return zero and
    writes vanish (the circuit "always drive[s] 0s on the LEON
    processor's data bus"); host-side access through the underlying
    :class:`~repro.mem.sram.SramBank` is unaffected.
    """

    def __init__(self, sram: SramBank):
        self.sram = sram
        self.connected = True
        self.blocked_reads = 0
        self.blocked_writes = 0

    def read(self, address: int, size: int) -> tuple[int, int]:
        if not self.connected:
            self.blocked_reads += 1
            return 0, self.sram.wait_states
        return self.sram.read(address, size)

    def write(self, address: int, size: int, value: int) -> int:
        if not self.connected:
            self.blocked_writes += 1
            return self.sram.wait_states
        return self.sram.write(address, size, value)

    def read_burst(self, address: int, nwords: int) -> tuple[list[int], int]:
        if not self.connected:
            self.blocked_reads += nwords
            return [0] * nwords, self.sram.wait_states * nwords
        return self.sram.read_burst(address, nwords)


class LeonController:
    """The leon_ctrl entity: command execution + LEON supervision.

    Wire :meth:`snoop_fetch` to the integer unit's ``on_fetch`` hook.
    Event callbacks (``on_error``, ``on_done``) feed the packet generator.
    """

    def __init__(
        self,
        gate: GatedSram,
        cycle_counter: CycleCounter,
        poll_address: int,
        error_address: int,
        mailbox_address: int,
        flush_caches: Callable[[], None] | None = None,
        extra_memories: list | None = None,
    ):
        self.gate = gate
        # Host-addressable memories beyond SRAM (the FPX SDRAM, through
        # its dedicated arbiter port): lets Load Program / Read Memory
        # target SDRAM — the paper's in-development path for loading
        # larger payloads ("such as Linux") there.
        self.extra_memories = list(extra_memories or [])
        self.cycle_counter = cycle_counter
        self.poll_address = poll_address
        self.error_address = error_address
        self.mailbox_address = mailbox_address
        self.flush_caches = flush_caches
        self.assembler = ProgramAssembler()
        self.state = LeonState.RESET
        self.loaded_base: int | None = None
        self.last_entry: int | None = None
        # True once LEON has been observed fetching the dispatched
        # program's entry point.  Until then, fetches of the polling-loop
        # head just mean the processor hasn't picked up the mailbox yet —
        # not that the program finished.
        self._dispatched = False
        self.programs_run = 0
        self.error_code: int | None = None
        self.on_done: Callable[[int], None] | None = None   # cycles
        self.on_error: Callable[[int], None] | None = None  # error code

    # ------------------------------------------------------------------
    # Bus snooping (wired to IntegerUnit.on_fetch)
    # ------------------------------------------------------------------

    def snoop_fetch(self, pc: int) -> None:
        if self.state == LeonState.RUNNING and not self._dispatched:
            if pc == self.last_entry:
                self._dispatched = True
            return
        if pc == self.poll_address:
            if self.state == LeonState.RUNNING:
                # Program returned to the polling loop: it is done.
                cycles = self.cycle_counter.freeze()
                self.gate.connected = False
                self.gate.sram.host_write_word(self.mailbox_address, 0)
                self.state = LeonState.DONE
                if self.on_done is not None:
                    self.on_done(cycles)
            elif self.state == LeonState.RESET:
                # Boot completed; park disconnected until a program loads.
                self.gate.connected = False
                self.state = LeonState.POLLING
        elif pc == self.error_address and self.state != LeonState.ERROR:
            self.state = LeonState.ERROR
            self.error_code = ERROR_TRAP_FELL_THROUGH
            self.cycle_counter.freeze()
            if self.on_error is not None:
                self.on_error(self.error_code)

    # ------------------------------------------------------------------
    # Command execution (driven by the Control Packet Processor)
    # ------------------------------------------------------------------

    def _host_memory_for(self, address: int):
        """SRAM by default; an extra memory (SDRAM) when it owns *address*."""
        for memory in self.extra_memories:
            if memory.base <= address < memory.base + memory.size:
                return memory
        return self.gate.sram

    def handle_load_chunk(self, chunk: LoadChunk) -> tuple[int, int]:
        """Write one program chunk into main memory (SRAM or SDRAM);
        returns (received, total)."""
        if self.state in (LeonState.POLLING, LeonState.DONE, LeonState.ERROR):
            self.state = LeonState.LOADING
            self.assembler.reset()
        self.assembler.add(chunk)
        self._host_memory_for(chunk.address).host_write(chunk.address,
                                                        chunk.data)
        if self.assembler.complete:
            self.loaded_base = self.assembler.base_address()
        return self.assembler.received, self.assembler.total or 0

    def start(self, entry: int = 0) -> int | None:
        """Dispatch the loaded program; returns the entry address used,
        or None if nothing is loaded."""
        if self.state == LeonState.RUNNING:
            # Duplicate START (UDP may deliver a command twice, and the
            # control software retries): acknowledge without disturbing
            # the run in progress.
            return self.last_entry
        if entry == 0:
            if self.loaded_base is None:
                self.error_code = ERROR_NOT_LOADED
                return None
            entry = self.loaded_base
        # Re-running an already-loaded program is allowed ("or the user
        # sends a command to re-execute a program already loaded").
        if self.flush_caches is not None:
            self.flush_caches()
        self.gate.sram.host_write_word(self.mailbox_address, entry)
        self.gate.connected = True
        self.cycle_counter.arm()
        self._dispatched = False
        self.state = LeonState.RUNNING
        self.last_entry = entry
        self.programs_run += 1
        return entry

    def read_memory(self, address: int, length: int) -> bytes | None:
        """Host-side memory read for the Read Memory command."""
        try:
            return self._host_memory_for(address).host_read(address, length)
        except Exception:
            self.error_code = ERROR_BAD_READ
            return None

    def status(self) -> tuple[LeonState, int]:
        return self.state, self.cycle_counter.value()

    def reset(self) -> None:
        """Restart command: back to the post-power-on state.  The gate is
        reconnected so the boot code can run; it disconnects again when
        the polling loop is reached.  Loaded-program state is discarded."""
        self.state = LeonState.RESET
        self.gate.connected = True
        self._dispatched = False
        self.assembler.reset()
        self.loaded_base = None
        self.error_code = None
        self.cycle_counter.freeze()
