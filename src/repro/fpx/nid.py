"""Network Interface Device (NID): the FPX's four-port switch.

Figure 2(a): the NID connects two network line interfaces, the switch
fabric and the RAD through per-port virtual circuits, and also carries
the control cell processor that reprograms the RAD over the network.
Here it is a frame switch with a VC-style forwarding table: frames
arriving on a port are matched against the table and forwarded to the
bound handler, with flood-to-RAD as the default for unmatched traffic
(the Liquid system binds the RAD handler to the device's IP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

PORTS = ("linecard0", "linecard1", "switch", "rad")

FrameHandler = Callable[[str, bytes], None]


@dataclass(frozen=True)
class VirtualCircuit:
    """Forwarding entry: frames from *ingress* matching *match* (a
    predicate over the frame bytes) go to *egress*."""

    ingress: str
    egress: str
    match: Callable[[bytes], bool] = lambda frame: True
    name: str = ""


@dataclass
class NidStats:
    forwarded: int = 0
    dropped: int = 0
    per_port_in: dict[str, int] = field(default_factory=dict)
    per_port_out: dict[str, int] = field(default_factory=dict)


class FourPortSwitch:
    """The NID's switching core."""

    def __init__(self):
        self._handlers: dict[str, FrameHandler] = {}
        self._circuits: list[VirtualCircuit] = []
        self.default_egress: str | None = "rad"
        self.stats = NidStats()

    def attach(self, port: str, handler: FrameHandler) -> None:
        if port not in PORTS:
            raise ValueError(f"unknown NID port '{port}' (have {PORTS})")
        self._handlers[port] = handler

    def add_circuit(self, circuit: VirtualCircuit) -> None:
        for port in (circuit.ingress, circuit.egress):
            if port not in PORTS:
                raise ValueError(f"unknown NID port '{port}'")
        self._circuits.append(circuit)

    def ingress(self, port: str, frame: bytes) -> None:
        """A frame arrives on *port*; forward it per the VC table."""
        if port not in PORTS:
            raise ValueError(f"unknown NID port '{port}'")
        self.stats.per_port_in[port] = self.stats.per_port_in.get(port, 0) + 1
        egress = None
        for circuit in self._circuits:
            if circuit.ingress == port and circuit.match(frame):
                egress = circuit.egress
                break
        if egress is None:
            egress = self.default_egress
        if egress is None or egress == port:
            self.stats.dropped += 1
            return
        handler = self._handlers.get(egress)
        if handler is None:
            self.stats.dropped += 1
            return
        self.stats.forwarded += 1
        self.stats.per_port_out[egress] = \
            self.stats.per_port_out.get(egress, 0) + 1
        handler(port, frame)
