"""Control Packet Processor (CPP) — Figure 3's modified-MP3 ingress module.

"The Control Packet Processor is responsible for routing internet traffic
that contains LEON specific packets (command codes) to the LEON
controller."  The CPP sits behind the layered wrappers: payloads arriving
on the LEON control port are decoded into commands and executed against
:class:`~repro.fpx.leon_ctrl.LeonController`; responses go out through
the packet generator.  Traffic on other ports is not ours and is counted
and passed over (on the real FPX it would continue through the NID).
"""

from __future__ import annotations

from repro.fpx.leon_ctrl import LeonController
from repro.fpx.packet_gen import PacketGenerator
from repro.fpx.wrappers import UnwrappedPayload
from repro.net import protocol
from repro.net.protocol import (
    LoadChunk,
    ProtocolError,
    ReadRequest,
    RestartRequest,
    StartRequest,
    StatusRequest,
    TraceRequest,
)

ERROR_MALFORMED = 0x10
ERROR_NO_PROGRAM = 0x11
ERROR_READ_FAILED = 0x12


class ControlPacketProcessor:
    def __init__(self, leon_ctrl: LeonController, packet_gen: PacketGenerator,
                 control_port: int, restart_handler=None,
                 trace_source=None):
        self.leon_ctrl = leon_ctrl
        self.packet_gen = packet_gen
        self.control_port = control_port
        # Called on a RESTART command; the platform wires this to a full
        # processor reset (leon_ctrl.reset() alone cannot reach the IU).
        self.restart_handler = restart_handler
        # Callable returning the serialized instrumented trace (or None
        # when tracing is off) — Figure 1's trace-streaming source.
        self.trace_source = trace_source
        self.commands_handled = 0
        self.foreign_payloads = 0
        self.malformed = 0
        self._reply_tag: int | None = None

    def handle(self, unwrapped: UnwrappedPayload) -> bool:
        """Process one unwrapped payload; True if it was a LEON command."""
        if unwrapped.dst_port != self.control_port:
            self.foreign_payloads += 1
            return False
        self.packet_gen.remember_requester(unwrapped.src_ip,
                                           unwrapped.src_port)
        self._reply_tag = None
        try:
            command, self._reply_tag = protocol.decode_command_tagged(
                unwrapped.payload)
        except ProtocolError as exc:
            self.malformed += 1
            self.packet_gen.send_to_requester(
                protocol.encode_error(ERROR_MALFORMED, str(exc)))
            return True
        self.commands_handled += 1
        self._execute(command)
        return True

    def _respond(self, payload: bytes) -> None:
        """Send a response, echoing the request's tag so the client can
        match it to the exact request that solicited it (untagged seed
        requests get untagged replies)."""
        if self._reply_tag is not None:
            payload = protocol.tag_payload(payload, self._reply_tag)
        self.packet_gen.send_to_requester(payload)

    def _execute(self, command) -> None:
        leon = self.leon_ctrl
        if isinstance(command, StatusRequest):
            state, cycles = leon.status()
            self._respond(protocol.encode_status_response(state, cycles))
        elif isinstance(command, RestartRequest):
            if self.restart_handler is not None:
                self.restart_handler()
            else:
                leon.reset()
            self._respond(protocol.encode_restarted())
        elif isinstance(command, LoadChunk):
            received, total = leon.handle_load_chunk(command)
            self._respond(protocol.encode_load_ack(
                received, total, leon.assembler.missing()))
        elif isinstance(command, StartRequest):
            entry = leon.start(command.entry)
            if entry is None:
                self._respond(
                    protocol.encode_error(ERROR_NO_PROGRAM,
                                          "no complete program loaded"))
            else:
                self._respond(protocol.encode_started(entry))
        elif isinstance(command, TraceRequest):
            blob = self.trace_source() if self.trace_source else None
            if blob is None:
                self._respond(protocol.encode_error(
                    ERROR_READ_FAILED, "tracing is not enabled"))
            else:
                window = blob[command.offset:command.offset + command.length]
                self._respond(protocol.encode_trace_data(
                    len(blob), command.offset, window))
        elif isinstance(command, ReadRequest):
            data = leon.read_memory(command.address, command.length)
            if data is None:
                self._respond(
                    protocol.encode_error(ERROR_READ_FAILED,
                                          f"read 0x{command.address:08x}"))
            else:
                self._respond(
                    protocol.encode_memory_data(command.address, data))
        else:  # pragma: no cover - decode_command is exhaustive
            raise AssertionError(f"unhandled command {command!r}")
