"""APB peripherals of the Liquid processor system (Figure 3)."""

from repro.peripherals.clock import Clock
from repro.peripherals.cycle_counter import CycleCounter
from repro.peripherals.irqctrl import IrqController
from repro.peripherals.leds import LedPort
from repro.peripherals.timer import Timer
from repro.peripherals.uart import Uart

__all__ = ["Clock", "CycleCounter", "IrqController", "LedPort", "Timer",
           "Uart"]
