"""LEON2-style UART (APB).

Register map (offsets within the device window, mirroring LEON2):

* ``0x0`` data — write transmits a byte, read pops the RX FIFO;
* ``0x4`` status — bit0 data-ready (RX), bit1 TX-hold-empty (always set:
  the model transmits instantly), bit2 TX-shift-empty;
* ``0x8`` control — bit0 RX enable, bit1 TX enable;
* ``0xC`` scaler — baud-rate divisor (stored, not modelled in time).

The original (unmodified) LEON boot code blocks on status bit0 — the test
suite uses this to demonstrate why the paper had to modify the boot ROM.
"""

from __future__ import annotations

from collections import deque

STATUS_DATA_READY = 1 << 0
STATUS_TX_HOLD_EMPTY = 1 << 1
STATUS_TX_SHIFT_EMPTY = 1 << 2


class Uart:
    """Instant-transmission UART with host-visible FIFOs."""

    def __init__(self):
        self.rx_fifo: deque[int] = deque()
        self.tx_log: list[int] = []
        self.control = 0x3  # RX and TX enabled out of reset
        self.scaler = 0
        self.interrupt_pending = False

    # -- APB register interface ------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0x0:
            return self.rx_fifo.popleft() if self.rx_fifo else 0
        if offset == 0x4:
            status = STATUS_TX_HOLD_EMPTY | STATUS_TX_SHIFT_EMPTY
            if self.rx_fifo:
                status |= STATUS_DATA_READY
            return status
        if offset == 0x8:
            return self.control
        if offset == 0xC:
            return self.scaler
        return 0

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0x0:
            if self.control & 0x2:
                self.tx_log.append(value & 0xFF)
        elif offset == 0x8:
            self.control = value & 0x3
        elif offset == 0xC:
            self.scaler = value & 0xFFF

    # -- snapshot (ArchState checkpointing) --------------------------------------

    def state(self) -> dict:
        """JSON-able snapshot of everything a checkpoint must preserve."""
        return {
            "rx_fifo": list(self.rx_fifo),
            "tx_log": list(self.tx_log),
            "control": self.control,
            "scaler": self.scaler,
            "interrupt_pending": self.interrupt_pending,
        }

    def load_state(self, state: dict) -> None:
        self.rx_fifo = deque(state["rx_fifo"])
        self.tx_log = list(state["tx_log"])
        self.control = state["control"]
        self.scaler = state["scaler"]
        self.interrupt_pending = state["interrupt_pending"]

    # -- host side ---------------------------------------------------------------

    def host_send(self, data: bytes) -> None:
        """Inject bytes as if received on the serial line."""
        if self.control & 0x1:
            self.rx_fifo.extend(data)
            self.interrupt_pending = True

    def transmitted(self) -> bytes:
        """Everything the program wrote to the TX register."""
        return bytes(self.tx_log)
