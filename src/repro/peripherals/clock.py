"""Shared cycle clock.

The platform owns one :class:`Clock`; the integer unit's consumed cycles
are pushed into it after every step, and time-aware peripherals (timers,
the FPX cycle counter) read it lazily.  Keeping a single time base means
"cycles" mean the same thing everywhere — the quantity the paper's
hardware counter reports.
"""

from __future__ import annotations


class Clock:
    """Monotonic cycle counter (the 30 MHz system clock of the paper)."""

    def __init__(self, frequency_hz: int = 30_000_000):
        self.cycles = 0
        self.frequency_hz = frequency_hz

    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("time does not run backwards")
        self.cycles += cycles

    def seconds(self) -> float:
        """Wall-clock model time at the configured frequency."""
        return self.cycles / self.frequency_hz

    def reset(self) -> None:
        self.cycles = 0

    def state(self) -> dict:
        """JSON-able snapshot (ArchState checkpointing)."""
        return {"cycles": self.cycles}

    def load_state(self, state: dict) -> None:
        self.cycles = state["cycles"]
