"""The FPX cycle-counting state machine (paper §4).

    "A hardware state machine counts and returns the number of clock
    cycles to run this program."

The counter is *armed* by leon_ctrl when it releases the processor into a
user program and *frozen* when it detects the return to the polling loop,
so the count covers exactly the user program's execution.  It is also
mapped on the APB so programs can self-time sections, and its value is
returned in LEON-status response packets.
"""

from __future__ import annotations

from repro.peripherals.clock import Clock

CTRL_RUNNING = 1 << 0


class CycleCounter:
    def __init__(self, clock: Clock):
        self.clock = clock
        self.running = False
        self._armed_at = 0
        self._frozen_value = 0

    # -- leon_ctrl side -------------------------------------------------------

    def arm(self) -> None:
        """Start counting from zero (program dispatch).

        Re-arming discards any previously frozen count: a counter that
        is armed and immediately frozen must read 0, not the stale value
        of the last measured program.
        """
        self.running = True
        self._armed_at = self.clock.cycles
        self._frozen_value = 0

    def freeze(self) -> int:
        """Stop counting (program completion); returns the final count."""
        if self.running:
            elapsed = self.clock.cycles - self._armed_at
            # A clock reset while armed would make elapsed negative;
            # clamp so the register never exposes a wrapped garbage
            # count.
            self._frozen_value = elapsed if elapsed > 0 else 0
            self.running = False
        return self._frozen_value

    def value(self) -> int:
        if self.running:
            elapsed = self.clock.cycles - self._armed_at
            return elapsed if elapsed > 0 else 0
        return self._frozen_value

    # -- snapshot (ArchState checkpointing) --------------------------------

    def state(self) -> dict:
        """Explicit snapshot of the full counter state.

        The arm anchor and the frozen count were previously private
        (``_armed_at``/``_frozen_value``), so checkpointing code could
        not capture a counter mid-measurement without reaching into
        implementation details; this is the supported surface.
        """
        return {
            "running": self.running,
            "armed_at": self._armed_at,
            "frozen_value": self._frozen_value,
        }

    def load_state(self, state: dict) -> None:
        self.running = state["running"]
        self._armed_at = state["armed_at"]
        self._frozen_value = state["frozen_value"]

    # -- APB register interface --------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0x0:
            return self.value() & 0xFFFF_FFFF
        if offset == 0x4:
            return CTRL_RUNNING if self.running else 0
        return 0

    def write_register(self, offset: int, value: int) -> None:
        if offset == 0x4:
            if value & CTRL_RUNNING:
                self.arm()
            else:
                self.freeze()
