"""LEON2-style decrementing timer with prescaler (APB).

Registers: ``0x0`` counter (read current value), ``0x4`` reload,
``0x8`` control (bit0 enable, bit1 reload-on-underflow, bit2 load now).
Time comes from the shared :class:`~repro.peripherals.clock.Clock` —
the timer computes its value lazily from elapsed cycles instead of being
ticked, which keeps the simulator's inner loop free of peripheral work.
"""

from __future__ import annotations

from repro.peripherals.clock import Clock
from repro.utils import u32

CTRL_ENABLE = 1 << 0
CTRL_RELOAD = 1 << 1
CTRL_LOAD = 1 << 2


class Timer:
    def __init__(self, clock: Clock, prescaler: int = 1):
        if prescaler < 1:
            raise ValueError("prescaler must be >= 1")
        self.clock = clock
        self.prescaler = prescaler
        self.reload = 0xFFFF_FFFF
        self.control = 0
        self._start_cycle = 0
        self._start_value = 0xFFFF_FFFF
        self.underflows = 0

    def _elapsed_ticks(self) -> int:
        return (self.clock.cycles - self._start_cycle) // self.prescaler

    def value(self) -> int:
        if not self.control & CTRL_ENABLE:
            return self._start_value
        ticks = self._elapsed_ticks()
        if ticks <= self._start_value:
            return self._start_value - ticks
        # Underflowed at least once.
        if not self.control & CTRL_RELOAD:
            return 0
        period = self.reload + 1
        past = ticks - self._start_value - 1
        return self.reload - (past % period)

    def pending_underflows(self) -> int:
        """Number of underflows since the last (re)load — an interrupt
        source for the IRQ controller."""
        if not self.control & CTRL_ENABLE:
            return 0
        ticks = self._elapsed_ticks()
        if ticks <= self._start_value:
            return 0
        if not self.control & CTRL_RELOAD:
            return 1
        period = self.reload + 1
        return 1 + (ticks - self._start_value - 1) // period

    # -- snapshot (ArchState checkpointing) --------------------------------

    def state(self) -> dict:
        """Explicit snapshot of the full timer state.

        The load anchor (``_start_cycle``/``_start_value``) was
        previously private, making a running timer impossible to
        checkpoint without reaching into implementation details; this is
        the supported surface.  ``prescaler`` is included so a restore
        can reject a snapshot from a differently-configured timer.
        """
        return {
            "prescaler": self.prescaler,
            "reload": self.reload,
            "control": self.control,
            "start_cycle": self._start_cycle,
            "start_value": self._start_value,
            "underflows": self.underflows,
        }

    def load_state(self, state: dict) -> None:
        if state["prescaler"] != self.prescaler:
            raise ValueError(
                f"timer snapshot taken with prescaler {state['prescaler']}, "
                f"this timer has {self.prescaler}")
        self.reload = state["reload"]
        self.control = state["control"]
        self._start_cycle = state["start_cycle"]
        self._start_value = state["start_value"]
        self.underflows = state["underflows"]

    # -- APB register interface --------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0x0:
            return self.value()
        if offset == 0x4:
            return self.reload
        if offset == 0x8:
            return self.control
        return 0

    def write_register(self, offset: int, value: int) -> None:
        value = u32(value)
        if offset == 0x0:
            self._start_value = value
            self._start_cycle = self.clock.cycles
        elif offset == 0x4:
            self.reload = value
        elif offset == 0x8:
            was_enabled = bool(self.control & CTRL_ENABLE)
            now_enabled = bool(value & CTRL_ENABLE)
            if was_enabled and not now_enabled:
                # Latch the live value while it is still computable so a
                # later re-enable resumes from here instead of rewinding
                # to the last load anchor.
                self._start_value = self.value()
                self._start_cycle = self.clock.cycles
            self.control = value & 0x3
            if value & CTRL_LOAD:
                self._start_value = self.reload
                self._start_cycle = self.clock.cycles
            elif now_enabled and not was_enabled:
                # Re-anchor on the disabled->enabled edge: cycles that
                # elapsed while the timer was off are not ticks.
                self._start_cycle = self.clock.cycles
