"""LEON2-style interrupt controller (APB).

Fifteen interrupt lines (1..15).  Registers: ``0x0`` pending, ``0x4``
mask, ``0x8`` force (write sets pending bits), ``0xC`` clear (write
clears pending bits).  :meth:`pending_level` is wired to the integer
unit's ``interrupt_source``: it returns the highest pending unmasked
level, which the IU compares against PSR.PIL.
"""

from __future__ import annotations

from repro.utils import u32

_LINE_MASK = 0xFFFE  # lines 1..15; bit 0 is unused


class IrqController:
    def __init__(self):
        self.pending = 0
        self.mask = 0

    # -- device side -------------------------------------------------------

    def raise_irq(self, level: int) -> None:
        if not 1 <= level <= 15:
            raise ValueError("interrupt level must be 1..15")
        self.pending |= (1 << level)

    def clear_irq(self, level: int) -> None:
        self.pending &= ~(1 << level)

    def pending_level(self) -> int:
        """Highest unmasked pending level, or 0."""
        active = self.pending & self.mask & _LINE_MASK
        return active.bit_length() - 1 if active else 0

    def acknowledge(self, level: int) -> None:
        """Trap taken: hardware clears the pending bit."""
        self.clear_irq(level)

    # -- APB register interface ------------------------------------------------

    def read_register(self, offset: int) -> int:
        if offset == 0x0:
            return self.pending & _LINE_MASK
        if offset == 0x4:
            return self.mask & _LINE_MASK
        return 0

    def write_register(self, offset: int, value: int) -> None:
        value = u32(value)
        if offset == 0x4:
            self.mask = value & _LINE_MASK
        elif offset == 0x8:
            self.pending |= value & _LINE_MASK
        elif offset == 0xC:
            self.pending &= ~value
