"""Discrete output port ("LED" in the paper's Figure 3) — APB device.

One output register drives the FPX board LEDs; a change log is kept so
tests and the control console can observe blink patterns with timestamps
from the shared clock.
"""

from __future__ import annotations

from repro.peripherals.clock import Clock
from repro.utils import u32


class LedPort:
    def __init__(self, clock: Clock, width: int = 8):
        self.clock = clock
        self.width = width
        self.value = 0
        self.history: list[tuple[int, int]] = []  # (cycle, value)

    def read_register(self, offset: int) -> int:
        return self.value

    def write_register(self, offset: int, value: int) -> None:
        value = u32(value) & ((1 << self.width) - 1)
        if value != self.value:
            self.history.append((self.clock.cycles, value))
        self.value = value

    def state(self) -> dict:
        """JSON-able snapshot (ArchState checkpointing)."""
        return {"value": self.value,
                "history": [list(entry) for entry in self.history]}

    def load_state(self, state: dict) -> None:
        self.value = state["value"]
        self.history = [tuple(entry) for entry in state["history"]]

    def pattern(self) -> str:
        """Current LED state as a string of '#'/'.' (MSB first)."""
        return "".join(
            "#" if self.value & (1 << bit) else "."
            for bit in reversed(range(self.width))
        )
