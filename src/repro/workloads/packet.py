"""Packet-processing workload: IPv4 header checksum + classification.

The natural workload for the FPX — a network device: validate the ones'
complement header checksum of a batch of IPv4 headers, then classify
the valid ones by protocol and fragmentation.  Byte loads, 16-bit
shifts and unsigned compares throughout; sensitive to the data cache
(the headers stream through it).
"""

from __future__ import annotations

from repro.workloads.base import Workload, c_array, register, rng_for

_NPACKETS = 12
_HDR = 20  # bytes per IPv4 header (no options)

_TEMPLATE = """\
/* IPv4 header checksum + classification over {npackets} headers. */
{pkt_init}

int main(void) {{
    unsigned n;
    unsigned w;
    unsigned valid = 0;
    unsigned bad = 0;
    unsigned tcp = 0;
    unsigned udp = 0;
    unsigned other = 0;
    unsigned frag = 0;
    for (n = 0; n < {npackets}; n++) {{
        unsigned base = n * {hdr};
        unsigned sum = 0;
        for (w = 0; w < {hdr}; w += 2) {{
            sum += ((unsigned)pkt[base + w] << 8) | pkt[base + w + 1];
        }}
        sum = (sum & 0xFFFF) + (sum >> 16);
        sum = (sum & 0xFFFF) + (sum >> 16);
        if (sum == 0xFFFF) {{
            unsigned proto = pkt[base + 9];
            unsigned fragoff = (((unsigned)pkt[base + 6] & 0x1F) << 8)
                | pkt[base + 7];
            valid++;
            if (proto == 6) {{
                tcp++;
            }} else if (proto == 17) {{
                udp++;
            }} else {{
                other++;
            }}
            if (fragoff) {{
                frag++;
            }}
        }} else {{
            bad++;
        }}
    }}
    return (int)((valid << 24) | (bad << 20) | (frag << 16)
                 | (tcp << 8) | (udp << 4) | other);
}}
"""


def _checksum(header: list[int]) -> int:
    total = 0
    for w in range(0, _HDR, 2):
        total += (header[w] << 8) | header[w + 1]
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return total


def _generate(seed: int) -> dict:
    rng = rng_for("ipcheck", seed)
    packets: list[int] = []
    for _ in range(_NPACKETS):
        header = [0] * _HDR
        header[0] = 0x45                       # version 4, IHL 5
        header[1] = rng.getrandbits(8)         # DSCP/ECN
        length = rng.randint(_HDR, 1500)
        header[2], header[3] = length >> 8, length & 0xFF
        ident = rng.getrandbits(16)
        header[4], header[5] = ident >> 8, ident & 0xFF
        fragoff = rng.choice([0, 0, 0, rng.getrandbits(13)])
        header[6] = (fragoff >> 8) & 0x1F
        header[7] = fragoff & 0xFF
        header[8] = rng.randint(1, 64)         # TTL
        header[9] = rng.choice([6, 6, 17, 17, 1, 47, 89])
        for i in range(12, 20):                # src/dst addresses
            header[i] = rng.getrandbits(8)
        # Correct checksum, then corrupt ~1 in 4 headers.
        checksum = 0xFFFF ^ _checksum(header)
        header[10], header[11] = checksum >> 8, checksum & 0xFF
        if rng.random() < 0.25:
            corrupt = rng.randrange(_HDR)
            header[corrupt] ^= 1 << rng.randrange(8)
        packets.extend(header)
    return {"pkt": packets}


def _render(data: dict) -> str:
    return _TEMPLATE.format(
        npackets=len(data["pkt"]) // _HDR, hdr=_HDR,
        pkt_init=c_array("unsigned char", "pkt", data["pkt"], per_line=10),
    )


def _reference(data: dict) -> int:
    pkt = data["pkt"]
    valid = bad = tcp = udp = other = frag = 0
    for n in range(len(pkt) // _HDR):
        header = pkt[n * _HDR:(n + 1) * _HDR]
        if _checksum(header) == 0xFFFF:
            valid += 1
            proto = header[9]
            fragoff = ((header[6] & 0x1F) << 8) | header[7]
            if proto == 6:
                tcp += 1
            elif proto == 17:
                udp += 1
            else:
                other += 1
            if fragoff:
                frag += 1
        else:
            bad += 1
    return ((valid << 24) | (bad << 20) | (frag << 16)
            | (tcp << 8) | (udp << 4) | other)


register(Workload(
    name="ipcheck",
    wclass="packet",
    description=f"IPv4 header checksum + protocol/fragment classification "
                f"over {_NPACKETS} headers",
    sweep_axis="dcache_size",
    generate=_generate,
    render=_render,
    reference=_reference,
    footprint=lambda data: len(data["pkt"]),
))
