"""Workload registry: self-checking kernels for the measurement loop.

The paper's claim is that reconfiguring the architecture *per
application* pays off — which is only measurable with more than one
application.  A :class:`Workload` packages one kernel written in the
in-repo C dialect together with everything a harness needs to use it
unattended:

* a seeded **input generator** (deterministic, embedded into the C
  source as initialized globals — no runtime input loading),
* a pure-Python **reference model** computing the expected RESULT word,
* a **self-check predicate** over the RESULT word, so any consumer
  (difftest, sweeps, CI) can verify a run without golden files,
* declared metadata: workload class, memory footprint, and the
  configuration axis the kernel is expected to be sensitive to.

Workloads register themselves into :data:`REGISTRY` at import time (the
kernel modules are imported by ``repro.workloads.__init__``).  Every
registry program doubles as a correctness oracle for both execution
engines: ``tests/difftest`` adopts them as real-program seeds, and
:meth:`~repro.core.sweep.SweepRunner.sweep_matrix` self-checks every
sweep point against the predicate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from repro.utils import u32

#: The workload classes the registry spans (the paper's "diverse
#: application classes"); registration validates against this set.
CLASSES = ("crypto", "dsp", "packet", "sort", "search")

#: Default seed used wherever one workload instantiation stands for the
#: kernel (difftest seeds, matrix sweeps, examples).
DEFAULT_SEED = 0


@dataclass(frozen=True)
class Workload:
    """One self-checking kernel in the registry."""

    name: str
    wclass: str
    description: str
    #: ConfigurationSpace dimension this kernel is expected to be most
    #: sensitive to — the declared hypothesis a matrix sweep tests.
    sweep_axis: str
    #: seed -> named input values (plain ints/lists, JSON-able).
    generate: Callable[[int], dict]
    #: input -> mini-C translation unit with the input data embedded.
    render: Callable[[dict], str]
    #: input -> expected RESULT word as an unsigned 32-bit value.
    reference: Callable[[dict], int]
    #: Static data the kernel touches (bytes), for footprint metadata.
    footprint: Callable[[dict], int]
    #: Whether the kernel recurses deep enough to take register-window
    #: overflow/underflow traps (difftest's trap-parity spot check).
    takes_window_traps: bool = False
    #: Instruction budget that comfortably covers one run.
    max_instructions: int = 2_000_000
    #: Long-running variant (~1M+ steps) meant for sampled simulation
    #: and throughput benchmarks.  Excluded from :func:`all_workloads`
    #: by default so difftest/matrix consumers keep their fast set.
    long_running: bool = False

    # ------------------------------------------------------------------

    def input_for(self, seed: int = DEFAULT_SEED) -> dict:
        return self.generate(seed)

    def c_source(self, seed: int = DEFAULT_SEED) -> str:
        return self.render(self.input_for(seed))

    def image(self, seed: int = DEFAULT_SEED):
        """Compile to a loadable image (memoised per (name, seed))."""
        return _compile_cached(self.name, seed)

    def expected(self, seed: int = DEFAULT_SEED) -> int:
        """The RESULT word the kernel must produce, as u32."""
        return u32(self.reference(self.input_for(seed)))

    def check(self, result_word: int | None,
              seed: int = DEFAULT_SEED) -> bool:
        """The self-check predicate: does a run's RESULT word match the
        reference model?"""
        if result_word is None:
            return False
        return u32(result_word) == self.expected(seed)

    def footprint_bytes(self, seed: int = DEFAULT_SEED) -> int:
        return self.footprint(self.input_for(seed))

    def analyze(self, seed: int = DEFAULT_SEED):
        """Run the machine-code verifier over the compiled image.

        Returns the :class:`~repro.analysis.diagnostics.DiagnosticReport`
        with the workload's name as its subject.  Registry kernels are
        expected to analyze error-free — CI's lint job enforces it.
        """
        from repro.analysis.verify import analyze_image

        return analyze_image(self.image(seed), subject=self.name).report

    def self_check(self, engine: str = "accurate",
                   seed: int = DEFAULT_SEED) -> "SelfCheckResult":
        """Compile, run on one engine, verify the RESULT word.

        ``engine`` is ``'accurate'`` (cycle-accurate IntegerUnit),
        ``'functional'`` (FunctionalUnit fast path) or ``'translated'``
        (block-translating fast path).
        """
        from repro.core.sim import Simulator

        if engine not in ("accurate", "functional", "translated"):
            raise ValueError(f"unknown engine '{engine}'")
        sim = Simulator(capture_memory_trace=False, obs=False)
        runner = {"accurate": sim.run, "functional": sim.run_functional,
                  "translated": sim.run_translated}[engine]
        report = runner(self.image(seed),
                        max_instructions=self.max_instructions)
        return SelfCheckResult(
            workload=self.name, engine=engine, seed=seed,
            ok=self.check(report.result_word, seed),
            result_word=(None if report.result_word is None
                         else u32(report.result_word)),
            expected=self.expected(seed),
            instructions=report.instructions, cycles=report.cycles)


@dataclass(frozen=True)
class SelfCheckResult:
    """Outcome of one self-checked run."""

    workload: str
    engine: str
    seed: int
    ok: bool
    result_word: int | None
    expected: int
    instructions: int
    cycles: int

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        got = ("none" if self.result_word is None
               else f"{self.result_word:#010x}")
        return (f"{self.workload:<12} [{self.engine}] seed={self.seed} "
                f"{status}: result={got} expected={self.expected:#010x} "
                f"({self.instructions} instructions)")


@lru_cache(maxsize=128)
def _compile_cached(name: str, seed: int):
    from repro.toolchain.driver import compile_c_program

    workload = REGISTRY[name]
    return compile_c_program(workload.c_source(seed))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add *workload* to the registry (kernel modules call this at
    import time).  Validates the declared class and sweep axis."""
    from repro.core.space import DIMENSION_SETTERS

    if workload.wclass not in CLASSES:
        raise ValueError(f"unknown workload class '{workload.wclass}' "
                         f"(have {CLASSES})")
    if workload.sweep_axis not in DIMENSION_SETTERS:
        raise ValueError(f"unknown sweep axis '{workload.sweep_axis}' "
                         f"(have {sorted(DIMENSION_SETTERS)})")
    if workload.name in REGISTRY:
        raise ValueError(f"duplicate workload '{workload.name}'")
    REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload '{name}' "
                       f"(have {sorted(REGISTRY)})") from None


def all_workloads(include_long: bool = False) -> list[Workload]:
    """Every registered workload, in registration order.

    Long-running kernels (``long_running=True``) are excluded unless
    *include_long* is set — they exist for sampled simulation and
    benchmarks, not for the fast difftest/matrix set.
    """
    return [w for w in REGISTRY.values()
            if include_long or not w.long_running]


def by_class(include_long: bool = False) -> dict[str, list[Workload]]:
    """Registered workloads grouped by class, registration order kept."""
    grouped: dict[str, list[Workload]] = {}
    for workload in all_workloads(include_long=include_long):
        grouped.setdefault(workload.wclass, []).append(workload)
    return grouped


# ---------------------------------------------------------------------------
# Shared generator / rendering helpers for the kernel modules
# ---------------------------------------------------------------------------


def rng_for(name: str, seed: int) -> random.Random:
    """A deterministic RNG stream, independent per (workload, seed)."""
    return random.Random(f"{name}:{seed}")


def c_array(ctype: str, name: str, values: list[int],
            per_line: int = 10) -> str:
    """Render ``ctype name[N] = {...};`` with sane line lengths."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        lines.append("    " + ", ".join(str(v) for v in chunk))
    body = ",\n".join(lines)
    return f"{ctype} {name}[{len(values)}] = {{\n{body}\n}};"


def rol32(value: int, amount: int) -> int:
    value = u32(value)
    amount &= 31
    return u32((value << amount) | (value >> (32 - amount)))


def mix_digest(digest: int, word: int) -> int:
    """The digest step the kernels share: rotate-xor-add, in u32."""
    digest = rol32(digest, 5)
    return u32(digest ^ u32(word))
