"""DSP workloads: FIR filtering and bitwise CRC32.

FIR is the multiply-accumulate archetype — its cycle count moves with
the multiplier implementation (the paper's §1 "specialized hardware to
accelerate frequently used instructions").  CRC32 is the opposite:
pure shift/xor/branch, sensitive to pipeline depth, with no multiplies
at all.
"""

from __future__ import annotations

from repro.utils import u32
from repro.workloads.base import (
    Workload,
    c_array,
    mix_digest,
    register,
    rng_for,
)

_FIR_SAMPLES = 64
_FIR_TAPS = 8

_FIR_TEMPLATE = """\
/* FIR filter: {taps}-tap convolution over {samples} samples. */
{x_init}

{h_init}

int main(void) {{
    int n;
    int k;
    unsigned acc = 0;
    for (n = 0; n < {samples}; n++) {{
        int s = 0;
        for (k = 0; k < {taps}; k++) {{
            if (n - k >= 0) {{
                s += h[k] * x[n - k];
            }}
        }}
        acc = ((acc << 5) | (acc >> 27)) ^ (unsigned)s;
    }}
    return (int)acc;
}}
"""


def _fir_generate(seed: int) -> dict:
    rng = rng_for("fir", seed)
    return {
        "x": [rng.randint(-4096, 4096) for _ in range(_FIR_SAMPLES)],
        "h": [rng.randint(-64, 64) for _ in range(_FIR_TAPS)],
    }


def _fir_render(data: dict) -> str:
    return _FIR_TEMPLATE.format(
        samples=len(data["x"]), taps=len(data["h"]),
        x_init=c_array("int", "x", data["x"]),
        h_init=c_array("int", "h", data["h"]),
    )


def _fir_reference(data: dict) -> int:
    x, h = data["x"], data["h"]
    digest = 0
    for n in range(len(x)):
        s = 0
        for k in range(len(h)):
            if n - k >= 0:
                s = u32(s + h[k] * x[n - k])
        digest = mix_digest(digest, s)
    return digest


register(Workload(
    name="fir",
    wclass="dsp",
    description=f"{_FIR_TAPS}-tap FIR filter over {_FIR_SAMPLES} samples "
                "(multiply-accumulate)",
    sweep_axis="multiplier",
    generate=_fir_generate,
    render=_fir_render,
    reference=_fir_reference,
    footprint=lambda data: 4 * (len(data["x"]) + len(data["h"])),
))


# ---------------------------------------------------------------------------
# CRC32
# ---------------------------------------------------------------------------

_CRC_BYTES = 48
_CRC_POLY = 0xEDB88320

_CRC_TEMPLATE = """\
/* CRC32 (IEEE 802.3 polynomial), bit at a time. */
{data_init}

int main(void) {{
    unsigned crc = 0xFFFFFFFF;
    unsigned i;
    unsigned b;
    for (i = 0; i < {length}; i++) {{
        crc ^= data[i];
        for (b = 0; b < 8; b++) {{
            if (crc & 1) {{
                crc = (crc >> 1) ^ {poly}u;
            }} else {{
                crc >>= 1;
            }}
        }}
    }}
    return (int)(crc ^ 0xFFFFFFFF);
}}
"""


def _crc_generate(seed: int) -> dict:
    rng = rng_for("crc32", seed)
    return {"data": [rng.getrandbits(8) for _ in range(_CRC_BYTES)]}


def _crc_render(data: dict) -> str:
    return _CRC_TEMPLATE.format(
        length=len(data["data"]), poly=_CRC_POLY,
        data_init=c_array("unsigned char", "data", data["data"],
                          per_line=12),
    )


def _crc_reference(data: dict) -> int:
    crc = 0xFFFFFFFF
    for byte in data["data"]:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC_POLY
            else:
                crc >>= 1
    return u32(crc ^ 0xFFFFFFFF)


register(Workload(
    name="crc32",
    wclass="dsp",
    description=f"bitwise CRC32 over {_CRC_BYTES} bytes "
                "(shift/xor/branch loop)",
    sweep_axis="pipeline_depth",
    generate=_crc_generate,
    render=_crc_render,
    reference=_crc_reference,
    footprint=lambda data: len(data["data"]),
))
