"""repro.workloads — the self-checking workload registry.

Importing this package populates the registry with every kernel module;
consumers reach the registry through :func:`all_workloads`, :func:`get`
and :func:`by_class`.
"""

from repro.workloads.base import (
    CLASSES,
    DEFAULT_SEED,
    REGISTRY,
    SelfCheckResult,
    Workload,
    all_workloads,
    by_class,
    get,
    register,
)

# Kernel modules register themselves at import time; registration order
# here is the registry's canonical order.
from repro.workloads import crypto as _crypto          # noqa: E402,F401
from repro.workloads import dsp as _dsp                # noqa: E402,F401
from repro.workloads import packet as _packet          # noqa: E402,F401
from repro.workloads import sortsearch as _sortsearch  # noqa: E402,F401
from repro.workloads import longrun as _longrun        # noqa: E402,F401

__all__ = [
    "CLASSES",
    "DEFAULT_SEED",
    "REGISTRY",
    "SelfCheckResult",
    "Workload",
    "all_workloads",
    "by_class",
    "get",
    "register",
]
