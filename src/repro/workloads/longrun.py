"""Long-running workloads for sampled simulation.

The registry kernels finish in 5k–60k steps — small enough that full
cycle-accurate simulation is instant, which leaves nothing for sampled
simulation to accelerate.  These kernels stream the same inner loops as
their short siblings over many passes (~1M+ steps each), giving the
:class:`~repro.core.sampling.SampledRunner` a realistic target: long
steady-state regions where translated fast-forward dominates and a few
cycle-accurate windows suffice.

All three carry ``long_running=True`` and are therefore excluded from
:func:`~repro.workloads.base.all_workloads` by default — difftest and
the matrix sweeps keep their fast set, while ``bench_sampling`` and the
sampling tests opt in via ``include_long=True`` / :func:`get`.

Each pass feeds back into the input data (re-encrypt in place, write
filtered samples back, mutate TTLs and re-checksum), so no pass is a
repeat of the previous one and the digest depends on every pass.
"""

from __future__ import annotations

from repro.utils import u32
from repro.workloads.base import (
    Workload,
    c_array,
    mix_digest,
    register,
    rng_for,
)

# ---------------------------------------------------------------------------
# xtea_stream: XTEA re-encrypting a buffer over many passes
# ---------------------------------------------------------------------------

_DELTA = 0x9E3779B9
_XS_BLOCKS = 8            # pairs of 32-bit words
_XS_PASSES = 64
_XS_ROUNDS = 32
_XS_DIGEST_REPS = 9       # sized so odd passes roughly match even ones

_XS_TEMPLATE = """\
/* XTEA stream: re-encrypt {blocks} blocks in place for {passes} passes.
   Odd passes run a byte-wise serialization digest instead of the
   cipher: the two pass types have different instruction mixes, so a
   sampled window's CPI depends on where it lands — the program-level
   phase behaviour sampled simulation exists to measure. */
{v_init}

{key_init}

int main(void) {{
    unsigned p;
    unsigned b;
    unsigned i;
    unsigned h = 0;
    for (p = 0; p < {passes}; p++) {{
        if (p & 1) {{
            for (i = 0; i < {digest_reps}; i++) {{
                for (b = 0; b < {words}; b++) {{
                    unsigned word = v[b];
                    unsigned j;
                    for (j = 0; j < 4; j++) {{
                        h = ((h << 5) | (h >> 27))
                            ^ ((word >> (j * 8)) & 0xFF);
                    }}
                }}
            }}
        }} else {{
            for (b = 0; b < {words}; b += 2) {{
                unsigned v0 = v[b];
                unsigned v1 = v[b + 1];
                unsigned sum = 0;
                for (i = 0; i < {rounds}; i++) {{
                    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1)
                        ^ (sum + key[sum & 3]);
                    sum += {delta}u;
                    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0)
                        ^ (sum + key[(sum >> 11) & 3]);
                }}
                v[b] = v0;
                v[b + 1] = v1;
            }}
            h = ((h << 5) | (h >> 27)) ^ v[p & {wmask}];
        }}
    }}
    for (i = 0; i < {words}; i++) {{
        h = ((h << 5) | (h >> 27)) ^ v[i];
    }}
    return (int)h;
}}
"""


def _xs_generate(seed: int) -> dict:
    rng = rng_for("xtea_stream", seed)
    return {
        "v": [rng.getrandbits(32) for _ in range(2 * _XS_BLOCKS)],
        "key": [rng.getrandbits(32) for _ in range(4)],
    }


def _xs_render(data: dict) -> str:
    return _XS_TEMPLATE.format(
        blocks=_XS_BLOCKS,
        words=len(data["v"]),
        wmask=len(data["v"]) - 1,
        passes=_XS_PASSES,
        rounds=_XS_ROUNDS,
        digest_reps=_XS_DIGEST_REPS,
        delta=_DELTA,
        v_init=c_array("unsigned", "v", data["v"], per_line=4),
        key_init=c_array("unsigned", "key", data["key"], per_line=4),
    )


def _xs_reference(data: dict) -> int:
    v = list(data["v"])
    key = data["key"]
    digest = 0
    for p in range(_XS_PASSES):
        if p & 1:
            for _ in range(_XS_DIGEST_REPS):
                for word in v:
                    for j in range(4):
                        digest = mix_digest(digest, (word >> (j * 8)) & 0xFF)
        else:
            for b in range(0, len(v), 2):
                v0, v1 = v[b], v[b + 1]
                total = 0
                for _ in range(_XS_ROUNDS):
                    v0 = u32(v0 + ((u32(v1 << 4) ^ (v1 >> 5)) + v1
                                   ^ u32(total + key[total & 3])))
                    total = u32(total + _DELTA)
                    v1 = u32(v1 + ((u32(v0 << 4) ^ (v0 >> 5)) + v0
                                   ^ u32(total + key[(total >> 11) & 3])))
                v[b], v[b + 1] = v0, v1
            digest = mix_digest(digest, v[p & (len(v) - 1)])
    for word in v:
        digest = mix_digest(digest, word)
    return digest


register(Workload(
    name="xtea_stream",
    wclass="crypto",
    description=f"XTEA encrypt / byte-digest alternating passes over "
                f"{_XS_BLOCKS} blocks, {_XS_PASSES} passes (~1M steps)",
    sweep_axis="pipeline_depth",
    generate=_xs_generate,
    render=_xs_render,
    reference=_xs_reference,
    footprint=lambda data: 4 * (len(data["v"]) + len(data["key"])),
    max_instructions=4_000_000,
    long_running=True,
))


# ---------------------------------------------------------------------------
# fir_stream: circular FIR with filtered samples fed back into the signal
# ---------------------------------------------------------------------------

_FS_SAMPLES = 96
_FS_TAPS = 12
_FS_PASSES = 26

_FS_TEMPLATE = """\
/* FIR stream: {taps}-tap circular convolution, {passes} passes with
   filtered-sample feedback. */
{x_init}

{h_init}

int main(void) {{
    int p;
    int n;
    int k;
    int wi = 0;
    unsigned acc = 0;
    for (p = 0; p < {passes}; p++) {{
        for (n = 0; n < {samples}; n++) {{
            int s = 0;
            for (k = 0; k < {taps}; k++) {{
                int idx = n - k;
                if (idx < 0) {{
                    idx += {samples};
                }}
                s += h[k] * x[idx];
            }}
            acc = ((acc << 5) | (acc >> 27)) ^ (unsigned)s;
        }}
        x[wi] = (int)(acc & 0x7FF) - 1024;
        wi++;
        if (wi >= {samples}) {{
            wi = 0;
        }}
    }}
    return (int)acc;
}}
"""


def _fs_generate(seed: int) -> dict:
    rng = rng_for("fir_stream", seed)
    return {
        "x": [rng.randint(-4096, 4096) for _ in range(_FS_SAMPLES)],
        "h": [rng.randint(-64, 64) for _ in range(_FS_TAPS)],
    }


def _fs_render(data: dict) -> str:
    return _FS_TEMPLATE.format(
        samples=len(data["x"]), taps=len(data["h"]), passes=_FS_PASSES,
        x_init=c_array("int", "x", data["x"]),
        h_init=c_array("int", "h", data["h"]),
    )


def _fs_reference(data: dict) -> int:
    x, h = list(data["x"]), data["h"]
    samples = len(x)
    digest = 0
    wi = 0
    for _ in range(_FS_PASSES):
        for n in range(samples):
            s = 0
            for k in range(len(h)):
                idx = n - k
                if idx < 0:
                    idx += samples
                s += h[k] * x[idx]
            digest = mix_digest(digest, s)
        x[wi] = (digest & 0x7FF) - 1024
        wi = (wi + 1) % samples
    return digest


register(Workload(
    name="fir_stream",
    wclass="dsp",
    description=f"{_FS_TAPS}-tap circular FIR over {_FS_SAMPLES} samples, "
                f"{_FS_PASSES} feedback passes (~1M steps)",
    sweep_axis="multiplier",
    generate=_fs_generate,
    render=_fs_render,
    reference=_fs_reference,
    footprint=lambda data: 4 * (len(data["x"]) + len(data["h"])),
    max_instructions=4_000_000,
    long_running=True,
))


# ---------------------------------------------------------------------------
# ipsum_stream: TTL decrement + checksum rewrite over a header batch
# ---------------------------------------------------------------------------

_IS_NPACKETS = 32
_IS_PASSES = 64
_IS_HDR = 20
_IS_CLASSIFY_REPS = 4     # sized so odd passes roughly match even ones


def _is_checksum(header: list[int]) -> int:
    total = 0
    for w in range(0, _IS_HDR, 2):
        total += (header[w] << 8) | header[w + 1]
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return total


_IS_TEMPLATE = """\
/* IP forwarding stream over {npackets} headers, {passes} passes.
   Even passes forward: verify checksum, decrement TTL, re-checksum
   (load/store heavy).  Odd passes classify: protocol/fragment
   counting with a shift-mix digest (branchy, few stores).  The two
   phases give sampled windows honest CPI variance.  Checksums are
   inlined: call/ret pairs force the block translator into interpreted
   fallback steps, and this kernel exists to exercise the fast path. */
{pkt_init}

int main(void) {{
    unsigned p;
    unsigned n;
    unsigned w;
    unsigned r;
    unsigned h = 0;
    for (p = 0; p < {passes}; p++) {{
        if (p & 1) {{
            for (r = 0; r < {classify_reps}; r++) {{
                for (n = 0; n < {npackets}; n++) {{
                    unsigned base = n * {hdr};
                    unsigned proto = pkt[base + 9];
                    unsigned ttl = pkt[base + 8];
                    unsigned mixed = (proto << 8) | ttl;
                    if (proto == 6) {{
                        mixed ^= 0x5A5A;
                    }} else if (proto == 17) {{
                        mixed ^= 0xA5A5;
                    }} else {{
                        mixed ^= 0x0F0F;
                    }}
                    for (w = 0; w < 8; w++) {{
                        mixed = (mixed << 1) ^ ((mixed >> 15) & 1);
                    }}
                    h = ((h << 5) | (h >> 27)) ^ (mixed + n);
                }}
            }}
        }} else {{
            for (n = 0; n < {npackets}; n++) {{
                unsigned base = n * {hdr};
                unsigned sum = 0;
                unsigned ttl;
                for (w = 0; w < {hdr}; w += 2) {{
                    sum += ((unsigned)pkt[base + w] << 8)
                        | pkt[base + w + 1];
                }}
                sum = (sum & 0xFFFF) + (sum >> 16);
                sum = (sum & 0xFFFF) + (sum >> 16);
                h = ((h << 5) | (h >> 27)) ^ (sum + (p << 16) + n);
                ttl = pkt[base + 8];
                if (ttl == 0) {{
                    ttl = 64;
                }} else {{
                    ttl = ttl - 1;
                }}
                pkt[base + 8] = ttl;
                pkt[base + 10] = 0;
                pkt[base + 11] = 0;
                sum = 0;
                for (w = 0; w < {hdr}; w += 2) {{
                    sum += ((unsigned)pkt[base + w] << 8)
                        | pkt[base + w + 1];
                }}
                sum = (sum & 0xFFFF) + (sum >> 16);
                sum = (sum & 0xFFFF) + (sum >> 16);
                sum = 0xFFFF ^ sum;
                pkt[base + 10] = sum >> 8;
                pkt[base + 11] = sum & 0xFF;
            }}
        }}
    }}
    return (int)h;
}}
"""


def _is_generate(seed: int) -> dict:
    rng = rng_for("ipsum_stream", seed)
    packets: list[int] = []
    for _ in range(_IS_NPACKETS):
        header = [0] * _IS_HDR
        header[0] = 0x45
        header[1] = rng.getrandbits(8)
        length = rng.randint(_IS_HDR, 1500)
        header[2], header[3] = length >> 8, length & 0xFF
        ident = rng.getrandbits(16)
        header[4], header[5] = ident >> 8, ident & 0xFF
        header[8] = rng.randint(0, 64)
        header[9] = rng.choice([6, 6, 17, 17, 1, 47, 89])
        for i in range(12, 20):
            header[i] = rng.getrandbits(8)
        checksum = 0xFFFF ^ _is_checksum(header)
        header[10], header[11] = checksum >> 8, checksum & 0xFF
        packets.extend(header)
    return {"pkt": packets}


def _is_render(data: dict) -> str:
    return _IS_TEMPLATE.format(
        npackets=len(data["pkt"]) // _IS_HDR, hdr=_IS_HDR,
        passes=_IS_PASSES, classify_reps=_IS_CLASSIFY_REPS,
        pkt_init=c_array("unsigned char", "pkt", data["pkt"], per_line=10),
    )


def _is_reference(data: dict) -> int:
    pkt = list(data["pkt"])
    digest = 0
    for p in range(_IS_PASSES):
        if p & 1:
            for _ in range(_IS_CLASSIFY_REPS):
                for n in range(len(pkt) // _IS_HDR):
                    base = n * _IS_HDR
                    proto = pkt[base + 9]
                    ttl = pkt[base + 8]
                    mixed = (proto << 8) | ttl
                    if proto == 6:
                        mixed ^= 0x5A5A
                    elif proto == 17:
                        mixed ^= 0xA5A5
                    else:
                        mixed ^= 0x0F0F
                    for _ in range(8):
                        mixed = u32(mixed << 1) ^ ((mixed >> 15) & 1)
                    digest = mix_digest(digest, mixed + n)
        else:
            for n in range(len(pkt) // _IS_HDR):
                base = n * _IS_HDR
                header = pkt[base:base + _IS_HDR]
                total = _is_checksum(header)
                digest = mix_digest(digest, total + (p << 16) + n)
                ttl = header[8]
                ttl = 64 if ttl == 0 else ttl - 1
                pkt[base + 8] = ttl
                pkt[base + 10] = 0
                pkt[base + 11] = 0
                header = pkt[base:base + _IS_HDR]
                checksum = 0xFFFF ^ _is_checksum(header)
                pkt[base + 10] = checksum >> 8
                pkt[base + 11] = checksum & 0xFF
    return digest


register(Workload(
    name="ipsum_stream",
    wclass="packet",
    description=f"IP forward / classify alternating passes over "
                f"{_IS_NPACKETS} headers, {_IS_PASSES} passes (~1M steps)",
    sweep_axis="dcache_size",
    generate=_is_generate,
    render=_is_render,
    reference=_is_reference,
    footprint=lambda data: len(data["pkt"]),
    max_instructions=4_000_000,
    long_running=True,
))
