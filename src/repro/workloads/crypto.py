"""Crypto workloads: XTEA block encryption and a DES-style Feistel
round function with S-box table lookups.

The Agile Algorithm-On-Demand Co-Processor (PAPERS.md) motivates block
ciphers as the canonical reconfigurable workload class: tight ALU loops
of adds/xors/shifts (XTEA) and table-driven substitution rounds (DES),
both sensitive to the core's datapath configuration rather than the
memory system.
"""

from __future__ import annotations

from repro.utils import u32
from repro.workloads.base import (
    Workload,
    c_array,
    mix_digest,
    register,
    rng_for,
    rol32,
)

_DELTA = 0x9E3779B9
_XTEA_BLOCKS = 4          # pairs of 32-bit words
_XTEA_ROUNDS = 32

_XTEA_TEMPLATE = """\
/* XTEA: encrypt {blocks} 64-bit blocks in place, digest the ciphertext. */
{v_init}

{key_init}

int main(void) {{
    unsigned b;
    unsigned i;
    unsigned h = 0;
    for (b = 0; b < {words}; b += 2) {{
        unsigned v0 = v[b];
        unsigned v1 = v[b + 1];
        unsigned sum = 0;
        for (i = 0; i < {rounds}; i++) {{
            v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
            sum += {delta}u;
            v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
        }}
        v[b] = v0;
        v[b + 1] = v1;
    }}
    for (i = 0; i < {words}; i++) {{
        h = ((h << 5) | (h >> 27)) ^ v[i];
    }}
    return (int)h;
}}
"""


def _xtea_generate(seed: int) -> dict:
    rng = rng_for("xtea", seed)
    return {
        "v": [rng.getrandbits(32) for _ in range(2 * _XTEA_BLOCKS)],
        "key": [rng.getrandbits(32) for _ in range(4)],
    }


def _xtea_render(data: dict) -> str:
    return _XTEA_TEMPLATE.format(
        blocks=_XTEA_BLOCKS,
        words=len(data["v"]),
        rounds=_XTEA_ROUNDS,
        delta=_DELTA,
        v_init=c_array("unsigned", "v", data["v"], per_line=4),
        key_init=c_array("unsigned", "key", data["key"], per_line=4),
    )


def _xtea_reference(data: dict) -> int:
    v = list(data["v"])
    key = data["key"]
    for b in range(0, len(v), 2):
        v0, v1 = v[b], v[b + 1]
        total = 0
        for _ in range(_XTEA_ROUNDS):
            v0 = u32(v0 + ((u32((v1 << 4)) ^ (v1 >> 5)) + v1
                           ^ u32(total + key[total & 3])))
            total = u32(total + _DELTA)
            v1 = u32(v1 + ((u32((v0 << 4)) ^ (v0 >> 5)) + v0
                           ^ u32(total + key[(total >> 11) & 3])))
        v[b], v[b + 1] = v0, v1
    digest = 0
    for word in v:
        digest = mix_digest(digest, word)
    return digest


register(Workload(
    name="xtea",
    wclass="crypto",
    description="XTEA block cipher, 32 Feistel rounds over "
                f"{_XTEA_BLOCKS} blocks",
    sweep_axis="pipeline_depth",
    generate=_xtea_generate,
    render=_xtea_render,
    reference=_xtea_reference,
    footprint=lambda data: 4 * (len(data["v"]) + len(data["key"])),
))


# ---------------------------------------------------------------------------
# DES-style round function
# ---------------------------------------------------------------------------

_DES_BLOCKS = 4           # pairs of (L, R) words
_DES_ROUNDS = 16

_DES_TEMPLATE = """\
/* DES-style Feistel network: S-box substitution + rotation mixing. */
{sbox_init}

{blocks_init}

{keys_init}

unsigned f(unsigned r, unsigned k) {{
    unsigned x = r ^ k;
    unsigned out = 0;
    unsigned i;
    for (i = 0; i < 8; i++) {{
        unsigned idx = ((x >> (i * 4)) & 15) | ((i & 3) << 4);
        out ^= sbox[idx] << (i * 4);
    }}
    return (out << 11) | (out >> 21);
}}

int main(void) {{
    unsigned b;
    unsigned r;
    unsigned h = 0;
    for (b = 0; b < {words}; b += 2) {{
        unsigned left = blocks[b];
        unsigned right = blocks[b + 1];
        for (r = 0; r < {rounds}; r++) {{
            unsigned t = right;
            right = left ^ f(right, keys[r]);
            left = t;
        }}
        h = ((h << 5) | (h >> 27)) ^ left;
        h = ((h << 5) | (h >> 27)) ^ right;
    }}
    return (int)h;
}}
"""


def _des_generate(seed: int) -> dict:
    rng = rng_for("des_round", seed)
    return {
        "sbox": [rng.getrandbits(4) for _ in range(64)],
        "blocks": [rng.getrandbits(32) for _ in range(2 * _DES_BLOCKS)],
        "keys": [rng.getrandbits(32) for _ in range(_DES_ROUNDS)],
    }


def _des_render(data: dict) -> str:
    return _DES_TEMPLATE.format(
        words=len(data["blocks"]),
        rounds=_DES_ROUNDS,
        sbox_init=c_array("unsigned", "sbox", data["sbox"], per_line=16),
        blocks_init=c_array("unsigned", "blocks", data["blocks"], per_line=4),
        keys_init=c_array("unsigned", "keys", data["keys"], per_line=4),
    )


def _des_f(r: int, k: int, sbox: list[int]) -> int:
    x = r ^ k
    out = 0
    for i in range(8):
        idx = ((x >> (i * 4)) & 15) | ((i & 3) << 4)
        out ^= u32(sbox[idx] << (i * 4))
    return rol32(out, 11)


def _des_reference(data: dict) -> int:
    sbox, keys = data["sbox"], data["keys"]
    digest = 0
    blocks = data["blocks"]
    for b in range(0, len(blocks), 2):
        left, right = blocks[b], blocks[b + 1]
        for r in range(_DES_ROUNDS):
            left, right = right, left ^ _des_f(right, keys[r], sbox)
        digest = mix_digest(digest, left)
        digest = mix_digest(digest, right)
    return digest


register(Workload(
    name="des_round",
    wclass="crypto",
    description="DES-style Feistel rounds with S-box table lookups, "
                f"{_DES_ROUNDS} rounds over {_DES_BLOCKS} blocks",
    sweep_axis="multiplier",
    generate=_des_generate,
    render=_des_render,
    reference=_des_reference,
    footprint=lambda data: 4 * (len(data["sbox"]) + len(data["blocks"])
                                + len(data["keys"])),
))
