"""Sorting and string-search workloads.

The recursive quicksort is deliberately *not* iterative: its recursion
rides the SPARC register-window machinery deep enough to take window
overflow/underflow traps, which makes it the difftest trap-parity seed
(and the workload whose cycle count moves with NWINDOWS).  The string
search is byte-compare bound — branchy, cache-resident, with a match
digest so position information lands in the RESULT word.
"""

from __future__ import annotations

from repro.utils import u32
from repro.workloads.base import Workload, c_array, register, rng_for

_SORT_N = 96

_SORT_TEMPLATE = """\
/* Recursive quicksort over {n} ints, then verify + digest. */
{a_init}

void sort_span(int lo, int hi) {{
    int p;
    int i;
    int j;
    if (lo >= hi) {{
        return;
    }}
    p = a[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {{
        while (a[i] < p) {{
            i++;
        }}
        while (a[j] > p) {{
            j--;
        }}
        if (i <= j) {{
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }}
    }}
    sort_span(lo, j);
    sort_span(i, hi);
}}

int main(void) {{
    int k;
    unsigned h = 0;
    sort_span(0, {n} - 1);
    for (k = 0; k < {n}; k++) {{
        if (k > 0 && a[k - 1] > a[k]) {{
            return -1;  /* not sorted: fail the self-check loudly */
        }}
        h = ((h << 5) | (h >> 27)) + (unsigned)a[k] + (unsigned)k;
    }}
    return (int)h;
}}
"""


def _sort_generate(seed: int) -> dict:
    rng = rng_for("qsort_rec", seed)
    return {"a": [rng.randint(-100_000, 100_000) for _ in range(_SORT_N)]}


def _sort_render(data: dict) -> str:
    return _SORT_TEMPLATE.format(
        n=len(data["a"]),
        a_init=c_array("int", "a", data["a"], per_line=8),
    )


def _sort_reference(data: dict) -> int:
    digest = 0
    for k, value in enumerate(sorted(data["a"])):
        digest = u32(((digest << 5) | (digest >> 27)) + u32(value) + k)
    return digest


register(Workload(
    name="qsort_rec",
    wclass="sort",
    description=f"recursive quicksort over {_SORT_N} ints "
                "(register-window overflow traps)",
    sweep_axis="nwindows",
    generate=_sort_generate,
    render=_sort_render,
    reference=_sort_reference,
    footprint=lambda data: 4 * len(data["a"]),
    takes_window_traps=True,
))


# ---------------------------------------------------------------------------
# String search
# ---------------------------------------------------------------------------

_TEXT_N = 192
_ALPHABET = "abcd"

_SEARCH_TEMPLATE = """\
/* Naive substring search: count matches, digest their positions. */
{text_init}

{pat_init}

int main(void) {{
    int count = 0;
    unsigned h = 0;
    int i;
    int j;
    for (i = 0; i + {m} <= {n}; i++) {{
        j = 0;
        while (j < {m} && text[i + j] == pat[j]) {{
            j++;
        }}
        if (j == {m}) {{
            count++;
            h = h * 33 + (unsigned)i;
        }}
    }}
    return (int)(h ^ ((unsigned)count << 24));
}}
"""


def _search_generate(seed: int) -> dict:
    rng = rng_for("strsearch", seed)
    text = [rng.choice(_ALPHABET) for _ in range(_TEXT_N)]
    m = rng.randint(2, 4)
    pattern = [rng.choice(_ALPHABET) for _ in range(m)]
    # Splice the pattern in a few times so matches are guaranteed.
    for _ in range(rng.randint(2, 5)):
        start = rng.randrange(_TEXT_N - m)
        text[start:start + m] = pattern
    return {"text": [ord(c) for c in text],
            "pat": [ord(c) for c in pattern]}


def _search_render(data: dict) -> str:
    return _SEARCH_TEMPLATE.format(
        n=len(data["text"]), m=len(data["pat"]),
        text_init=c_array("char", "text", data["text"], per_line=12),
        pat_init=c_array("char", "pat", data["pat"], per_line=12),
    )


def _search_reference(data: dict) -> int:
    text, pat = data["text"], data["pat"]
    count = 0
    digest = 0
    for i in range(len(text) - len(pat) + 1):
        if text[i:i + len(pat)] == pat:
            count += 1
            digest = u32(digest * 33 + i)
    return u32(digest ^ u32(count << 24))


register(Workload(
    name="strsearch",
    wclass="search",
    description=f"naive substring search over {_TEXT_N} chars "
                "(byte compares, match-position digest)",
    sweep_axis="dcache_size",
    generate=_search_generate,
    render=_search_render,
    reference=_search_reference,
    footprint=lambda data: len(data["text"]) + len(data["pat"]),
))
