"""Typed diagnostics shared by every static-analysis pass.

The binary verifier (:mod:`repro.analysis.verify`), the rewriter
legality checker (:mod:`repro.analysis.legality`) and the mini-C lint
(:mod:`repro.toolchain.cc.lint`) all report through one model so that
CI, the ``repro-analyze`` CLI and the obs counters consume a single
shape: a severity, a stable machine-readable code, an anchor (a PC for
machine code, a source line for C), the nearest symbol, and a message.

A :class:`DiagnosticReport` is an ordered collection with the query
helpers the consumers need — error/warning partition, allowlisting by
code, deterministic text and JSON renderings, and an export into
``analysis.*`` obs counters via
:func:`repro.obs.collect.collect_analysis`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum


class Severity(Enum):
    """How bad a finding is.  ``ERROR`` findings gate CI."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one pass.

    ``code`` is the stable identifier passes key their findings on
    (``cti-in-delay-slot``, ``uninit-read``, ...); allowlists and obs
    labels use it, never the message text.  ``pc`` anchors machine-code
    findings; ``line`` anchors source-level findings; either may be
    ``None``.
    """

    severity: Severity
    code: str
    message: str
    pc: int | None = None
    line: int | None = None
    symbol: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def anchor(self) -> str:
        """Human-readable location prefix."""
        if self.pc is not None:
            where = f"0x{self.pc:08x}"
            if self.symbol:
                where += f" <{self.symbol}>"
            return where
        if self.line is not None:
            return f"line {self.line}"
        return "<program>"

    def render(self) -> str:
        return (f"{self.severity.value}[{self.code}] {self.anchor()}: "
                f"{self.message}")

    def to_dict(self) -> dict:
        return {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
            "pc": self.pc,
            "line": self.line,
            "symbol": self.symbol,
        }


def _sort_key(diag: Diagnostic) -> tuple:
    return (diag.pc if diag.pc is not None else -1,
            diag.line if diag.line is not None else -1,
            diag.severity.value, diag.code, diag.message)


@dataclass
class DiagnosticReport:
    """An ordered, queryable collection of diagnostics."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: What was analyzed — a workload name, file name, or symbol.
    subject: str = "<image>"

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def emit(self, severity: Severity, code: str, message: str,
             pc: int | None = None, line: int | None = None,
             symbol: str | None = None) -> Diagnostic:
        return self.add(Diagnostic(severity, code, message,
                                   pc=pc, line=line, symbol=symbol))

    def error(self, code: str, message: str, **kw) -> Diagnostic:
        return self.emit(Severity.ERROR, code, message, **kw)

    def warning(self, code: str, message: str, **kw) -> Diagnostic:
        return self.emit(Severity.WARNING, code, message, **kw)

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> dict[str, int]:
        """Finding counts per code, sorted by code."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def allowlisted(self, allow: set[str] | frozenset[str]
                    ) -> "DiagnosticReport":
        """A copy with every finding whose code is in *allow* dropped."""
        return DiagnosticReport(
            [d for d in self.diagnostics if d.code not in allow],
            subject=self.subject)

    def ok(self, allow: set[str] | frozenset[str] = frozenset()) -> bool:
        """True when no (non-allowlisted) errors remain."""
        return not self.allowlisted(set(allow)).errors

    # -- rendering ---------------------------------------------------------

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics, key=_sort_key)

    def render_text(self) -> str:
        lines = [f"analysis report: {self.subject} — "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [f"  {diag.render()}" for diag in self.sorted()]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "codes": self.codes(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def canonical_json(self) -> str:
        """Byte-stable serialization — the CI artifact format."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


__all__ = ["Severity", "Diagnostic", "DiagnosticReport"]
