"""Legality checking for custom-instruction fusion sites.

The rewriter (:mod:`repro.core.rewriter`) finds candidate regions with
a textual peephole; this module decides whether collapsing a region
into one ``custom`` op preserves the program, using the dataflow facts
from :mod:`repro.analysis.dataflow`:

* the region must be contiguous, inside one basic block, and must not
  include a CTI, its delay slot, or any memory/MMIO/state-changing
  instruction — so nothing is reordered around a side effect;
* every value the region reads must either be an *input* of the fused
  instruction (read before any region write, so the fusion sees the
  same live-in value) or an internal temporary produced earlier in the
  region;
* every register the region writes must be the fused *output* or a
  *killed* temporary, and every killed temporary must be dead after
  the region (nothing downstream observes the value the fusion no
  longer produces) — condition codes included.

:func:`check_fusion` returns a :class:`LegalityResult` carrying every
violated condition, so a rejected site explains itself in tests and in
``repro-analyze`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import BasicBlock, InstrKind, build_cfg
from repro.analysis.dataflow import (
    LOCATION_NAMES,
    REG_ICC,
    REG_Y,
    FunctionDataflow,
    analyze_function,
    bit,
    block_effects,
    locations,
    mask_of,
)
from repro.cpu.isa import Op3
from repro.toolchain.objfile import Image

#: Instruction kinds a fusable region may contain: pure register ops.
PURE_KINDS = frozenset({InstrKind.ALU, InstrKind.SETHI})


@dataclass(frozen=True)
class FusionCandidate:
    """A contiguous region proposed for fusion into one custom op.

    ``inputs``/``output``/``killed`` are dataflow locations (register
    numbers, or :data:`REG_Y` / :data:`REG_ICC`): what the fused
    instruction will read at the region's entry, the one register it
    will write, and the temporaries it will stop producing.
    """

    pcs: tuple[int, ...]
    inputs: tuple[int, ...]
    output: int
    killed: tuple[int, ...] = ()

    @property
    def start(self) -> int:
        return self.pcs[0]

    @property
    def last(self) -> int:
        return self.pcs[-1]

    def describe(self) -> str:
        ins = ", ".join(LOCATION_NAMES[loc] for loc in self.inputs)
        return (f"fuse [0x{self.start:08x}..0x{self.last:08x}] "
                f"({ins}) -> {LOCATION_NAMES[self.output]}")


@dataclass
class LegalityResult:
    """Verdict plus every violated condition."""

    candidate: FusionCandidate
    reasons: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.reasons

    def reject(self, reason: str) -> None:
        self.reasons.append(reason)

    def render(self) -> str:
        verdict = "LEGAL" if self.ok else "ILLEGAL"
        text = f"{verdict}: {self.candidate.describe()}"
        for reason in self.reasons:
            text += f"\n  - {reason}"
        return text


def check_fusion(flow: FunctionDataflow,
                 candidate: FusionCandidate) -> LegalityResult:
    """Decide whether *candidate* may be fused, given solved dataflow."""
    result = LegalityResult(candidate)
    pcs = candidate.pcs
    if not pcs:
        result.reject("empty region")
        return result
    if list(pcs) != list(range(pcs[0], pcs[-1] + 4, 4)):
        result.reject("region is not contiguous")
        return result

    block = flow.block_of(pcs[0])
    if block is None or flow.block_of(pcs[-1]) is not block:
        result.reject("region spans a basic-block boundary")
        return result

    region = [i for i in block.instructions if i.pc in set(pcs)]
    if len(region) != len(pcs):
        result.reject("region PCs do not map to instructions")
        return result
    for instr in region:
        if instr.pc in block.annulled or instr.pc == block.conditional_slot:
            result.reject(
                f"0x{instr.pc:08x} is an (annullable) delay slot")
        if instr.is_delayed_cti or instr.kind in (InstrKind.TICC,
                                                  InstrKind.UNIMP):
            result.reject(
                f"0x{instr.pc:08x} is a control-transfer instruction")
        elif instr.kind not in PURE_KINDS:
            result.reject(
                f"0x{instr.pc:08x} ({instr.kind.value}) has side "
                f"effects that cannot be reordered")
    if result.reasons:
        return result

    inputs_mask = mask_of(candidate.inputs)
    killed_mask = mask_of(candidate.killed)
    allowed_defs = killed_mask | bit(candidate.output)
    effects = [e for e in block_effects(block) if e.pc in set(pcs)]

    defined_in_region = 0
    region_defs_icc = False
    for effect in effects:
        for loc in locations(effect.uses):
            if defined_in_region & bit(loc):
                continue  # internal temporary produced above
            if not inputs_mask & bit(loc):
                result.reject(
                    f"0x{effect.pc:08x} reads {LOCATION_NAMES[loc]}, "
                    f"which is neither an input nor produced in the "
                    f"region")
        stray = effect.defs & ~allowed_defs
        for loc in locations(stray):
            result.reject(
                f"0x{effect.pc:08x} writes {LOCATION_NAMES[loc]}, "
                f"which is neither the output nor a killed temporary")
        if effect.defs & bit(REG_ICC):
            region_defs_icc = True
        defined_in_region |= effect.defs

    live_after = flow.live_after.get(candidate.last)
    if live_after is None:
        result.reject("no liveness fact at the region's last PC")
        return result
    escaped = killed_mask & live_after & ~bit(candidate.output)
    for loc in locations(escaped):
        result.reject(
            f"killed temporary {LOCATION_NAMES[loc]} is live after "
            f"the region")
    if region_defs_icc and candidate.output != REG_ICC and \
            not killed_mask & bit(REG_ICC) and live_after & bit(REG_ICC):
        result.reject(
            "region sets the condition codes and %icc is live after it")
    return result


# ---------------------------------------------------------------------------
# Candidate discovery (binary-side mirror of the rewriter's peepholes)
# ---------------------------------------------------------------------------


def mac_candidates(blocks: list[BasicBlock]) -> list[FusionCandidate]:
    """``smul a, b, t; add acc, t, acc`` pairs — the MAC recipe's shape
    located in the *binary*, so textual matches can be cross-checked."""
    found: list[FusionCandidate] = []
    for block in blocks:
        instrs = block.instructions
        for first, second in zip(instrs, instrs[1:]):
            if first.kind != InstrKind.ALU or second.kind != InstrKind.ALU:
                continue
            if Op3(first.inst.op3) != Op3.SMUL or first.inst.imm:
                continue
            if Op3(second.inst.op3) != Op3.ADD or second.inst.imm:
                continue
            temp = first.inst.rd
            acc = second.inst.rd
            if temp == 0 or temp == acc:
                continue
            if second.inst.rs1 != acc or second.inst.rs2 != temp:
                continue
            # smul also writes %y (the high half); the fused MAC does
            # not, so %y is a killed side effect that must be dead-out.
            found.append(FusionCandidate(
                pcs=(first.pc, second.pc),
                inputs=(first.inst.rs1, first.inst.rs2, acc),
                output=acc, killed=(temp, REG_Y)))
    return found


def legal_sites(image: Image,
                finder=mac_candidates) -> list[LegalityResult]:
    """Find *finder*'s candidates in every function of *image* and
    check each one.  Returns one :class:`LegalityResult` per candidate,
    in address order."""
    cfg = build_cfg(image)
    results: list[LegalityResult] = []
    for entry in cfg.function_entries:
        flow = analyze_function(cfg, entry)
        for candidate in finder(flow.blocks):
            results.append(check_fusion(flow, candidate))
    results.sort(key=lambda r: r.candidate.start)
    return results


__all__ = [
    "FusionCandidate",
    "LegalityResult",
    "PURE_KINDS",
    "check_fusion",
    "legal_sites",
    "mac_candidates",
]
