"""Trace capture and vectorized trace analysis."""

from repro.analysis.stats import (
    MissCurvePoint,
    footprint_histogram,
    observed_miss_rate,
    reuse_distances,
    simulate_miss_curve,
    stride_profile,
    working_set_bytes,
)
from repro.analysis.trace import MemoryTrace, TraceRecorder

__all__ = [
    "MissCurvePoint",
    "footprint_histogram",
    "observed_miss_rate",
    "reuse_distances",
    "simulate_miss_curve",
    "stride_profile",
    "working_set_bytes",
    "MemoryTrace",
    "TraceRecorder",
]
