"""repro.analysis — trace analysis and binary static analysis.

Two halves share this package:

* **dynamic**: memory-trace capture and vectorized reductions
  (:mod:`~repro.analysis.trace`, :mod:`~repro.analysis.stats`);
* **static**: CFG recovery, dataflow, the machine-code verifier and
  the rewriter legality checker over linked SPARC images
  (:mod:`~repro.analysis.cfg`, :mod:`~repro.analysis.dataflow`,
  :mod:`~repro.analysis.verify`, :mod:`~repro.analysis.legality`),
  all reporting through :mod:`~repro.analysis.diagnostics`.
"""

from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Instruction,
    InstrKind,
    build_cfg,
)
from repro.analysis.dataflow import (
    DefinedRegisters,
    FunctionDataflow,
    Liveness,
    ReachingDefinitions,
    analyze_function,
    solve,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.legality import (
    FusionCandidate,
    LegalityResult,
    check_fusion,
    legal_sites,
    mac_candidates,
)
from repro.analysis.stats import (
    MissCurvePoint,
    footprint_histogram,
    observed_miss_rate,
    reuse_distances,
    simulate_miss_curve,
    stride_profile,
    working_set_bytes,
)
from repro.analysis.trace import MemoryTrace, TraceRecorder
from repro.analysis.verify import (
    FunctionAnalysis,
    ProgramAnalysis,
    analyze_image,
    verify_image,
)

__all__ = [
    "MissCurvePoint",
    "footprint_histogram",
    "observed_miss_rate",
    "reuse_distances",
    "simulate_miss_curve",
    "stride_profile",
    "working_set_bytes",
    "MemoryTrace",
    "TraceRecorder",
    "BasicBlock",
    "ControlFlowGraph",
    "Instruction",
    "InstrKind",
    "build_cfg",
    "DefinedRegisters",
    "FunctionDataflow",
    "Liveness",
    "ReachingDefinitions",
    "analyze_function",
    "solve",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "FusionCandidate",
    "LegalityResult",
    "check_fusion",
    "legal_sites",
    "mac_candidates",
    "FunctionAnalysis",
    "ProgramAnalysis",
    "analyze_image",
    "verify_image",
]
