"""Control-flow-graph recovery over linked SPARC V8 images.

Works directly on the bytes the loader would write into FPX SRAM: the
text segment is decoded word-by-word (decoding is total — unknown words
become :attr:`InstrKind.UNKNOWN`, they never raise), classified, and
carved into basic blocks with correct *delayed-branch* semantics:

* a delayed CTI (Bicc / CALL / JMPL / RETT) owns its delay slot — the
  instruction at ``pc + 4`` belongs to the CTI's block and executes
  before control transfers;
* ``b*,a`` annulled branches execute the delay slot only on the taken
  path (``ba,a`` never executes it, ``bn,a`` turns both words into a
  no-op pair);
* Ticc and UNIMP trap immediately — no delay slot.

Function partitioning follows call edges: every call target (plus the
image entry) starts a function, and a function's body is the set of
blocks reachable from its entry *without* crossing calls or returns.
Dominator trees are computed per function with the classic iterative
two-finger algorithm over a reverse-postorder numbering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.analysis.diagnostics import DiagnosticReport
from repro.cpu.decode import DecodedInstruction, decode
from repro.cpu.isa import (
    OP2_BICC,
    OP2_SETHI,
    OP2_UNIMP,
    OP_ARITH,
    OP_BRANCH_SETHI,
    OP_CALL,
    OP_MEM,
    Cond,
    Op3,
    Op3Mem,
)
from repro.toolchain.objfile import Image
from repro.utils import u32


class InstrKind(Enum):
    """Coarse classification driving CFG construction and dataflow."""

    ALU = "alu"
    SETHI = "sethi"
    BRANCH = "branch"        # Bicc, delayed CTI
    CALL = "call"            # CALL, delayed CTI
    JMPL = "jmpl"            # register-indirect CTI (ret/retl/call %reg)
    RETT = "rett"            # return from trap, delayed CTI
    TICC = "ticc"            # trap on condition — immediate, no delay slot
    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"        # ldstub / swap: load + store in one
    READ_STATE = "read_state"    # rd %y/%psr/%wim/%tbr
    WRITE_STATE = "write_state"  # wr %y/%psr/%wim/%tbr
    SAVE = "save"
    RESTORE = "restore"
    FLUSH = "flush"
    CUSTOM = "custom"        # CPop1 — Liquid custom instruction
    UNIMP = "unimp"
    UNKNOWN = "unknown"      # undecodable — rendered as .word, never raises


#: Kinds that transfer control through a delay slot.
DELAYED_CTIS = frozenset({InstrKind.BRANCH, InstrKind.CALL,
                          InstrKind.JMPL, InstrKind.RETT})

_LOAD_OP3S = frozenset({Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB,
                        Op3Mem.LDSH, Op3Mem.LDD, Op3Mem.LDA, Op3Mem.LDUBA,
                        Op3Mem.LDUHA, Op3Mem.LDSBA, Op3Mem.LDSHA,
                        Op3Mem.LDDA})
_STORE_OP3S = frozenset({Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD,
                         Op3Mem.STA, Op3Mem.STBA, Op3Mem.STHA, Op3Mem.STDA})
_ATOMIC_OP3S = frozenset({Op3Mem.LDSTUB, Op3Mem.LDSTUBA, Op3Mem.SWAP,
                          Op3Mem.SWAPA})

#: Access width in bytes per memory op3 (alignment checking).
MEM_WIDTHS = {
    Op3Mem.LD: 4, Op3Mem.LDA: 4, Op3Mem.ST: 4, Op3Mem.STA: 4,
    Op3Mem.LDD: 8, Op3Mem.LDDA: 8, Op3Mem.STD: 8, Op3Mem.STDA: 8,
    Op3Mem.LDUH: 2, Op3Mem.LDUHA: 2, Op3Mem.LDSH: 2, Op3Mem.LDSHA: 2,
    Op3Mem.STH: 2, Op3Mem.STHA: 2,
    Op3Mem.LDUB: 1, Op3Mem.LDUBA: 1, Op3Mem.LDSB: 1, Op3Mem.LDSBA: 1,
    Op3Mem.STB: 1, Op3Mem.STBA: 1, Op3Mem.LDSTUB: 1, Op3Mem.LDSTUBA: 1,
    Op3Mem.SWAP: 4, Op3Mem.SWAPA: 4,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded, classified word at an absolute PC."""

    pc: int
    word: int
    inst: DecodedInstruction
    kind: InstrKind

    @property
    def is_delayed_cti(self) -> bool:
        return self.kind in DELAYED_CTIS

    @property
    def is_memory(self) -> bool:
        return self.kind in (InstrKind.LOAD, InstrKind.STORE,
                             InstrKind.ATOMIC)

    @property
    def writes_icc(self) -> bool:
        if self.kind not in (InstrKind.ALU, InstrKind.WRITE_STATE):
            return False
        try:
            op3 = Op3(self.inst.op3)
        except ValueError:
            return False
        if op3 == Op3.WRPSR:
            return True
        return op3.name.endswith("CC") or op3 == Op3.MULSCC

    def branch_target(self) -> int | None:
        """Static target of a PC-relative CTI, else ``None``."""
        if self.kind == InstrKind.BRANCH:
            return u32(self.pc + (self.inst.disp22 << 2))
        if self.kind == InstrKind.CALL:
            return u32(self.pc + (self.inst.disp30 << 2))
        return None


def classify(inst: DecodedInstruction) -> InstrKind:
    """Total classification — anything unrecognised is ``UNKNOWN``."""
    if inst.op == OP_CALL:
        return InstrKind.CALL
    if inst.op == OP_BRANCH_SETHI:
        if inst.op2 == OP2_BICC:
            return InstrKind.BRANCH
        if inst.op2 == OP2_SETHI:
            return InstrKind.SETHI
        if inst.op2 == OP2_UNIMP:
            return InstrKind.UNIMP
        return InstrKind.UNKNOWN  # FBfcc / CBccc / unallocated op2
    if inst.op == OP_ARITH:
        try:
            op3 = Op3(inst.op3)
        except ValueError:
            return InstrKind.UNKNOWN
        if op3 == Op3.JMPL:
            return InstrKind.JMPL
        if op3 == Op3.RETT:
            return InstrKind.RETT
        if op3 == Op3.TICC:
            return InstrKind.TICC
        if op3 == Op3.SAVE:
            return InstrKind.SAVE
        if op3 == Op3.RESTORE:
            return InstrKind.RESTORE
        if op3 == Op3.FLUSH:
            return InstrKind.FLUSH
        if op3 == Op3.CPOP1:
            return InstrKind.CUSTOM
        if op3 in (Op3.RDASR, Op3.RDPSR, Op3.RDWIM, Op3.RDTBR):
            return InstrKind.READ_STATE
        if op3 in (Op3.WRASR, Op3.WRPSR, Op3.WRWIM, Op3.WRTBR):
            return InstrKind.WRITE_STATE
        if op3 in (Op3.FPOP1, Op3.FPOP2, Op3.CPOP2):
            return InstrKind.UNKNOWN
        return InstrKind.ALU
    try:
        op3 = Op3Mem(inst.op3)
    except ValueError:
        return InstrKind.UNKNOWN
    if op3 in _LOAD_OP3S:
        return InstrKind.LOAD
    if op3 in _STORE_OP3S:
        return InstrKind.STORE
    return InstrKind.ATOMIC


@dataclass
class BasicBlock:
    """A maximal straight-line run, delay slot included.

    ``instructions`` lists the words in memory order; when the block
    ends in a delayed CTI the delay-slot instruction is the last entry.
    ``annulled`` PCs are delay slots that *never* execute (``ba,a`` /
    ``bn,a``); ``conditional_slot`` marks a delay slot that executes
    only on the taken path (annulled conditional branch).
    """

    start: int
    instructions: list[Instruction] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    call_target: int | None = None
    #: 'branch'|'call'|'ret'|'retl'|'jmpl'|'rett'|'trap'|'unimp'|'fall'|'end'
    terminator: str = "fall"
    annulled: frozenset[int] = frozenset()
    conditional_slot: int | None = None

    @property
    def end(self) -> int:
        """PC one past the last word of the block."""
        return self.instructions[-1].pc + 4 if self.instructions \
            else self.start

    @property
    def is_return(self) -> bool:
        return self.terminator in ("ret", "retl")

    def executed(self) -> list[Instruction]:
        """Instructions that can execute when this block runs."""
        return [i for i in self.instructions if i.pc not in self.annulled]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"BasicBlock(0x{self.start:x}..0x{self.end:x} "
                f"{self.terminator} -> "
                f"{[hex(s) for s in self.successors]})")


@dataclass
class ControlFlowGraph:
    """Whole-program CFG plus the function partition."""

    entry: int
    blocks: dict[int, BasicBlock]
    #: Every decoded word in the text segment, by PC.
    instructions: dict[int, Instruction]
    #: Function entry PCs, sorted (image entry + every call target).
    function_entries: list[int]
    #: name -> address for symbols inside the text segment.
    symbols: dict[str, int]
    diagnostics: DiagnosticReport = field(default_factory=DiagnosticReport)

    # ------------------------------------------------------------------

    def block_at(self, pc: int) -> BasicBlock | None:
        """The block whose span covers *pc* (not necessarily its start)."""
        candidates = [b for b in self.blocks.values()
                      if b.start <= pc < b.end]
        return candidates[0] if candidates else None

    def reachable(self) -> set[int]:
        """Block starts reachable from the entry, following both flow
        and call edges."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            start = stack.pop()
            block = self.blocks.get(start)
            if block is None or start in seen:
                continue
            seen.add(start)
            stack.extend(block.successors)
            if block.call_target is not None:
                stack.append(block.call_target)
        return seen

    def function_blocks(self, entry: int) -> list[BasicBlock]:
        """Blocks of one function: reachable from *entry* following
        intra-procedural edges only (calls fall through, returns stop)."""
        seen: set[int] = set()
        stack = [entry]
        order: list[BasicBlock] = []
        while stack:
            start = stack.pop()
            block = self.blocks.get(start)
            if block is None or start in seen:
                continue
            seen.add(start)
            order.append(block)
            stack.extend(block.successors)
        order.sort(key=lambda b: b.start)
        return order

    def function_of(self, pc: int) -> int | None:
        """The function entry whose body contains *pc*, if any."""
        for entry in self.function_entries:
            for block in self.function_blocks(entry):
                if block.start <= pc < block.end:
                    return entry
        return None

    def nearest_symbol(self, pc: int) -> str | None:
        """Closest text symbol at or before *pc* (diagnostic anchors)."""
        best: tuple[int, str] | None = None
        for name, addr in self.symbols.items():
            if addr <= pc and (best is None or addr > best[0]):
                best = (addr, name)
        if best is None:
            return None
        offset = pc - best[0]
        return best[1] if offset == 0 else f"{best[1]}+0x{offset:x}"

    # -- dominators -----------------------------------------------------

    def dominator_tree(self, entry: int) -> dict[int, int | None]:
        """Immediate dominators for the function rooted at *entry*.

        Returns ``block start -> idom start`` (the entry maps to
        ``None``).  Classic Cooper/Harvey/Kennedy iteration over a
        reverse-postorder numbering.
        """
        blocks = {b.start: b for b in self.function_blocks(entry)}
        if entry not in blocks:
            return {}
        # Reverse postorder via iterative DFS.
        postorder: list[int] = []
        visited: set[int] = {entry}
        stack: list[tuple[int, int]] = [(entry, 0)]
        while stack:
            node, child = stack.pop()
            succs = [s for s in blocks[node].successors if s in blocks]
            if child < len(succs):
                stack.append((node, child + 1))
                nxt = succs[child]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                postorder.append(node)
        rpo = list(reversed(postorder))
        number = {start: idx for idx, start in enumerate(rpo)}
        preds: dict[int, list[int]] = {start: [] for start in rpo}
        for start in rpo:
            for succ in blocks[start].successors:
                if succ in preds:
                    preds[succ].append(start)
        idom: dict[int, int | None] = {entry: entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while number[a] > number[b]:
                    a = idom[a]  # type: ignore[assignment]
                while number[b] > number[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == entry:
                    continue
                candidates = [p for p in preds[node] if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for other in candidates[1:]:
                    new = intersect(new, other)
                if idom.get(node) != new:
                    idom[node] = new
                    changed = True
        result: dict[int, int | None] = {entry: None}
        for node, dom in idom.items():
            if node != entry:
                result[node] = dom
        return result

    def dominates(self, entry: int, a: int, b: int) -> bool:
        """Does block *a* dominate block *b* within *entry*'s function?"""
        idom = self.dominator_tree(entry)
        node: int | None = b
        while node is not None:
            if node == a:
                return True
            node = idom.get(node)
        return False


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def text_segment(image: Image) -> tuple[int, bytes]:
    """The segment containing the entry point (the code the CPU runs)."""
    for base, data in sorted(image.segments.items()):
        if base <= image.entry < base + len(data):
            return base, data
    if not image.segments:
        return image.entry, b""
    base = min(image.segments)
    return base, image.segments[base]


def _decode_all(base: int, data: bytes) -> dict[int, Instruction]:
    instructions: dict[int, Instruction] = {}
    for offset in range(0, len(data) - 3, 4):
        word = int.from_bytes(data[offset:offset + 4], "big")
        inst = decode(u32(word))
        instructions[base + offset] = Instruction(
            pc=base + offset, word=word, inst=inst, kind=classify(inst))
    return instructions


def build_cfg(image: Image,
              report: DiagnosticReport | None = None) -> ControlFlowGraph:
    """Recover the CFG of *image*'s text segment.

    Never raises on malformed code: undecodable words classify as
    :attr:`InstrKind.UNKNOWN` and structural problems (CTI without a
    delay slot, branch into a delay slot, targets outside the text
    segment) surface as diagnostics on the returned graph.
    """
    report = report if report is not None else DiagnosticReport()
    base, data = text_segment(image)
    instructions = _decode_all(base, data)
    end = base + (len(data) & ~3)
    entry = image.entry
    text_symbols = {name: addr for name, addr in image.symbols.items()
                    if base <= addr < end}

    def in_text(pc: int) -> bool:
        return base <= pc < end

    # -- pass 1: leaders and call targets ------------------------------
    leaders: set[int] = {entry} if in_text(entry) else set()
    call_targets: set[int] = set()
    delay_slots: set[int] = set()
    pcs = sorted(instructions)
    for pc in pcs:
        instr = instructions[pc]
        if not instr.is_delayed_cti:
            if instr.kind in (InstrKind.TICC, InstrKind.UNIMP):
                # Immediate trap: next word starts a new block.  Only
                # the *always* trap ends the block unconditionally, but
                # making the next word a leader either way is harmless.
                if instr.kind == InstrKind.UNIMP or \
                        Cond(instr.inst.cond) == Cond.A:
                    leaders.add(pc + 4)
            continue
        delay_slots.add(pc + 4)
        leaders.add(pc + 8)
        target = instr.branch_target()
        if instr.kind == InstrKind.CALL and target is not None:
            if in_text(target):
                call_targets.add(target)
                leaders.add(target)
            else:
                report.error("call-target-outside-text",
                             f"call target 0x{target:08x} is outside the "
                             f"text segment", pc=pc)
        elif target is not None:
            if in_text(target):
                leaders.add(target)
            else:
                report.error("branch-target-outside-text",
                             f"branch target 0x{target:08x} is outside "
                             f"the text segment", pc=pc)
        if pc + 4 not in instructions:
            report.error("missing-delay-slot",
                         "delayed CTI at the end of the text segment has "
                         "no delay slot", pc=pc)

    for target in sorted(leaders & delay_slots):
        owner = target - 4
        report.warning("branch-into-delay-slot",
                       f"0x{target:08x} is both a branch target and the "
                       f"delay slot of the CTI at 0x{owner:08x}",
                       pc=target)

    # -- pass 2: carve blocks ------------------------------------------
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    skip_until = base
    for pc in pcs:
        if pc < skip_until:
            continue
        instr = instructions[pc]
        if current is None or pc in leaders:
            current = BasicBlock(start=pc)
            blocks[pc] = current
        current.instructions.append(instr)

        if instr.is_delayed_cti and pc + 4 in instructions and \
                pc + 4 not in leaders:
            slot = instructions[pc + 4]
            current.instructions.append(slot)
            if slot.is_delayed_cti:
                report.error(
                    "cti-in-delay-slot",
                    f"{slot.kind.value} in the delay slot of the "
                    f"{instr.kind.value} at 0x{pc:08x}", pc=slot.pc)
            _finish_cti_block(current, instr, slot.pc, report)
            skip_until = pc + 8
            current = None
            continue
        if instr.is_delayed_cti:
            # Delay slot missing or hijacked by a branch target: close
            # the block on the CTI alone (diagnosed above).
            _finish_cti_block(current, instr, None, report)
            skip_until = pc + 4
            current = None
            continue
        if instr.kind == InstrKind.UNIMP or (
                instr.kind == InstrKind.TICC and
                Cond(instr.inst.cond) == Cond.A):
            current.terminator = ("unimp" if instr.kind == InstrKind.UNIMP
                                 else "trap")
            current = None
            continue
        if pc + 4 in leaders and pc + 4 in instructions:
            current.terminator = "fall"
            current.successors.append(pc + 4)
            current = None
    if current is not None:
        current.terminator = "end"

    # -- pass 3: predecessor edges -------------------------------------
    for block in blocks.values():
        block.successors = [s for s in block.successors if s in blocks]
        for succ in block.successors:
            blocks[succ].predecessors.append(block.start)

    function_entries = sorted({entry} | call_targets)
    for pc in sorted(instructions):
        if instructions[pc].kind == InstrKind.UNKNOWN:
            report.warning(
                "unknown-opcode",
                f"undecodable word 0x{instructions[pc].word:08x} "
                f"(rendered as .word)", pc=pc)

    return ControlFlowGraph(entry=entry, blocks=blocks,
                            instructions=instructions,
                            function_entries=function_entries,
                            symbols=text_symbols, diagnostics=report)


def _finish_cti_block(block: BasicBlock, cti: Instruction,
                      slot_pc: int | None,
                      report: DiagnosticReport) -> None:
    """Set terminator / successors / annul bookkeeping for a CTI block."""
    pc = cti.pc
    after = pc + 8 if slot_pc is not None else pc + 4
    if cti.kind == InstrKind.BRANCH:
        block.terminator = "branch"
        cond = Cond(cti.inst.cond)
        target = cti.branch_target()
        annul = cti.inst.annul
        if cond == Cond.A:
            if target is not None:
                block.successors.append(target)
            if annul and slot_pc is not None:
                block.annulled = frozenset({slot_pc})
        elif cond == Cond.N:
            block.successors.append(after)
            if annul and slot_pc is not None:
                block.annulled = frozenset({slot_pc})
        else:
            if target is not None:
                block.successors.append(target)
            block.successors.append(after)
            if annul and slot_pc is not None:
                block.conditional_slot = slot_pc
    elif cti.kind == InstrKind.CALL:
        block.terminator = "call"
        block.call_target = cti.branch_target()
        block.successors.append(after)
    elif cti.kind == InstrKind.JMPL:
        inst = cti.inst
        if inst.rd == 0 and inst.rs1 in (15, 31) and inst.imm and \
                inst.simm13 == 8:
            block.terminator = "ret" if inst.rs1 == 31 else "retl"
        elif inst.rd == 15:
            block.terminator = "call"   # call through a register
            block.successors.append(after)
        else:
            block.terminator = "jmpl"
            report.warning("indirect-jump",
                           "register-indirect jump; static analysis "
                           "cannot follow it", pc=pc)
    else:  # RETT
        block.terminator = "rett"


__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "DELAYED_CTIS",
    "Instruction",
    "InstrKind",
    "MEM_WIDTHS",
    "build_cfg",
    "classify",
    "text_segment",
]
