"""Machine-code verifier: lint passes over a linked image.

:func:`analyze_image` recovers the CFG, solves the dataflow problems
per function, and runs the checks the ISSUE names:

* structural CFG findings (CTI in a delay slot, branch targets outside
  the text segment, unknown opcodes) — emitted during recovery;
* ``unreachable-block`` — text not reachable from the entry;
* ``uninit-read`` — a register read on some path before any write;
* ``dead-store`` — a pure ALU/SETHI result (including condition
  codes) that no path ever reads;
* ``window-imbalance`` — save/restore depth mismatching across merges
  or nonzero at a function return;
* ``misaligned-mem`` / ``odd-register-pair`` — memory ops whose
  statically-known address violates the access alignment, and
  ``ldd``/``std`` with an odd destination register.

Severity policy: structural impossibilities (malformed delay slots,
window imbalance, misalignment) are errors and gate CI; dataflow
findings that may be conservative over-approximation (uninit reads,
dead stores, unreachable code) are warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import (
    MEM_WIDTHS,
    BasicBlock,
    ControlFlowGraph,
    Instruction,
    InstrKind,
    build_cfg,
)
from repro.analysis.dataflow import (
    LOCATION_NAMES,
    DefinedRegisters,
    FunctionDataflow,
    analyze_function,
    block_effects,
    locations,
)
from repro.analysis.diagnostics import DiagnosticReport
from repro.cpu.isa import Op3, Op3Mem
from repro.toolchain.objfile import Image
from repro.utils import u32

#: Codes a workload may allowlist without failing :func:`verify_image`.
DEFAULT_ALLOW: frozenset[str] = frozenset()


@dataclass
class FunctionAnalysis:
    """One function's solved facts plus its findings."""

    entry: int
    name: str
    dataflow: FunctionDataflow


@dataclass
class ProgramAnalysis:
    """Everything the verifier learned about one image."""

    cfg: ControlFlowGraph
    functions: list[FunctionAnalysis] = field(default_factory=list)
    report: DiagnosticReport = field(default_factory=DiagnosticReport)

    def function(self, name: str) -> FunctionAnalysis | None:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None


def analyze_image(image: Image,
                  subject: str = "<image>") -> ProgramAnalysis:
    """Run every verifier pass over *image*."""
    report = DiagnosticReport(subject=subject)
    cfg = build_cfg(image, report)
    analysis = ProgramAnalysis(cfg=cfg, report=report)
    _check_unreachable(cfg, report)
    for entry in cfg.function_entries:
        name = cfg.nearest_symbol(entry) or f"fn_0x{entry:x}"
        flow = analyze_function(cfg, entry)
        analysis.functions.append(FunctionAnalysis(entry, name, flow))
        _check_uninit_reads(cfg, flow, report)
        _check_dead_stores(cfg, flow, report)
        _check_window_balance(cfg, flow, name, report)
    _check_memory_ops(cfg, report)
    return analysis


def verify_image(image: Image, subject: str = "<image>",
                 allow: frozenset[str] = DEFAULT_ALLOW) -> DiagnosticReport:
    """The CI-facing entry point: just the report."""
    return analyze_image(image, subject=subject).report


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


def _check_unreachable(cfg: ControlFlowGraph,
                       report: DiagnosticReport) -> None:
    live = cfg.reachable()
    for start, block in sorted(cfg.blocks.items()):
        if start not in live:
            report.warning(
                "unreachable-block",
                f"block of {len(block.instructions)} instruction(s) is "
                f"unreachable from the entry", pc=start,
                symbol=cfg.nearest_symbol(start))


def _check_uninit_reads(cfg: ControlFlowGraph, flow: FunctionDataflow,
                        report: DiagnosticReport) -> None:
    """Replay the definite-assignment transfer, flagging any use of a
    location not written on *every* path from the function entry."""
    seen: set[tuple[int, int]] = set()
    for block in flow.blocks:
        defined = flow.defined[block.start][0]
        for effect in block_effects(block):
            if effect.instr is None:
                # Synthetic callee summary: its "uses" model arbitrary
                # arity, not actual reads — checking them is pure noise.
                defined = DefinedRegisters.step(effect, defined)
                continue
            unwritten = effect.uses & ~defined
            for loc in locations(unwritten):
                if (effect.pc, loc) in seen:
                    continue
                seen.add((effect.pc, loc))
                report.warning(
                    "uninit-read",
                    f"{LOCATION_NAMES[loc]} may be read before it is "
                    f"written", pc=effect.pc,
                    symbol=cfg.nearest_symbol(effect.pc))
            defined = DefinedRegisters.step(effect, defined)


_PURE_KINDS = (InstrKind.ALU, InstrKind.SETHI)


def _check_dead_stores(cfg: ControlFlowGraph, flow: FunctionDataflow,
                       report: DiagnosticReport) -> None:
    """Pure register-to-register results nothing ever reads."""
    for block in flow.blocks:
        for effect in block_effects(block):
            instr = effect.instr
            if instr is None or instr.kind not in _PURE_KINDS:
                continue
            if effect.may or not effect.defs:
                continue
            live_after = flow.live_after.get(effect.pc)
            if live_after is None or live_after & effect.defs:
                continue
            dests = ", ".join(LOCATION_NAMES[loc]
                              for loc in locations(effect.defs))
            report.warning(
                "dead-store",
                f"result in {dests} is never read on any path",
                pc=effect.pc, symbol=cfg.nearest_symbol(effect.pc))


def _check_window_balance(cfg: ControlFlowGraph, flow: FunctionDataflow,
                          name: str, report: DiagnosticReport) -> None:
    """Forward save/restore depth analysis.

    Every path through a function must keep a consistent window depth:
    merges with mismatched depths, depth going negative, or a return
    with a nonzero net depth are all errors (the caller's window would
    be corrupted).
    """
    index = {b.start: b for b in flow.blocks}
    depth_in: dict[int, int] = {flow.entry: 0}
    worklist = [flow.entry]
    while worklist:
        start = worklist.pop(0)
        block = index[start]
        depth = depth_in[start]
        for effect in block_effects(block):
            if effect.window and not effect.may:
                depth += effect.window
                if depth < 0:
                    report.error(
                        "window-imbalance",
                        f"restore without a matching save in {name} "
                        f"(depth {depth})", pc=effect.pc,
                        symbol=cfg.nearest_symbol(effect.pc))
                    depth = 0  # damp to avoid cascading reports
        if block.is_return and depth != 0:
            # ``ret; restore`` keeps the restore in the delay slot, so
            # a conventional function body nets to zero here.
            report.error(
                "window-imbalance",
                f"{name} returns with net window depth {depth:+d}",
                pc=block.instructions[-1].pc,
                symbol=cfg.nearest_symbol(block.start))
        for succ in block.successors:
            if succ not in index:
                continue
            if succ not in depth_in:
                depth_in[succ] = depth
                worklist.append(succ)
            elif depth_in[succ] != depth:
                report.error(
                    "window-imbalance",
                    f"paths merge at 0x{succ:08x} with window depths "
                    f"{depth_in[succ]} and {depth}", pc=succ,
                    symbol=cfg.nearest_symbol(succ))


def _check_memory_ops(cfg: ControlFlowGraph,
                      report: DiagnosticReport) -> None:
    """Alignment of statically-known addresses + register-pair parity.

    Constants are propagated per block only (sethi/or/add chains, the
    idiom ``set`` expands to), so anything computed is simply unknown —
    the check never guesses.
    """
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        known: dict[int, int] = {0: 0}  # %g0
        for instr in block.executed():
            inst = instr.inst
            if instr.is_memory:
                op3 = Op3Mem(inst.op3)
                width = MEM_WIDTHS.get(op3, 4)
                if op3 in (Op3Mem.LDD, Op3Mem.LDDA, Op3Mem.STD,
                           Op3Mem.STDA) and inst.rd & 1:
                    report.error(
                        "odd-register-pair",
                        f"{op3.name.lower()} with odd register %r{inst.rd}",
                        pc=instr.pc, symbol=cfg.nearest_symbol(instr.pc))
                addr = _known_address(inst, known)
                if addr is not None and width > 1 and addr % width:
                    report.error(
                        "misaligned-mem",
                        f"{op3.name.lower()} of width {width} at address "
                        f"0x{addr:08x}", pc=instr.pc,
                        symbol=cfg.nearest_symbol(instr.pc))
            _propagate_const(instr, known)


def _known_address(inst, known: dict[int, int]) -> int | None:
    if inst.rs1 not in known:
        return None
    base = known[inst.rs1]
    if inst.imm:
        return u32(base + inst.simm13)
    if inst.rs2 in known:
        return u32(base + known[inst.rs2])
    return None


def _propagate_const(instr: Instruction, known: dict[int, int]) -> None:
    """Update the per-block constant map across one instruction."""
    inst = instr.inst
    if instr.kind == InstrKind.SETHI:
        if inst.rd != 0:
            known[inst.rd] = u32(inst.imm22 << 10)
        return
    if instr.kind == InstrKind.ALU:
        op3 = Op3(inst.op3)
        src1 = known.get(inst.rs1)
        src2 = inst.simm13 if inst.imm else known.get(inst.rs2)
        value: int | None = None
        if src1 is not None and src2 is not None:
            if op3 == Op3.OR:
                value = u32(src1 | src2)
            elif op3 == Op3.ADD:
                value = u32(src1 + src2)
            elif op3 == Op3.SUB:
                value = u32(src1 - src2)
        if inst.rd != 0:
            if value is not None:
                known[inst.rd] = value
            else:
                known.pop(inst.rd, None)
        return
    if instr.kind in (InstrKind.LOAD, InstrKind.ATOMIC,
                      InstrKind.JMPL, InstrKind.READ_STATE,
                      InstrKind.CUSTOM):
        known.pop(inst.rd, None)
        if instr.kind in (InstrKind.LOAD, InstrKind.ATOMIC) and \
                Op3Mem(inst.op3) in (Op3Mem.LDD, Op3Mem.LDDA):
            known.pop(inst.rd | 1, None)
        return
    if instr.kind in (InstrKind.SAVE, InstrKind.RESTORE,
                      InstrKind.CALL):
        # Window rotation / callee clobber: forget everything but %g0.
        known.clear()
        known[0] = 0


__all__ = [
    "DEFAULT_ALLOW",
    "FunctionAnalysis",
    "ProgramAnalysis",
    "analyze_image",
    "verify_image",
]
