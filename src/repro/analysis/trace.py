"""Execution-trace capture.

"The high-speed network facilitates ... the streaming of instrumented
traces to the Trace Analyzer."  The recorder hooks the data-cache
controller's access callback and accumulates (address, size, is_write,
hit) tuples in Python lists, converting to NumPy arrays on demand —
append-to-list then vectorize is the cheap pattern for
build-once/analyze-many data (per the scientific-Python optimization
guidance this project follows: profile first, vectorize the analysis,
keep the capture path trivial).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MemoryTrace:
    """Immutable columnar trace of data-memory references."""

    addresses: np.ndarray   # uint64
    sizes: np.ndarray       # uint8
    is_write: np.ndarray    # bool
    hit: np.ndarray         # bool (as observed under the capture config)

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def reads(self) -> "MemoryTrace":
        return self.filter(~self.is_write)

    @property
    def writes(self) -> "MemoryTrace":
        return self.filter(self.is_write)

    def filter(self, mask: np.ndarray) -> "MemoryTrace":
        return MemoryTrace(self.addresses[mask], self.sizes[mask],
                           self.is_write[mask], self.hit[mask])

    def lines(self, line_size: int) -> np.ndarray:
        """Cache-line addresses for a given line size (vectorized)."""
        return self.addresses & ~np.uint64(line_size - 1)

    def to_bytes(self) -> bytes:
        """Serialize for 'streaming off the FPX' (tests round-trip this)."""
        header = np.array([len(self.addresses)], dtype="<u8").tobytes()
        return (header
                + self.addresses.astype("<u8").tobytes()
                + self.sizes.astype("u1").tobytes()
                + self.is_write.astype("u1").tobytes()
                + self.hit.astype("u1").tobytes())

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MemoryTrace":
        count = int(np.frombuffer(blob[:8], dtype="<u8")[0])
        offset = 8
        addresses = np.frombuffer(blob[offset:offset + 8 * count],
                                  dtype="<u8").copy()
        offset += 8 * count
        sizes = np.frombuffer(blob[offset:offset + count], dtype="u1").copy()
        offset += count
        is_write = np.frombuffer(blob[offset:offset + count],
                                 dtype="u1").astype(bool)
        offset += count
        hit = np.frombuffer(blob[offset:offset + count],
                            dtype="u1").astype(bool)
        return cls(addresses, sizes, is_write, hit)


class TraceRecorder:
    """Attachable recorder for a CacheController's ``on_access`` hook."""

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self._addresses: list[int] = []
        self._sizes: list[int] = []
        self._writes: list[bool] = []
        self._hits: list[bool] = []
        self.dropped = 0

    def __call__(self, address: int, size: int, is_write: bool,
                 hit: bool) -> None:
        if self.limit is not None and len(self._addresses) >= self.limit:
            self.dropped += 1
            return
        self._addresses.append(address)
        self._sizes.append(size)
        self._writes.append(is_write)
        self._hits.append(hit)

    def __len__(self) -> int:
        return len(self._addresses)

    def trace(self) -> MemoryTrace:
        return MemoryTrace(
            addresses=np.asarray(self._addresses, dtype=np.uint64),
            sizes=np.asarray(self._sizes, dtype=np.uint8),
            is_write=np.asarray(self._writes, dtype=bool),
            hit=np.asarray(self._hits, dtype=bool),
        )

    def attach(self, controller) -> "TraceRecorder":
        controller.on_access = self
        return self

    def clear(self) -> None:
        self._addresses.clear()
        self._sizes.clear()
        self._writes.clear()
        self._hits.clear()
        self.dropped = 0
