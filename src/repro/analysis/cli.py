"""``repro-analyze`` — run the machine-code verifier from the shell.

Targets are workload registry names (or ``all``); each target's linked
image goes through the full verifier, and optionally the MAC fusion
legality scan.  Exit status is 0 iff every report is free of
(non-allowlisted) errors, which is exactly what the CI lint job keys
on.

Examples::

    repro-analyze xtea
    repro-analyze all --json -o analysis-report.json
    repro-analyze fir --sites --allow unknown-opcode
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.legality import legal_sites
from repro.analysis.verify import analyze_image


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static analysis over linked workload images.")
    parser.add_argument(
        "targets", nargs="*", default=["all"],
        help="workload names from the registry, or 'all' (default)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="input seed for workload generation (default: registry "
             "default)")
    parser.add_argument(
        "--allow", action="append", default=[], metavar="CODE",
        help="diagnostic code to allowlist (repeatable); allowlisted "
             "errors do not affect the exit status")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the combined report as canonical JSON")
    parser.add_argument(
        "--sites", action="store_true",
        help="also scan for MAC fusion candidates and print each "
             "site's legality verdict")
    parser.add_argument(
        "--errors-only", action="store_true",
        help="suppress warnings in the text rendering")
    parser.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="also write the JSON report to FILE (the CI artifact)")
    parser.add_argument(
        "--list", action="store_true", dest="list_targets",
        help="list available workload targets and exit")
    return parser


def _resolve_targets(names: list[str]):
    # Imported lazily so `repro-analyze --help` stays fast.
    from repro.workloads import all_workloads, get
    if names == ["all"] or "all" in names:
        return list(all_workloads())
    workloads = []
    for name in names:
        try:
            workloads.append(get(name))
        except KeyError:
            known = ", ".join(w.name for w in all_workloads())
            raise SystemExit(
                f"repro-analyze: unknown workload '{name}' "
                f"(known: {known})")
    return workloads


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_targets:
        from repro.workloads import all_workloads
        for wl in all_workloads():
            print(f"{wl.name:12s} {wl.wclass}")
        return 0

    allow = frozenset(args.allow)
    workloads = _resolve_targets(list(args.targets))
    combined: list[dict] = []
    ok = True
    from repro.workloads import DEFAULT_SEED
    for wl in workloads:
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        image = wl.image(seed)
        analysis = analyze_image(image, subject=wl.name)
        report = analysis.report
        entry = report.to_dict()
        entry["seed"] = seed
        entry["ok"] = report.ok(allow)
        if args.sites:
            sites = legal_sites(image)
            entry["sites"] = [
                {"start": r.candidate.start, "ok": r.ok,
                 "reasons": list(r.reasons)} for r in sites]
        combined.append(entry)
        ok = ok and report.ok(allow)

        if not args.json:
            shown = report
            if args.errors_only:
                shown = type(report)(report.errors, subject=report.subject)
            print(shown.render_text())
            if args.sites:
                for result in sites:
                    print(f"  {result.render()}")

    payload = {"ok": ok, "allow": sorted(allow), "reports": combined}
    text = json.dumps(payload, sort_keys=True, indent=2)
    if args.json:
        print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
