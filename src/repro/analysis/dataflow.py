"""Dataflow engine over recovered CFGs.

A small worklist solver (:func:`solve`) parameterized by a
:class:`DataflowProblem` — direction, meet, per-block transfer —
instantiated here for the three analyses the verifier and the rewriter
legality checker need:

* :class:`Liveness` (backward, may): which locations may still be read;
* :class:`DefinedRegisters` (forward, must): definitely-written
  locations, for use-before-write findings;
* :class:`ReachingDefinitions` (forward, may) and the derived
  :func:`def_use_chains`.

**Locations** are the 32 integer registers *of the current window*
(``%g0``–``%i7`` = 0–31) plus ``%y`` (32) and the integer condition
codes (33), packed into bitmask ints.  The model is window-aware:
``save`` and ``restore`` are not plain defs but *renamings* — across a
``save`` the new window's ``%i`` registers alias the old window's
``%o`` registers while ``%l``/``%o`` become fresh, and ``restore``
inverts the mapping.  Every transfer function routes through
:func:`shift_across_save` / :func:`shift_across_restore` so liveness
and reaching facts survive register-window rotation, which is exactly
what the paper's custom-instruction fusion needs to reason about
SPARC calling conventions.

Delay slots arrive pre-linearized by :func:`block_effects`: the CTI's
own effect is ordered before its delay slot (the branch reads the
condition codes before the slot executes), a call contributes its
``%o7`` write, then the slot, then a clobber summarizing the callee.
An annulled conditional delay slot is a *may*-effect: its uses count,
its kills do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.analysis.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Instruction,
    InstrKind,
)
from repro.cpu.isa import Cond, Op3, Op3Mem

# -- location numbering -----------------------------------------------------

REG_Y = 32
REG_ICC = 33
NUM_LOCATIONS = 34

LOCATION_NAMES = (
    [f"%g{i}" for i in range(8)] + [f"%o{i}" for i in range(8)]
    + [f"%l{i}" for i in range(8)] + [f"%i{i}" for i in range(8)]
    + ["%y", "%icc"]
)


_REG_ALIASES = {"%sp": 14, "%fp": 30}
_REG_BANKS = {"g": 0, "o": 8, "l": 16, "i": 24}


def reg_number(name: str) -> int:
    """``%o3`` -> location 11 (aliases ``%sp``/``%fp``/``%y`` included)."""
    name = name.lower()
    if name in _REG_ALIASES:
        return _REG_ALIASES[name]
    if name == "%y":
        return REG_Y
    if len(name) == 3 and name[0] == "%" and name[1] in _REG_BANKS \
            and name[2].isdigit() and int(name[2]) < 8:
        return _REG_BANKS[name[1]] + int(name[2])
    raise ValueError(f"not an integer register: {name!r}")


def bit(loc: int) -> int:
    return 1 << loc


def mask_of(locs: Iterable[int]) -> int:
    value = 0
    for loc in locs:
        value |= 1 << loc
    return value


def locations(mask: int) -> list[int]:
    return [loc for loc in range(NUM_LOCATIONS) if mask >> loc & 1]


def names(mask: int) -> list[str]:
    return [LOCATION_NAMES[loc] for loc in locations(mask)]


GLOBALS_MASK = mask_of(range(0, 8))
OUTS_MASK = mask_of(range(8, 16))
LOCALS_MASK = mask_of(range(16, 24))
INS_MASK = mask_of(range(24, 32))
#: Locations unaffected by window rotation.
WINDOW_INVARIANT = GLOBALS_MASK | bit(REG_Y) | bit(REG_ICC)

#: Conservative summary of a call's effect on the caller's window:
#: the callee may read incoming arguments, the stack/frame pointers and
#: the globals; it may clobber the globals, the out-args and ``%o7``
#: and returns its value in ``%o0``/``%o1``.
CALL_USES = (GLOBALS_MASK & ~bit(0)) | mask_of(range(8, 15))
CALL_DEFS = (GLOBALS_MASK & ~bit(0)) | mask_of(range(8, 14)) | bit(15)

#: What a returning function must leave intact: the caller's view after
#: ``ret; restore`` — return value, preserved globals, stack linkage.
EXIT_LIVE = GLOBALS_MASK | OUTS_MASK | INS_MASK

#: Defined at a function's entry before its ``save``: globals, incoming
#: arguments / stack pointer / return address in the %o registers.
ENTRY_DEFINED = GLOBALS_MASK | OUTS_MASK


def shift_across_save(mask: int) -> int:
    """Rename a fact-mask across ``save`` (old window -> new window).

    The new window's ``%i[k]`` is the old window's ``%o[k]``; locals
    and outs of the new window carry no pre-save facts.
    """
    return (mask & WINDOW_INVARIANT) | ((mask & OUTS_MASK) << 16)


def shift_across_restore(mask: int) -> int:
    """Rename a fact-mask across ``restore`` (callee -> caller window)."""
    return (mask & WINDOW_INVARIANT) | ((mask & INS_MASK) >> 16)


def unshift_save(mask: int) -> int:
    """Inverse renaming: new-window facts back into the old window
    (used by backward analyses walking up through ``save``)."""
    return (mask & WINDOW_INVARIANT) | ((mask & INS_MASK) >> 16)


def unshift_restore(mask: int) -> int:
    """Inverse renaming for ``restore`` in backward analyses."""
    return (mask & WINDOW_INVARIANT) | ((mask & OUTS_MASK) << 16)


# -- per-instruction effects ------------------------------------------------


@dataclass(frozen=True)
class Effect:
    """Uses/defs of one executed step, in current-window terms.

    ``window`` is +1 for ``save``, -1 for ``restore`` (the renaming is
    applied around the plain uses/defs).  ``may`` marks effects that
    execute only on some dynamic condition (annulled conditional delay
    slots): their uses count for liveness, their defs never kill.
    """

    pc: int
    uses: int
    defs: int
    window: int = 0
    may: bool = False
    instr: Instruction | None = None


def _reg_uses(inst) -> int:
    uses = bit(inst.rs1)
    if not inst.imm:
        uses |= bit(inst.rs2)
    return uses


def instruction_effect(instr: Instruction) -> Effect:
    """Uses/defs of one instruction (CALL: its own ``%o7`` write only —
    the callee summary is a separate effect)."""
    inst = instr.inst
    kind = instr.kind
    uses = 0
    defs = 0
    window = 0
    if kind == InstrKind.ALU:
        op3 = Op3(inst.op3)
        uses = _reg_uses(inst)
        if inst.rd != 0:
            defs |= bit(inst.rd)
        if op3 in (Op3.ADDX, Op3.ADDXCC, Op3.SUBX, Op3.SUBXCC):
            uses |= bit(REG_ICC)
        if op3 in (Op3.UDIV, Op3.UDIVCC, Op3.SDIV, Op3.SDIVCC):
            uses |= bit(REG_Y)
        if op3 in (Op3.UMUL, Op3.UMULCC, Op3.SMUL, Op3.SMULCC):
            defs |= bit(REG_Y)
        if op3 == Op3.MULSCC:
            uses |= bit(REG_Y) | bit(REG_ICC)
            defs |= bit(REG_Y) | bit(REG_ICC)
        if op3.name.endswith("CC"):
            defs |= bit(REG_ICC)
    elif kind == InstrKind.SETHI:
        if inst.rd != 0:
            defs = bit(inst.rd)
    elif kind == InstrKind.BRANCH:
        if Cond(inst.cond) not in (Cond.A, Cond.N):
            uses = bit(REG_ICC)
    elif kind == InstrKind.CALL:
        defs = bit(15)  # %o7
    elif kind == InstrKind.JMPL:
        uses = _reg_uses(inst)
        if inst.rd != 0:
            defs = bit(inst.rd)
    elif kind == InstrKind.RETT:
        uses = _reg_uses(inst)
    elif kind == InstrKind.TICC:
        uses = _reg_uses(inst)
        if Cond(inst.cond) not in (Cond.A, Cond.N):
            uses |= bit(REG_ICC)
    elif kind == InstrKind.LOAD:
        op3 = Op3Mem(inst.op3)
        uses = _reg_uses(inst)
        if inst.rd != 0:
            defs = bit(inst.rd)
        if op3 in (Op3Mem.LDD, Op3Mem.LDDA):
            defs |= bit(inst.rd | 1)
    elif kind == InstrKind.STORE:
        op3 = Op3Mem(inst.op3)
        uses = _reg_uses(inst) | bit(inst.rd)
        if op3 in (Op3Mem.STD, Op3Mem.STDA):
            uses |= bit(inst.rd | 1)
    elif kind == InstrKind.ATOMIC:
        uses = _reg_uses(inst) | bit(inst.rd)
        if inst.rd != 0:
            defs = bit(inst.rd)
    elif kind == InstrKind.READ_STATE:
        op3 = Op3(inst.op3)
        if op3 == Op3.RDASR and inst.rs1 == 0:
            uses = bit(REG_Y)
        elif op3 == Op3.RDPSR:
            uses = bit(REG_ICC)
        if inst.rd != 0:
            defs = bit(inst.rd)
    elif kind == InstrKind.WRITE_STATE:
        op3 = Op3(inst.op3)
        uses = _reg_uses(inst)
        if op3 == Op3.WRASR and inst.rd == 0:
            defs = bit(REG_Y)
        elif op3 == Op3.WRPSR:
            defs = bit(REG_ICC)
    elif kind == InstrKind.SAVE:
        uses = _reg_uses(inst)  # read in the *old* window
        if inst.rd != 0:
            defs = bit(inst.rd)  # written in the *new* window
        window = 1
    elif kind == InstrKind.RESTORE:
        uses = _reg_uses(inst)
        if inst.rd != 0:
            defs = bit(inst.rd)
        window = -1
    elif kind == InstrKind.FLUSH:
        uses = _reg_uses(inst)
    elif kind == InstrKind.CUSTOM:
        # A custom accelerator may fold an accumulator: it reads both
        # sources *and* the destination (the MAC recipe does).
        uses = bit(inst.rs1) | bit(inst.rs2) | bit(inst.rd)
        if inst.rd != 0:
            defs = bit(inst.rd)
    # UNKNOWN / UNIMP: no modeled effect (diagnosed separately).
    return Effect(pc=instr.pc, uses=uses, defs=defs, window=window,
                  instr=instr)


def block_effects(block: BasicBlock) -> list[Effect]:
    """The block's executed steps in dynamic order.

    Reorders the delay slot where needed, drops annulled-never slots,
    marks annulled-conditional slots as *may*, and expands calls into
    ``%o7``-write → delay slot → callee-summary clobber.
    """
    instrs = [i for i in block.instructions if i.pc not in block.annulled]
    effects: list[Effect] = []
    call_pc: int | None = None
    for instr in instrs:
        effect = instruction_effect(instr)
        if instr.pc == block.conditional_slot:
            effect = Effect(pc=effect.pc, uses=effect.uses,
                            defs=effect.defs, window=effect.window,
                            may=True, instr=instr)
        effects.append(effect)
        if instr.kind == InstrKind.CALL or (
                instr.kind == InstrKind.JMPL and instr.inst.rd == 15):
            call_pc = instr.pc
    if call_pc is not None and block.terminator == "call":
        effects.append(Effect(pc=call_pc, uses=CALL_USES, defs=CALL_DEFS))
    return effects


# ---------------------------------------------------------------------------
# The worklist solver
# ---------------------------------------------------------------------------


class DataflowProblem(Protocol):
    """What :func:`solve` needs: direction, lattice ops, transfer."""

    direction: str  # 'forward' | 'backward'

    def boundary(self, block: BasicBlock) -> object:
        """State at the graph boundary (entry state for forward
        problems, exit state for backward ones)."""
        ...

    def top(self) -> object:
        """Initial optimistic state for non-boundary blocks."""
        ...

    def meet(self, states: list[object]) -> object:
        ...

    def transfer(self, block: BasicBlock, state: object) -> object:
        ...


def solve(blocks: list[BasicBlock], problem: DataflowProblem,
          entry: int | None = None) -> dict[int, tuple[object, object]]:
    """Iterate *problem* to a fixpoint over *blocks*.

    Returns ``block start -> (state_in, state_out)`` where ``state_in``
    is at the block's entry and ``state_out`` at its exit, regardless
    of direction.  *entry* names the function's entry block for forward
    problems (defaults to the first block).
    """
    if not blocks:
        return {}
    index = {b.start: b for b in blocks}
    forward = problem.direction == "forward"
    if entry is None or entry not in index:
        entry = blocks[0].start
    preds = {b.start: [p for p in b.predecessors if p in index]
             for b in blocks}
    succs = {b.start: [s for s in b.successors if s in index]
             for b in blocks}
    sources = preds if forward else succs
    inputs: dict[int, object] = {}
    outputs: dict[int, object] = {}
    for b in blocks:
        inputs[b.start] = problem.top()
        outputs[b.start] = problem.top()
    worklist = [b.start for b in (blocks if forward else reversed(blocks))]
    pending = set(worklist)
    while worklist:
        start = worklist.pop(0)
        pending.discard(start)
        block = index[start]
        states = [outputs[src] for src in sources[start]]
        # Boundary blocks (the entry for forward problems, exits for
        # backward ones) meet the boundary value in as well — a loop
        # edge back to the entry must not wash it out.
        if (forward and start == entry) or \
                (not forward and not succs[start]):
            states.append(problem.boundary(block))
        incoming = problem.meet(states) if states else problem.top()
        inputs[start] = incoming
        new_out = problem.transfer(block, incoming)
        if new_out != outputs[start]:
            outputs[start] = new_out
            for nxt in (succs[start] if forward else preds[start]):
                if nxt not in pending:
                    pending.add(nxt)
                    worklist.append(nxt)
    if forward:
        return {s: (inputs[s], outputs[s]) for s in inputs}
    # Backward: inputs hold the exit-side state.
    return {s: (outputs[s], inputs[s]) for s in inputs}


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------


class Liveness:
    """Backward may-analysis: which locations may be read later."""

    direction = "backward"

    def __init__(self, exit_live: int = EXIT_LIVE):
        self.exit_live = exit_live

    def boundary(self, block: BasicBlock) -> int:
        return self.exit_live

    def top(self) -> int:
        return 0

    def meet(self, states: list[int]) -> int:
        value = 0
        for state in states:
            value |= state
        return value

    def transfer(self, block: BasicBlock, live_out: int) -> int:
        live = live_out
        for effect in reversed(block_effects(block)):
            live = self.step(effect, live)
        return live

    @staticmethod
    def step(effect: Effect, live_after: int) -> int:
        """Live-before of one effect given live-after."""
        live = live_after
        if not effect.may:
            live &= ~effect.defs
        if effect.window == 1:
            live = unshift_save(live)
        elif effect.window == -1:
            live = unshift_restore(live)
        live |= effect.uses
        live &= ~bit(0)  # %g0 is never live
        return live


class DefinedRegisters:
    """Forward must-analysis: locations definitely written on every
    path from the function entry (use-before-write findings)."""

    direction = "forward"
    ALL = (1 << NUM_LOCATIONS) - 1

    def __init__(self, entry_defined: int = ENTRY_DEFINED):
        self.entry_defined = entry_defined | bit(0)

    def boundary(self, block: BasicBlock) -> int:
        return self.entry_defined

    def top(self) -> int:
        return self.ALL

    def meet(self, states: list[int]) -> int:
        value = self.ALL
        for state in states:
            value &= state
        return value

    def transfer(self, block: BasicBlock, defined_in: int) -> int:
        defined = defined_in
        for effect in block_effects(block):
            defined = self.step(effect, defined)
        return defined

    @staticmethod
    def step(effect: Effect, defined: int) -> int:
        if effect.window == 1:
            defined = shift_across_save(defined) | bit(0)
        elif effect.window == -1:
            defined = shift_across_restore(defined) | bit(0)
        if not effect.may:
            defined |= effect.defs
        return defined


class ReachingDefinitions:
    """Forward may-analysis tracking *which* instruction last wrote
    each location.  States map location -> frozenset of def PCs; the
    pseudo-PC ``ENTRY`` marks values provided by the environment."""

    direction = "forward"
    ENTRY = -1

    def __init__(self, entry_defined: int = ENTRY_DEFINED):
        self.entry_defined = entry_defined | bit(0)

    def boundary(self, block: BasicBlock) -> dict:
        return {loc: frozenset({self.ENTRY})
                for loc in locations(self.entry_defined)}

    def top(self) -> dict:
        return {}

    def meet(self, states: list[dict]) -> dict:
        merged: dict[int, frozenset] = {}
        for state in states:
            for loc, defs in state.items():
                merged[loc] = merged.get(loc, frozenset()) | defs
        return merged

    def transfer(self, block: BasicBlock, state_in: dict) -> dict:
        state = dict(state_in)
        for effect in block_effects(block):
            state = self.step(effect, state)
        return state

    @staticmethod
    def step(effect: Effect, state: dict) -> dict:
        if effect.window != 0:
            renamed: dict[int, frozenset] = {}
            for loc, defs in state.items():
                mask = bit(loc)
                shifted = (shift_across_save(mask) if effect.window == 1
                           else shift_across_restore(mask))
                if shifted:
                    for new_loc in locations(shifted):
                        renamed[new_loc] = renamed.get(
                            new_loc, frozenset()) | defs
            state = renamed
        else:
            state = dict(state)
        for loc in locations(effect.defs):
            if effect.may:
                state[loc] = state.get(loc, frozenset()) | {effect.pc}
            else:
                state[loc] = frozenset({effect.pc})
        return state


def def_use_chains(blocks: list[BasicBlock],
                   reaching: dict[int, tuple[dict, dict]]
                   ) -> dict[int, set[int]]:
    """``def PC -> set of use PCs`` derived from reaching definitions.

    Walks every block forward replaying the transfer so each use sees
    exactly the defs that reach it.
    """
    chains: dict[int, set[int]] = {}
    for block in blocks:
        state = reaching[block.start][0]
        for effect in block_effects(block):
            for loc in locations(effect.uses):
                for def_pc in state.get(loc, frozenset()):
                    if def_pc >= 0:
                        chains.setdefault(def_pc, set()).add(effect.pc)
            state = ReachingDefinitions.step(effect, state)
    return chains


def live_after_map(blocks: list[BasicBlock],
                   liveness: dict[int, tuple[int, int]]
                   ) -> dict[int, int]:
    """Per-effect liveness: ``PC -> live-after mask``.

    For a delay slot the map answers for the *slot's own* effect; for a
    call PC it answers for the point after the callee-summary clobber.
    """
    result: dict[int, int] = {}
    for block in blocks:
        live = liveness[block.start][1]  # live-out of the block
        for effect in reversed(block_effects(block)):
            # Later effects at the same PC (call clobber) win: iterate
            # backward and only record the first (latest) one.
            if effect.pc not in result:
                result[effect.pc] = live
            live = Liveness.step(effect, live)
    return result


def analyze_function(cfg: ControlFlowGraph, entry: int) -> "FunctionDataflow":
    """Run all three analyses over one function."""
    blocks = cfg.function_blocks(entry)
    liveness = solve(blocks, Liveness(), entry=entry)
    defined = solve(blocks, DefinedRegisters(), entry=entry)
    reaching = solve(blocks, ReachingDefinitions(), entry=entry)
    return FunctionDataflow(entry=entry, blocks=blocks, liveness=liveness,
                            defined=defined, reaching=reaching,
                            chains=def_use_chains(blocks, reaching),
                            live_after=live_after_map(blocks, liveness))


@dataclass
class FunctionDataflow:
    """Solved dataflow facts for one function."""

    entry: int
    blocks: list[BasicBlock]
    liveness: dict[int, tuple[int, int]]
    defined: dict[int, tuple[int, int]]
    reaching: dict[int, tuple[dict, dict]]
    chains: dict[int, set[int]]
    live_after: dict[int, int]

    def block_of(self, pc: int) -> BasicBlock | None:
        for block in self.blocks:
            if block.start <= pc < block.end:
                return block
        return None

    def uses_of(self, def_pc: int) -> set[int]:
        return self.chains.get(def_pc, set())


__all__ = [
    "CALL_DEFS",
    "CALL_USES",
    "DefinedRegisters",
    "Effect",
    "ENTRY_DEFINED",
    "EXIT_LIVE",
    "FunctionDataflow",
    "GLOBALS_MASK",
    "INS_MASK",
    "LOCALS_MASK",
    "LOCATION_NAMES",
    "Liveness",
    "NUM_LOCATIONS",
    "OUTS_MASK",
    "REG_ICC",
    "REG_Y",
    "ReachingDefinitions",
    "analyze_function",
    "bit",
    "block_effects",
    "def_use_chains",
    "instruction_effect",
    "live_after_map",
    "locations",
    "mask_of",
    "names",
    "reg_number",
    "shift_across_save",
    "shift_across_restore",
    "solve",
]
