"""Vectorized trace reductions used by the Trace Analyzer.

Everything here is NumPy array code over :class:`MemoryTrace` columns —
the analysis side is where the data is large (millions of references),
so this module follows the HPC guide's advice: no Python-level loops
over references, work on whole columns, and reuse views instead of
copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trace import MemoryTrace


def working_set_bytes(trace: MemoryTrace, line_size: int = 32) -> int:
    """Total bytes of distinct cache lines touched."""
    if len(trace) == 0:
        return 0
    return int(len(np.unique(trace.lines(line_size))) * line_size)


def footprint_histogram(trace: MemoryTrace, line_size: int = 32,
                        top: int = 16) -> list[tuple[int, int]]:
    """Most-touched lines as (line_address, touches), descending."""
    if len(trace) == 0:
        return []
    lines, counts = np.unique(trace.lines(line_size), return_counts=True)
    order = np.argsort(counts)[::-1][:top]
    return [(int(lines[i]), int(counts[i])) for i in order]


def stride_profile(trace: MemoryTrace, top: int = 8) -> list[tuple[int, int]]:
    """Dominant address strides between consecutive references.

    A strong constant stride is the trace analyzer's cue to recommend a
    prefetch unit ("alternative memory structure (such as a prefetch
    unit)", paper §1).
    """
    if len(trace) < 2:
        return []
    deltas = np.diff(trace.addresses.astype(np.int64))
    strides, counts = np.unique(deltas, return_counts=True)
    order = np.argsort(counts)[::-1][:top]
    return [(int(strides[i]), int(counts[i])) for i in order]


def observed_miss_rate(trace: MemoryTrace) -> float:
    """Miss rate as captured (under the capture-time configuration)."""
    if len(trace) == 0:
        return 0.0
    return float(np.mean(~trace.hit))


def reuse_distances(trace: MemoryTrace, line_size: int = 32,
                    sample_limit: int = 200_000) -> np.ndarray:
    """Line-granular reuse distances (number of *distinct* lines touched
    between consecutive uses of the same line) — the classic stack
    distance, O(N·U) worst case, so the trace is subsampled beyond
    *sample_limit* references."""
    lines = trace.lines(line_size)
    if len(lines) > sample_limit:
        step = len(lines) // sample_limit + 1
        lines = lines[::step]
    last_seen: dict[int, int] = {}
    stack: list[int] = []
    distances = []
    for position, line in enumerate(lines.tolist()):
        if line in last_seen:
            # Distance = distinct lines since last touch.
            since = stack[last_seen[line] + 1:]
            distances.append(len(set(since)))
        last_seen[line] = position
        stack.append(line)
    return np.asarray(distances, dtype=np.int64)


@dataclass(frozen=True)
class MissCurvePoint:
    cache_bytes: int
    miss_rate: float
    misses: int
    references: int


def simulate_miss_curve(trace: MemoryTrace, cache_sizes: list[int],
                        line_size: int = 32, ways: int = 1
                        ) -> list[MissCurvePoint]:
    """Offline cache simulation of the trace at several sizes.

    This is the Trace Analyzer's core trick: one captured trace answers
    "what would the miss rate be at size S?" for every S, *without*
    re-running the program — exactly the loop the paper's Figure 1 draws
    from the FPX back into the Architecture Generator.

    Direct-mapped simulation is fully vectorized over the trace; the
    set-associative path falls back to a dict-based LRU walk.
    """
    points = []
    for size in cache_sizes:
        if ways == 1:
            misses = _direct_mapped_misses(trace, size, line_size)
        else:
            misses = _assoc_misses(trace, size, line_size, ways)
        references = len(trace)
        rate = misses / references if references else 0.0
        points.append(MissCurvePoint(size, rate, misses, references))
    return points


def _direct_mapped_misses(trace: MemoryTrace, size: int,
                          line_size: int) -> int:
    """Vectorized direct-mapped miss count (write-through/no-allocate:
    writes never fill, so misses are counted over reads; writes update
    nothing in the tag store)."""
    reads = ~trace.is_write
    lines = (trace.addresses[reads] // np.uint64(line_size)).astype(np.int64)
    if len(lines) == 0:
        return 0
    sets = size // line_size
    indices = lines % sets
    # A read misses when the previous occupant of its set differs.
    # Group by set: stable sort by index, then compare neighbours.
    order = np.argsort(indices, kind="stable")
    sorted_index = indices[order]
    sorted_line = lines[order]
    same_set = np.empty(len(lines), dtype=bool)
    same_set[0] = False
    same_set[1:] = sorted_index[1:] == sorted_index[:-1]
    same_line = np.empty(len(lines), dtype=bool)
    same_line[0] = False
    same_line[1:] = sorted_line[1:] == sorted_line[:-1]
    hits = same_set & same_line
    return int(len(lines) - hits.sum())


def _assoc_misses(trace: MemoryTrace, size: int, line_size: int,
                  ways: int) -> int:
    reads = ~trace.is_write
    lines = (trace.addresses[reads] // np.uint64(line_size)).astype(np.int64)
    sets = size // (line_size * ways)
    state: dict[int, list[int]] = {}
    misses = 0
    for line in lines.tolist():
        index = line % sets
        resident = state.setdefault(index, [])
        if line in resident:
            resident.remove(line)
            resident.append(line)  # LRU refresh
        else:
            misses += 1
            resident.append(line)
            if len(resident) > ways:
                resident.pop(0)
    return misses
