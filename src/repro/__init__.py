"""Liquid Architecture reproduction.

A Python implementation of the system described in "Liquid Architecture"
(Jones, Padmanabhan, Rymarz, Maschmeyer, Schuehler, Lockwood, Cytron;
Washington University in St. Louis, 2004): the LEON2 SPARC V8 soft core
integrated into the FPX reconfigurable network platform, with remote
program loading/execution over UDP and a reconfiguration-cache workflow
for tuning micro-architecture (cache geometry, multiplier, custom
instructions) per application.

Top-level convenience re-exports cover the public API surface; see the
subpackages for the full system:

* :mod:`repro.core` -- the liquid-architecture contribution
* :mod:`repro.cpu`, :mod:`repro.cache`, :mod:`repro.bus`, :mod:`repro.mem`,
  :mod:`repro.peripherals` -- the LEON2 processor system
* :mod:`repro.fpx`, :mod:`repro.net` -- the FPX platform and its protocols
* :mod:`repro.toolchain` -- the cross-compiler flow
* :mod:`repro.control` -- the web/UDP control software
"""

__version__ = "1.0.0"
