"""AMBA AHB model — the LEON2 backbone bus (paper §2.4).

The paper observes that LEON only exercises a small part of the AHB
protocol: SINGLE and INCR bursts, transfer sizes ≤ 32 bits, and no SPLIT
transfers.  The model implements exactly that subset, at transaction level
with cycle accounting: one address cycle per transfer (pipelined into the
previous data cycle for bursts), one data cycle per beat, plus slave wait
states.  HRESP=ERROR surfaces as :class:`repro.mem.interface.BusError`.

Slaves implement ``read(address, size) -> (value, wait_states)`` and
``write(address, size, value) -> wait_states``; a slave that can service
sequential bursts natively (the SDRAM adapter) additionally provides
``read_burst(address, nwords) -> (words, wait_states_total)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.mem.interface import BusError


class AhbSlave(Protocol):
    """Anything mappable onto the AHB."""

    def read(self, address: int, size: int) -> tuple[int, int]: ...

    def write(self, address: int, size: int, value: int) -> int: ...


@dataclass
class _Mapping:
    base: int
    size: int
    slave: AhbSlave
    name: str

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


@dataclass
class AhbConfig:
    """Bus cost parameters.

    ``address_cycles`` is the non-overlapped address phase of the *first*
    transfer of a burst (subsequent beats pipeline their address phase).
    ``arbitration_cycles`` models the single-cycle grant when another
    master held the bus; the Liquid system has two masters (LEON and the
    leon_ctrl/CPP loader) but they are active in disjoint phases, so the
    default charge is the uncontended one.
    """

    address_cycles: int = 1
    arbitration_cycles: int = 0
    max_burst_words: int = 256  # AHB allows unspecified-length INCR


class AhbBus:
    """Address decoder + cycle accountant for the AHB."""

    def __init__(self, config: AhbConfig | None = None):
        self.config = config or AhbConfig()
        self._map: list[_Mapping] = []
        self.transfers = 0
        self.burst_transfers = 0
        self.data_beats = 0
        self.wait_states = 0
        self.error_count = 0

    # -- topology ------------------------------------------------------------

    def attach(self, slave: AhbSlave, base: int, size: int,
               name: str = "") -> None:
        """Map *slave* at ``[base, base+size)``; ranges must not overlap."""
        for mapping in self._map:
            if not (base + size <= mapping.base
                    or mapping.base + mapping.size <= base):
                raise ValueError(
                    f"AHB mapping 0x{base:08x}+0x{size:x} overlaps "
                    f"'{mapping.name}'")
        self._map.append(_Mapping(base, size, slave,
                                  name or type(slave).__name__))
        self._map.sort(key=lambda mapping: mapping.base)

    def decode(self, address: int) -> _Mapping:
        for mapping in self._map:
            if mapping.contains(address):
                return mapping
        self.error_count += 1
        raise BusError(address, "no AHB slave decodes this address")

    def slave_at(self, address: int) -> AhbSlave:
        return self.decode(address).slave

    # -- transfers -------------------------------------------------------------

    def _overhead(self) -> int:
        return self.config.address_cycles + self.config.arbitration_cycles

    def read(self, address: int, size: int) -> tuple[int, int]:
        mapping = self.decode(address)
        value, waits = mapping.slave.read(address, size)
        self.transfers += 1
        self.data_beats += 1
        self.wait_states += waits
        return value, self._overhead() + 1 + waits

    def write(self, address: int, size: int, value: int) -> int:
        mapping = self.decode(address)
        waits = mapping.slave.write(address, size, value)
        self.transfers += 1
        self.data_beats += 1
        self.wait_states += waits
        return self._overhead() + 1 + waits

    def read_burst(self, address: int, nwords: int) -> tuple[list[int], int]:
        """INCR read burst of *nwords* 32-bit beats (cache line fill).

        The whole burst must target one slave (AHB bursts may not cross a
        slave boundary; the LEON cache only fills aligned lines, which the
        memory map keeps inside single devices).
        """
        if nwords < 1 or nwords > self.config.max_burst_words:
            raise ValueError(f"burst length {nwords} unsupported")
        mapping = self.decode(address)
        if not mapping.contains(address + 4 * nwords - 1):
            raise BusError(address, "burst crosses slave boundary")
        self.transfers += 1
        self.burst_transfers += 1
        self.data_beats += nwords
        native = getattr(mapping.slave, "read_burst", None)
        if native is not None:
            words, waits = native(address, nwords)
            self.wait_states += waits
            return words, self._overhead() + nwords + waits
        words = []
        waits_total = 0
        for i in range(nwords):
            word, waits = mapping.slave.read(address + 4 * i, 4)
            words.append(word)
            waits_total += waits
        self.wait_states += waits_total
        return words, self._overhead() + nwords + waits_total

    def write_burst(self, address: int, words: list[int]) -> int:
        """INCR write burst.  Slaves that cannot accept write bursts (the
        SDRAM adapter — paper §3.2 disallows them to preserve memory
        integrity) are driven with single transfers instead."""
        mapping = self.decode(address)
        native = getattr(mapping.slave, "write_burst", None)
        if native is not None and getattr(mapping.slave,
                                          "supports_write_burst", True):
            self.transfers += 1
            self.burst_transfers += 1
            self.data_beats += len(words)
            waits = native(address, words)
            self.wait_states += waits
            return self._overhead() + len(words) + waits
        cycles = 0
        for i, word in enumerate(words):
            cycles += self.write(address + 4 * i, 4, word)
        return cycles

    # -- introspection ---------------------------------------------------------

    def topology(self) -> list[dict]:
        return [
            {"name": mapping.name, "base": mapping.base, "size": mapping.size}
            for mapping in self._map
        ]
