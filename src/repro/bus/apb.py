"""AMBA APB bridge and peripheral bus (paper §2.3: "separate buses for
high speed memory access and low speed peripheral control").

The APB hangs off the AHB through :class:`ApbBridge`, which is itself an
AHB slave.  Every APB access costs a fixed setup + access penalty (the
two-cycle APB protocol) on top of the AHB transfer; APB space is
configured non-cacheable in the memory map.

Peripheral registers are word-addressed: devices implement
``read_register(offset) -> int`` and ``write_register(offset, value)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.mem.interface import BusError
from repro.utils import u32


class ApbDevice(Protocol):
    """A register-file peripheral on the APB."""

    def read_register(self, offset: int) -> int: ...

    def write_register(self, offset: int, value: int) -> None: ...


@dataclass
class _ApbMapping:
    base: int
    size: int
    device: ApbDevice
    name: str


class ApbBridge:
    """AHB slave that forwards to APB peripherals.

    *base* is the bridge's AHB base address; device offsets are relative
    to it (matching the LEON2 register map rooted at 0x8000_0000).
    """

    def __init__(self, base: int = 0x8000_0000, penalty_cycles: int = 2):
        self.base = base
        self.penalty_cycles = penalty_cycles
        self._map: list[_ApbMapping] = []
        self.accesses = 0

    def attach(self, device: ApbDevice, offset: int, size: int = 0x10,
               name: str = "") -> None:
        base = self.base + offset
        for mapping in self._map:
            if not (base + size <= mapping.base
                    or mapping.base + mapping.size <= base):
                raise ValueError(f"APB mapping at +0x{offset:x} overlaps "
                                 f"'{mapping.name}'")
        self._map.append(_ApbMapping(base, size, device,
                                     name or type(device).__name__))
        self._map.sort(key=lambda mapping: mapping.base)

    def _decode(self, address: int) -> tuple[ApbDevice, int]:
        for mapping in self._map:
            if mapping.base <= address < mapping.base + mapping.size:
                return mapping.device, address - mapping.base
        raise BusError(address, "no APB device decodes this address")

    # -- AHB slave interface ---------------------------------------------------

    def read(self, address: int, size: int) -> tuple[int, int]:
        device, offset = self._decode(address)
        self.accesses += 1
        word = u32(device.read_register(offset & ~3))
        if size == 4:
            value = word
        else:
            # Sub-word reads extract big-endian bytes from the register.
            shift = (4 - (address & 3) - size) * 8
            value = (word >> shift) & ((1 << (8 * size)) - 1)
        return value, self.penalty_cycles

    def write(self, address: int, size: int, value: int) -> int:
        device, offset = self._decode(address)
        self.accesses += 1
        if size == 4:
            device.write_register(offset & ~3, u32(value))
        else:
            word = u32(device.read_register(offset & ~3))
            shift = (4 - (address & 3) - size) * 8
            mask = ((1 << (8 * size)) - 1) << shift
            word = (word & ~mask) | ((value << shift) & mask)
            device.write_register(offset & ~3, word)
        return self.penalty_cycles

    def topology(self) -> list[dict]:
        return [
            {"name": mapping.name, "base": mapping.base, "size": mapping.size}
            for mapping in self._map
        ]
