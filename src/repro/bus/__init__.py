"""AMBA substrate: AHB backbone and APB peripheral bus."""

from repro.bus.ahb import AhbBus, AhbConfig, AhbSlave
from repro.bus.apb import ApbBridge, ApbDevice

__all__ = ["AhbBus", "AhbConfig", "AhbSlave", "ApbBridge", "ApbDevice"]
