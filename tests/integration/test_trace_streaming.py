"""Trace streaming off the FPX (Figure 1): "The high-speed network
facilitates ... the streaming of instrumented traces to the Trace
Analyzer."  The trace travels the same IP/UDP path as everything else."""

import pytest

from repro.analysis import stride_profile
from repro.control import DeviceError, DirectTransport, LiquidClient, LossyTransport
from repro.core import ArchitectureConfig, TraceAnalyzer
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.toolchain.driver import compile_c_program

KERNEL = """
unsigned count[1024];
int main(void) {
    unsigned i;
    volatile unsigned x;
    for (i = 0; i < 20000; i = i + 32) {
        x = count[i % 1024];
    }
    return 0;
}
"""


def traced_platform(dcache_size=1024, **channel):
    config = ArchitectureConfig().with_dcache_size(dcache_size) \
        .platform_config(capture_trace=True)
    platform = FPXPlatform(config)
    platform.boot()
    if channel:
        transport = LossyTransport(platform, platform.config.device_ip,
                                   platform.config.control_port,
                                   channel_config=ChannelConfig(**channel),
                                   seed=31)
    else:
        transport = DirectTransport(platform, platform.config.device_ip,
                                    platform.config.control_port)
    return platform, LiquidClient(transport)


class TestTraceStreaming:
    def test_trace_fetched_over_the_network(self):
        platform, client = traced_platform()
        client.run_image(compile_c_program(KERNEL),
                         result_addr=DEFAULT_MAP.result_addr)
        trace = client.fetch_trace()
        assert len(trace) > 1000
        # The streamed trace carries the kernel's signature stride.
        misses = trace.filter(~trace.hit)
        assert stride_profile(misses)[0][0] == 128

    def test_streamed_trace_matches_local_recorder(self):
        platform, client = traced_platform()
        client.run_image(compile_c_program(KERNEL),
                         result_addr=DEFAULT_MAP.result_addr)
        local = platform.trace_recorder.trace()
        import numpy as np
        streamed = client.fetch_trace()
        # The streamed copy may include a few extra references recorded
        # while serving the protocol; the local snapshot is a prefix.
        assert len(streamed) >= len(local) - 8
        n = min(len(local), len(streamed))
        assert np.array_equal(streamed.addresses[:n], local.addresses[:n])

    def test_analyzer_works_on_streamed_trace(self):
        """The complete remote Figure 1 loop: run remotely, stream the
        trace back, analyze, get the 4 KB recommendation."""
        platform, client = traced_platform(dcache_size=1024)
        client.run_image(compile_c_program(KERNEL),
                         result_addr=DEFAULT_MAP.result_addr)
        trace = client.fetch_trace()
        report = TraceAnalyzer(
            candidate_sizes=[1024, 2048, 4096, 8192]).analyze(trace)
        assert report.recommended_dcache_size() == 4096

    def test_trace_survives_lossy_channel(self):
        platform, client = traced_platform(loss=0.15, reorder=0.2)
        client.run_image(compile_c_program(KERNEL),
                         result_addr=DEFAULT_MAP.result_addr)
        trace = client.fetch_trace(chunk=256)
        assert len(trace) > 1000

    def test_trace_disabled_reports_error(self):
        platform = FPXPlatform()  # capture_trace defaults to off
        platform.boot()
        client = LiquidClient(DirectTransport(
            platform, platform.config.device_ip,
            platform.config.control_port))
        with pytest.raises(DeviceError):
            client.fetch_trace()

    def test_protocol_codec_roundtrip(self):
        from repro.net import protocol

        request = protocol.decode_command(
            protocol.encode_read_trace(1024, 256))
        assert (request.offset, request.length) == (1024, 256)
        response = protocol.decode_response(
            protocol.encode_trace_data(5000, 1024, b"abc"))
        assert (response.total, response.offset, response.data) == \
            (5000, 1024, b"abc")
