"""Whole-stack integration tests: the paper's flows end to end."""

import pytest

from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    Job,
    LiquidProcessorSystem,
    ReconfigurationServer,
)
from repro.control import DirectTransport, LiquidClient, LossyTransport
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.net.protocol import LeonState
from repro.toolchain.driver import SourceFile, build_image, compile_c_program
from repro.utils import s32


class TestComputationalKernels:
    """Realistic workloads through compiler + CPU + caches + protocol."""

    @pytest.fixture(scope="class")
    def system(self):
        return LiquidProcessorSystem()

    def test_crc_like_checksum(self, system):
        run = system.run_c("""
unsigned data[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                     9, 10, 11, 12, 13, 14, 15, 16};
int main(void) {
    unsigned crc = 0xFFFFFFFFu;
    for (int i = 0; i < 16; i++) {
        crc = crc ^ data[i];
        for (int bit = 0; bit < 8; bit++) {
            if (crc & 1) crc = (crc >> 1) ^ 0xEDB88320u;
            else crc = crc >> 1;
        }
    }
    return (int)(crc & 0x7FFFFFFF);
}""")
        # Independently computed reference.
        crc = 0xFFFFFFFF
        for value in range(1, 17):
            crc ^= value
            for _ in range(8):
                crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        assert run.result == crc & 0x7FFFFFFF

    def test_matrix_multiply(self, system):
        run = system.run_c("""
int a[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
int b[9] = {9, 8, 7, 6, 5, 4, 3, 2, 1};
int c[9];
int main(void) {
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++) {
            int total = 0;
            for (int k = 0; k < 3; k++)
                total += a[i * 3 + k] * b[k * 3 + j];
            c[i * 3 + j] = total;
        }
    return c[0] + c[4] + c[8];   /* trace of the product */
}""")
        a = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        b = [[9, 8, 7], [6, 5, 4], [3, 2, 1]]
        trace = sum(sum(a[i][k] * b[k][j] for k in range(3))
                    for i, j in [(0, 0), (1, 1), (2, 2)]
                    for _ in [0])  # compute c[i][j] diag
        expected = sum(sum(a[i][k] * b[k][i] for k in range(3))
                       for i in range(3))
        assert run.result == expected

    def test_string_reverse_in_memory(self, system):
        run = system.run_c("""
char buf[16] = "liquid";
int main(void) {
    int n = 0;
    while (buf[n]) n++;
    for (int i = 0; i < n / 2; i++) {
        char tmp = buf[i];
        buf[i] = buf[n - 1 - i];
        buf[n - 1 - i] = tmp;
    }
    /* checksum of reversed string, position-weighted */
    int sum = 0;
    for (int i = 0; i < n; i++) sum += buf[i] * (i + 1);
    return sum;
}""")
        reversed_text = "liquid"[::-1]
        assert run.result == sum(ord(c) * (i + 1)
                                 for i, c in enumerate(reversed_text))

    def test_sieve_of_eratosthenes(self, system):
        run = system.run_c("""
char sieve[200];
int main(void) {
    for (int i = 0; i < 200; i++) sieve[i] = 1;
    sieve[0] = sieve[1] = 0;
    for (int p = 2; p * p < 200; p++)
        if (sieve[p])
            for (int q = p * p; q < 200; q += p) sieve[q] = 0;
    int count = 0;
    for (int i = 0; i < 200; i++) count += sieve[i];
    return count;
}""")
        assert run.result == 46  # primes below 200

    def test_mixed_c_and_assembly_link(self):
        system = LiquidProcessorSystem()
        image = build_image([
            SourceFile("""
int asm_triple(int x);
int main(void) { return asm_triple(14); }
""", "c", "main.c"),
            SourceFile("""
    .global asm_triple
asm_triple:
    add %o0, %o0, %o1
    retl
    add %o1, %o0, %o0
""", "asm", "triple.s"),
        ])
        run = system.run_image(image)
        assert run.result == 42


class TestRemoteLabScenario:
    """The paper's remote-experimentation story over a bad network."""

    def test_many_programs_over_lossy_internet(self):
        platform = FPXPlatform()
        platform.boot()
        transport = LossyTransport(
            platform, platform.config.device_ip,
            platform.config.control_port,
            channel_config=ChannelConfig(loss=0.15, reorder=0.2,
                                         duplicate=0.1, corrupt=0.05),
            seed=2024)
        client = LiquidClient(transport)
        for value in (17, 23, 99):
            image = compile_c_program(
                f"int main(void) {{ return {value}; }}")
            result = client.run_image(image,
                                      result_addr=DEFAULT_MAP.result_addr)
            assert s32(result.result_word) == value

    def test_large_program_multi_packet_load(self):
        """A program big enough to need many LOAD packets."""
        platform = FPXPlatform()
        platform.boot()
        client = LiquidClient(DirectTransport(
            platform, platform.config.device_ip,
            platform.config.control_port))
        # A big initialized global makes the image span many chunks.
        values = ", ".join(str(i % 97) for i in range(600))
        image = compile_c_program(f"""
int table[600] = {{{values}}};
int main(void) {{
    int total = 0;
    for (int i = 0; i < 600; i++) total += table[i];
    return total;
}}""")
        base, blob = image.flatten()
        assert len(blob) > 1024  # really multi-chunk at 128 B/chunk
        result = client.run_image(image,
                                  result_addr=DEFAULT_MAP.result_addr)
        assert s32(result.result_word) == sum(i % 97 for i in range(600))


class TestFigure1Loop:
    """Trace → analysis → reconfigure → rerun: the complete loop."""

    def test_loop_converges_to_better_architecture(self):
        kernel = """
unsigned count[1024];
int main(void) {
    unsigned i;
    volatile unsigned x;
    for (i = 0; i < 30000; i = i + 32) {
        x = count[i % 1024];
    }
    return 0;
}
"""
        from repro.analysis.trace import TraceRecorder
        from repro.core.trace_analyzer import TraceAnalyzer

        # 1. Run instrumented on a deliberately poor configuration.
        poor = ArchitectureConfig().with_dcache_size(1024)
        system = LiquidProcessorSystem(poor)
        recorder = TraceRecorder().attach(system.platform.dcache)
        image = system.compile_c(kernel)
        baseline_run = system.run_image(image)

        # 2. Analyze the trace.
        report = TraceAnalyzer(
            candidate_sizes=[1024, 2048, 4096, 8192]).analyze(
            recorder.trace())
        assert report.recommended_dcache_size() == 4096

        # 3. Reconfigure through the server (new synthesis) and rerun.
        server = ReconfigurationServer()
        tuned = TraceAnalyzer().pick_config(poor, report)
        tuned_result = server.run_job(Job(image=image, config=tuned,
                                          name="tuned"))
        assert tuned_result.cycles < baseline_run.cycles

    def test_reconfiguration_cache_amortizes_sweep(self):
        server = ReconfigurationServer()
        image = compile_c_program("int main(void) { return 4; }")
        space = ConfigurationSpace.paper_cache_sweep()
        # First sweep pays synthesis for every point...
        for config in space:
            server.run_job(Job(image=image, config=config))
        first_ledger = server.ledger()
        assert first_ledger["cache"]["misses"] == 5
        # ...the second sweep is pure cache hits.
        for config in space:
            result = server.run_job(Job(image=image, config=config))
            assert result.seconds_synthesis == 0.0
        assert server.ledger()["cache"]["misses"] == 5
        assert server.ledger()["cache"]["hits"] >= 4
