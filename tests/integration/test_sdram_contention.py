"""SDRAM arbiter sharing: LEON vs network DMA (paper §2.4).

"This arbitration allows simultaneous use by both the LEON processor
and the network control components on the FPX."  Sharing is not free:
every port switch costs grant latency and usually a row reopen.  These
tests quantify that on an SDRAM-resident program while a modeled
network stream issues bursts on the second arbiter port.
"""

import pytest

from repro.control import DirectTransport, LiquidClient
from repro.core import ArchitectureConfig
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.toolchain.driver import SourceFile, build_image
from repro.utils import s32

pytestmark = pytest.mark.slow

SDRAM_TEXT_BASE = DEFAULT_MAP.sdram_base + 0x10_0000  # clear of DMA window

SOURCE = """
int main(void) {
    int total = 0;
    for (int i = 0; i < 400; i++) total += i ^ (i >> 1);
    return total;
}
"""


def run_with_dma(period: int):
    config = ArchitectureConfig().platform_config(net_dma_period=period)
    platform = FPXPlatform(config)
    platform.boot()
    client = LiquidClient(DirectTransport(platform,
                                          platform.config.device_ip,
                                          platform.config.control_port))
    image = build_image([SourceFile(SOURCE, "c", "app.c")],
                        text_base=SDRAM_TEXT_BASE)
    result = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
    return result, platform


class TestArbiterSharing:
    def test_network_traffic_slows_sdram_resident_code(self):
        quiet, _ = run_with_dma(0)
        busy, platform = run_with_dma(20)
        assert busy.result_word == quiet.result_word
        assert busy.cycles > quiet.cycles
        assert platform.sdram.arbitration_switches > 0

    def test_contention_scales_with_traffic(self):
        light, _ = run_with_dma(200)
        heavy, _ = run_with_dma(10)
        assert heavy.cycles >= light.cycles

    def test_sram_resident_code_unaffected(self):
        """Programs in SRAM never touch the SDRAM arbiter, so network
        DMA cannot slow them (the FPX's isolation argument)."""

        def run_sram(period):
            config = ArchitectureConfig().platform_config(
                net_dma_period=period)
            platform = FPXPlatform(config)
            platform.boot()
            client = LiquidClient(DirectTransport(
                platform, platform.config.device_ip,
                platform.config.control_port))
            image = build_image([SourceFile(SOURCE, "c", "app.c")])
            return client.run_image(image,
                                    result_addr=DEFAULT_MAP.result_addr)

        quiet = run_sram(0)
        busy = run_sram(10)
        assert busy.cycles == quiet.cycles
        assert busy.result_word == quiet.result_word

    def test_network_port_counts_in_stats(self):
        _, platform = run_with_dma(25)
        stats = platform.sdram.stats()
        assert "network" in stats["ports"]
        assert platform.sdram_net_port.requests > 0
