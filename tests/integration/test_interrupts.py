"""Interrupt delivery end to end: APB IRQ controller → IU trap → user
ISR → RETT, all in real SPARC code on the full platform."""

import pytest

from repro.mem.memmap import APB_BASE, DEFAULT_MAP, IRQCTRL_OFFSET
from repro.net.protocol import LeonState
from repro.toolchain import assemble, link
from repro.toolchain.linker import MemoryMapScript
from repro.utils import s32

IRQ_MASK = APB_BASE + IRQCTRL_OFFSET + 0x4
IRQ_FORCE = APB_BASE + IRQCTRL_OFFSET + 0x8
IRQ_CLEAR = APB_BASE + IRQCTRL_OFFSET + 0xC

# A program with its own trap table in SRAM:
#  * installs TBR -> user_table (4 KB aligned),
#  * unmasks interrupt level 3 and forces it via the APB force register,
#  * the ISR bumps a counter, clears the line, and RETTs,
#  * main counts how many interrupts it saw.
INTERRUPT_PROGRAM = f"""
    .global _start
_start:
    set user_table, %g1
    wr %g1, 0, %tbr
    nop
    nop
    nop
    set counter, %g3
    st %g0, [%g3]

    set {IRQ_MASK}, %g1              ! unmask level 3
    mov 8, %g2
    st %g2, [%g1]

    set {IRQ_FORCE}, %g1             ! force level 3 three times
    mov 8, %g2
    st %g2, [%g1]
    nop
    nop
    st %g2, [%g1]
    nop
    nop
    st %g2, [%g1]
    nop
    nop

    set counter, %g3                 ! return the ISR count
    ld [%g3], %o0
    set {DEFAULT_MAP.result_addr}, %g1
    st %o0, [%g1]

    set {IRQ_MASK}, %g1              ! mask again before exiting: the
    st %g0, [%g1]                    ! boot ROM's table has no IRQ entry
    wr %g0, 0, %tbr                  ! restore the ROM trap table so the
    nop                              ! exit syscall vectors correctly
    nop
    nop
    ta 0
    nop

! ---- interrupt service routine (trap window context) ----------------------
isr_level3:
    set counter, %l4
    ld [%l4], %l5
    inc %l5
    st %l5, [%l4]
    set {IRQ_CLEAR}, %l4             ! acknowledge: clear pending bit
    mov 8, %l5
    st %l5, [%l4]
    jmpl %l1, %g0                    ! resume the interrupted instruction
    rett %l2

! ---- user trap table (reset unused; 0x13 = interrupt level 3) -------------
    .align 4096
user_table:
    .skip {0x13 * 16}
    ba isr_level3                    ! entry 0x13
    nop
    nop
    nop
    .skip {(256 - 0x13 - 1) * 16}

    .data
counter:
    .word 0
"""


class TestInterrupts:
    def test_three_forced_interrupts_serviced(self, platform, client):
        image = link([assemble(INTERRUPT_PROGRAM)],
                     MemoryMapScript.default(DEFAULT_MAP.program_base))
        result = client.run_image(image,
                                  result_addr=DEFAULT_MAP.result_addr)
        assert platform.leon_ctrl.state == LeonState.DONE
        assert s32(result.result_word) == 3
        assert platform.cpu.trap_count >= 3 + 1  # 3 IRQs + the exit ta 0

    def test_masked_interrupts_not_delivered(self, platform, client):
        program = INTERRUPT_PROGRAM.replace(
            "mov 8, %g2\n    st %g2, [%g1]\n\n    set "
            f"{IRQ_FORCE}", f"mov 0, %g2\n    st %g2, [%g1]\n\n    set "
            f"{IRQ_FORCE}")  # mask register written with 0
        image = link([assemble(program)],
                     MemoryMapScript.default(DEFAULT_MAP.program_base))
        result = client.run_image(image,
                                  result_addr=DEFAULT_MAP.result_addr)
        assert s32(result.result_word) == 0
