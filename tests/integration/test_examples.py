"""Smoke-run every shipped example — the examples are part of the public
API surface and must keep working."""

import runpy
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "cache_tuning.py",
        "remote_lab.py",
        "custom_instruction.py",
        "instruction_profiling.py",
        "workload_browser.py",
    }
