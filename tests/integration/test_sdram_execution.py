"""Executing programs out of SDRAM — the paper's in-development path
("a SDRAM interface ... that will aid in loading an OS, such as Linux").

Programs are linked with their text at the SDRAM base, loaded over the
protocol into SDRAM through the controller's host port, dispatched via
the same mailbox, and fetched through the §3.2 AHB adapter (4-word read
bursts doing the heavy lifting on I-cache fills).
"""

import pytest

from repro.mem.memmap import DEFAULT_MAP
from repro.net.protocol import LeonState
from repro.toolchain.driver import SourceFile, build_image
from repro.utils import s32

SDRAM_TEXT_BASE = DEFAULT_MAP.sdram_base + 0x1000


def sdram_image(c_source: str):
    return build_image([SourceFile(c_source, "c", "app.c")],
                       text_base=SDRAM_TEXT_BASE)


class TestSdramExecution:
    def test_image_lands_in_sdram(self):
        image = sdram_image("int main(void) { return 5; }")
        assert DEFAULT_MAP.region_of(image.entry) == "sdram"

    def test_load_and_run_from_sdram(self, platform, client):
        image = sdram_image("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 100; i++) total += i;
    return total;
}""")
        result = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        assert s32(result.result_word) == 4950
        assert platform.leon_ctrl.state == LeonState.DONE
        # Instruction fetch really went through the SDRAM controller.
        assert platform.sdram.total_handshakes > 0

    def test_read_memory_from_sdram(self, platform, client):
        image = sdram_image("int main(void) { return 0; }")
        client.load_image(image)
        base, blob = image.flatten()
        echoed = client.read_memory(base, 16)
        assert echoed == blob[:16]

    def test_sdram_data_and_sram_results_coexist(self, platform, client):
        """Code and globals in SDRAM; the result word in SRAM (crt0)."""
        image = sdram_image("""
int table[32];
int main(void) {
    for (int i = 0; i < 32; i++) table[i] = i * 3;
    int total = 0;
    for (int i = 0; i < 32; i++) total += table[i];
    return total;
}""")
        result = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        assert s32(result.result_word) == 3 * sum(range(32))
        # table[] writes hit the adapter's RMW path.
        assert platform.sdram_adapter.rmw_writes > 0

    def test_sdram_execution_slower_than_sram(self, client, platform):
        """Same program, two homes: SDRAM execution pays handshake+CAS
        latency on every I-cache fill (why the paper needed the burst
        adapter before an OS was realistic)."""
        source = """
int main(void) {
    int total = 0;
    for (int i = 0; i < 500; i++) total += i ^ (i << 2);
    return total;
}"""
        sram_result = client.run_image(
            build_image([SourceFile(source, "c", "a.c")]),
            result_addr=DEFAULT_MAP.result_addr)
        sdram_result = client.run_image(
            sdram_image(source), result_addr=DEFAULT_MAP.result_addr)
        assert sdram_result.result_word == sram_result.result_word
        assert sdram_result.cycles > sram_result.cycles

    def test_adapter_burst_policy_matters_for_sdram_code(self):
        """The §3.2 ablation, measured on real code execution: 4-word
        read bursts vs single-word handshakes for an SDRAM-resident
        program."""
        from repro.control import DirectTransport, LiquidClient
        from repro.core import ArchitectureConfig
        from repro.fpx import FPXPlatform

        source = """
int main(void) {
    int total = 0;
    for (int i = 0; i < 300; i++) total += i;
    return total;
}"""
        image = sdram_image(source)

        def run_with_burst(words: int) -> int:
            config = ArchitectureConfig(adapter_read_burst=words)
            platform = FPXPlatform(config.platform_config())
            platform.boot()
            client = LiquidClient(DirectTransport(
                platform, platform.config.device_ip,
                platform.config.control_port))
            result = client.run_image(image,
                                      result_addr=DEFAULT_MAP.result_addr)
            return result.cycles

        assert run_with_burst(4) < run_with_burst(1)
