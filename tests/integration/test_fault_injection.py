"""Failure-injection tests: how the system degrades, not just how it works."""

import pytest

from repro.control import DeviceError, DirectTransport, LiquidClient
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net import protocol
from repro.net.packets import build_udp_packet, parse_ip, parse_udp_packet
from repro.net.protocol import LeonState
from repro.toolchain import assemble, link
from repro.toolchain.driver import compile_c_program
from repro.toolchain.linker import MemoryMapScript

pytestmark = pytest.mark.chaos

CLIENT_IP = "10.0.0.9"
CLIENT_PORT = 55000


def command_frame(platform, payload):
    return build_udp_packet(parse_ip(CLIENT_IP),
                            parse_ip(platform.config.device_ip),
                            CLIENT_PORT, platform.config.control_port,
                            payload)


def asm_image(body: str):
    return link([assemble(f"""
    .global _start
_start:
{body}
""")], MemoryMapScript.default(DEFAULT_MAP.program_base))


class TestProgramFaults:
    """Programs that crash: §4.1's error-packet debug path."""

    @pytest.mark.parametrize("body,name", [
        ("    unimp 0\n", "illegal instruction"),
        ("    set 0x40000001, %o0\n    ld [%o0 + 1], %o1\n    ta 0\n    nop",
         "misaligned load"),
        ("    set 0xF0000000, %o0\n    ld [%o0], %o1\n    ta 0\n    nop",
         "unmapped load"),
        ("    ta 0x44\n    nop", "unhandled software trap"),
    ])
    def test_faulting_programs_reach_error_state(self, platform, client,
                                                 body, name):
        image = asm_image(body)
        client.load_image(image)
        # The fault may fire while the client is still polling for the
        # START acknowledgement — the unsolicited error packet then
        # surfaces as DeviceError, which is equally a pass.
        try:
            client.start()
            platform.run_program(max_instructions=100_000)
        except DeviceError:
            pass
        assert platform.leon_ctrl.state == LeonState.ERROR, name
        status = client._request(protocol.encode_status_request(),
                                 protocol.StatusResponse, allow_error=True)
        assert status.state == LeonState.ERROR

    def test_error_state_recoverable_via_restart(self, platform, client):
        client.load_image(asm_image("    unimp 0\n"))
        try:
            client.start()
            platform.run_program(max_instructions=100_000)
        except DeviceError:
            pass
        assert platform.leon_ctrl.state == LeonState.ERROR
        client.restart()
        platform.boot()
        # A good program runs fine afterwards.
        good = compile_c_program("int main(void) { return 3; }")
        result = client.run_image(good, result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 3

    def test_runaway_program_hits_watchdog(self, platform, client):
        client.load_image(asm_image("""
spin:
    ba spin
    nop
"""))
        client.start()
        with pytest.raises(TimeoutError):
            platform.run_program(max_instructions=20_000)
        # The platform is still responsive to control traffic.
        assert client.status().state == LeonState.RUNNING


class TestProtocolFaults:
    def test_truncated_command_gets_error_response(self, platform):
        load = protocol.encode_load_chunk(0, 1, DEFAULT_MAP.program_base,
                                          b"\x00" * 16)
        platform.inject_frame(command_frame(platform, load[:6]))
        [frame] = platform.take_tx_frames()
        _, udp = parse_udp_packet(frame)
        response = protocol.decode_response(udp.payload)
        assert isinstance(response, protocol.ErrorResponse)

    def test_read_of_unmapped_memory_is_device_error(self, client):
        with pytest.raises(DeviceError):
            client.read_memory(0xEE00_0000, 4)

    def test_new_load_supersedes_half_finished_one(self, platform, client):
        # Send half of a 2-chunk program...
        first = protocol.encode_load_chunk(0, 2, DEFAULT_MAP.program_base,
                                           b"\xAA" * 16)
        platform.inject_frame(command_frame(platform, first))
        platform.take_tx_frames()
        # ...then a complete single-chunk program.
        image = compile_c_program("int main(void) { return 9; }")
        result = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 9

    def test_start_during_load_is_rejected_until_complete(self, platform):
        chunk = protocol.encode_load_chunk(0, 2, DEFAULT_MAP.program_base,
                                           b"\x00" * 16)
        platform.inject_frame(command_frame(platform, chunk))
        platform.take_tx_frames()
        platform.inject_frame(command_frame(platform,
                                            protocol.encode_start()))
        [frame] = platform.take_tx_frames()
        _, udp = parse_udp_packet(frame)
        response = protocol.decode_response(udp.payload)
        assert isinstance(response, protocol.ErrorResponse)

    def test_load_while_running_applies_after_completion(self, platform,
                                                         client):
        """Commands arriving while a program runs don't corrupt it: the
        running program finishes; the new program is used on next START."""
        slow = compile_c_program("""
int main(void) {
    int total = 0;
    for (int i = 0; i < 2000; i++) total += i;
    return total;
}""")
        client.load_image(slow)
        client.start()
        platform.step(100)  # partially executed
        # Load a different program mid-run (goes to SRAM immediately, but
        # the running program's code was already cached/fetched from its
        # own addresses — here we use a different base to avoid overlap).
        fast = link([assemble("""
    .global _start
_start:
    mov 1, %o0
    set 0x40000008, %g1
    st %o0, [%g1]
    ta 0
    nop
""")], MemoryMapScript.default(DEFAULT_MAP.program_base + 0x4000))
        client.load_image(fast)
        platform.run_program()
        assert platform.leon_ctrl.state == LeonState.DONE
        started = client.start()
        assert started.entry == DEFAULT_MAP.program_base + 0x4000
        platform.run_program()
        assert client.read_word(DEFAULT_MAP.result_addr) == 1


class TestMemorySystemFaults:
    def test_line_fill_at_sram_sdram_boundary(self, platform, client):
        """Reads near the end of SRAM must not burst past the device."""
        end = DEFAULT_MAP.sram_base + DEFAULT_MAP.sram_size
        image = asm_image(f"""
    set {end - 32}, %o0
    ld [%o0], %o1              ! last line of SRAM
    set {end - 4}, %o0
    ld [%o0], %o2              ! very last word
    ta 0
    nop
""")
        client.load_image(image)
        client.start()
        assert platform.run_program(100_000) == LeonState.DONE

    def test_sdram_write_read_cross_check(self, platform, client):
        """Sub-word SDRAM writes via the RMW adapter preserve neighbours."""
        base = DEFAULT_MAP.sdram_base
        image = asm_image(f"""
    set {base}, %o0
    set 0x11223344, %o1
    st %o1, [%o0]
    set 0x55667788, %o2
    st %o2, [%o0 + 4]
    mov 0xAA, %o3
    stb %o3, [%o0 + 5]         ! RMW of the second word
    ld [%o0], %o4
    ld [%o0 + 4], %o5
    set 0x40000008, %g1
    st %o4, [%g1]
    st %o5, [%g1 + 4]
    ta 0
    nop
""")
        client.load_image(image)
        client.start()
        platform.run_program(100_000)
        assert client.read_word(0x4000_0008) == 0x11223344
        assert client.read_word(0x4000_000C) == 0x55AA7788
