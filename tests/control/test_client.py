"""Control-software tests: client over direct and lossy transports,
listener console, servlet, hardware emulator."""

import struct

import pytest

from repro.control import (
    ControlServlet,
    DeviceError,
    DirectTransport,
    HardwareEmulator,
    LiquidClient,
    LossyTransport,
    ResponseListener,
)
from repro.fpx import FPXPlatform
from repro.mem.memmap import DEFAULT_MAP
from repro.net.channel import ChannelConfig
from repro.net.protocol import LeonState
from repro.toolchain import assemble, link
from repro.toolchain.linker import MemoryMapScript


def make_image(value=99):
    return link([assemble(f"""
    .global _start
_start:
    set {value}, %o0
    set {DEFAULT_MAP.result_addr}, %g1
    st %o0, [%g1]
    ta 0
    nop
""")], MemoryMapScript.default(DEFAULT_MAP.program_base))


class TestClientDirect:
    def test_status(self, client):
        status = client.status()
        assert status.state == LeonState.POLLING

    def test_run_image_full_flow(self, client):
        result = client.run_image(make_image(77),
                                  result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 77
        assert result.cycles > 0

    def test_read_memory_arbitrary_range(self, client):
        client.run_image(make_image(0x11223344))
        data = client.read_memory(DEFAULT_MAP.result_addr, 4)
        assert data == b"\x11\x22\x33\x44"

    def test_read_word_helper(self, client):
        client.run_image(make_image(1234))
        assert client.read_word(DEFAULT_MAP.result_addr) == 1234

    def test_restart(self, client, platform):
        client.restart()
        assert platform.leon_ctrl.state in (LeonState.RESET,
                                            LeonState.POLLING)

    def test_rerun_same_program(self, client):
        image = make_image(5)
        first = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        second = client.run_image(image, result_addr=DEFAULT_MAP.result_addr)
        assert first.result_word == second.result_word == 5

    def test_listener_records_console(self, client):
        client.status()
        lines = client.listener.console_lines()
        assert any("LEON status" in line for line in lines)

    def test_start_without_load_reports_device_error(self, platform):
        transport = DirectTransport(platform, platform.config.device_ip,
                                    platform.config.control_port)
        fresh = LiquidClient(transport)
        with pytest.raises(DeviceError):
            fresh.start()


class TestClientLossy:
    def _client(self, platform, **channel):
        transport = LossyTransport(platform, platform.config.device_ip,
                                   platform.config.control_port,
                                   channel_config=ChannelConfig(**channel),
                                   seed=123)
        return LiquidClient(transport), transport

    def test_status_over_lossy_channel(self, platform):
        client, _ = self._client(platform, loss=0.3)
        assert client.status().state == LeonState.POLLING

    def test_program_load_survives_loss_and_reorder(self, platform):
        client, transport = self._client(platform, loss=0.25, reorder=0.25,
                                         duplicate=0.1)
        result = client.run_image(make_image(42),
                                  result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 42
        stats = transport.channel_stats()
        assert stats["to_device"]["dropped"] > 0 or \
            stats["to_device"]["reordered"] > 0

    def test_corruption_rejected_by_checksums(self, platform):
        client, transport = self._client(platform, corrupt=0.3)
        result = client.run_image(make_image(9),
                                  result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 9
        # Some frames must have been corrupted on the wire and discarded.
        assert transport.to_device.corrupted + transport.to_client.corrupted \
            > 0

    def test_status_under_duplicate_and_reorder(self, platform):
        client, transport = self._client(platform, duplicate=0.6,
                                         reorder=0.4)
        for _ in range(5):
            assert client.status().state == LeonState.POLLING
        assert transport.to_client.duplicated > 0
        # The duplicated responses must have been suppressed, not
        # silently consumed by later requests.
        assert client.duplicates_suppressed + client.stale_suppressed > 0

    def test_read_memory_under_duplicate_and_reorder(self, platform):
        client, _ = self._client(platform, duplicate=0.5, reorder=0.5)
        client.run_image(make_image(0x11223344))
        addr = DEFAULT_MAP.result_addr
        # Interleave reads of different ranges: every answer must match
        # its own request even with late/duplicate MemoryData in flight.
        for _ in range(3):
            assert client.read_memory(addr, 4) == b"\x11\x22\x33\x44"
            assert client.read_memory(addr + 4, 4) is not None
            assert client.read_word(addr) == 0x11223344


class EchoStaleTransport(DirectTransport):
    """Replays every response payload it has ever delivered ahead of the
    fresh traffic — the pathological mirror of a duplicating channel."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._history = []

    def poll(self):
        fresh = super().poll()
        replay = list(self._history)
        self._history.extend(fresh)
        return replay + fresh


class TestStaleResponseAliasing:
    """Regression: a stale StatusResponse replayed by the network used
    to satisfy a *new* status request, reporting the previous state."""

    def _client(self):
        emulator = HardwareEmulator("128.252.153.2", 2000)
        transport = EchoStaleTransport(emulator, "128.252.153.2", 2000)
        return LiquidClient(transport), emulator

    def test_new_status_is_not_answered_by_an_old_one(self):
        client, emulator = self._client()
        assert client.status().state == LeonState.POLLING
        client.load_binary(0x4000_1000, bytes(range(16)), chunk=8)
        client.start(0x4000_1000)
        # The wire now replays the old POLLING status ahead of the fresh
        # answer; the request tag must reject it.
        assert client.status().state == LeonState.DONE
        assert client.duplicates_suppressed > 0

    def test_replayed_memory_data_cannot_alias_a_new_read(self):
        client, emulator = self._client()
        emulator.memory[0:4] = b"\x01\x02\x03\x04"
        base = emulator.memory_base
        assert client.read_memory(base, 4) == b"\x01\x02\x03\x04"
        emulator.memory[0:4] = b"\x0a\x0b\x0c\x0d"
        # Same address, new content: the replay of the first answer
        # passes the address predicate but not the tag check.
        assert client.read_memory(base, 4) == b"\x0a\x0b\x0c\x0d"
        assert client.duplicates_suppressed > 0

    def test_suppressed_responses_still_reach_the_console(self):
        client, _ = self._client()
        client.status()
        client.status()
        # 3 recorded: two answers plus the replay of the first (shown to
        # the operator, suppressed for request matching).
        assert len(client.listener.of_type(type(client.listener.records[0]))) \
            >= 3


class TestListenerFormat:
    """Regression: the console renderer grouped MemoryData into 4-byte
    words and dropped any trailing partial word."""

    def _memory_line(self, data, address=0x4000_0000):
        from repro.net.protocol import MemoryData

        listener = ResponseListener()
        listener.record(MemoryData(address=address, data=data))
        [line] = listener.console_lines()
        return line

    def test_trailing_partial_word_is_rendered(self):
        line = self._memory_line(b"\xaa\xbb\xcc\xdd\xee")
        assert "aabbccdd" in line
        assert "ee" in line.split("aabbccdd")[1]

    def test_short_read_is_not_hidden(self):
        line = self._memory_line(b"\x01\x02\x03")
        assert "010203" in line

    def test_exact_words_unchanged(self):
        line = self._memory_line(bytes(range(8)))
        assert "00010203 04050607" in line
        assert "..." not in line

    def test_long_reads_still_elide(self):
        line = self._memory_line(bytes(64))
        assert line.endswith("...")


class TestRetryPolicy:
    def test_rounds_back_off_exponentially(self):
        from repro.control import RetryPolicy

        policy = RetryPolicy(attempts=4, poll_rounds=4, backoff=2.0,
                             max_poll_rounds=12)
        assert [policy.rounds_for(n) for n in range(4)] == [4, 8, 12, 12]

    def test_validation(self):
        from repro.control import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(poll_rounds=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(poll_rounds=8, max_poll_rounds=4)

    def test_per_command_policy_override(self):
        from repro.control import RetryPolicy

        emulator = HardwareEmulator("128.252.153.2", 2000)
        transport = DirectTransport(emulator, "128.252.153.2", 2000)
        fast = RetryPolicy(attempts=1, poll_rounds=1, max_poll_rounds=1)
        client = LiquidClient(transport, policies={"status": fast})
        assert client.policy_for("status") is fast
        assert client.policy_for("read") is client.base_policy
        assert client.status().state == LeonState.POLLING

    def test_untagged_responses_accepted_until_tags_confirmed(self):
        """Seed-device compatibility: a device that never echoes tags
        keeps working; once tags are seen, untagged responses (except
        errors) are treated as stale."""
        from repro.net.protocol import StatusResponse

        emulator = HardwareEmulator("128.252.153.2", 2000)
        client = LiquidClient(DirectTransport(emulator, "128.252.153.2",
                                              2000))
        response = StatusResponse(LeonState.POLLING, 0)
        assert client._admit(response, None, {1})
        client._tags_confirmed = True
        assert not client._admit(response, None, {1})
        assert client.stale_suppressed == 1
        from repro.net.protocol import ErrorResponse

        assert client._admit(ErrorResponse(0x13, "crash"), None, {1})


class ChunkDroppingTransport(DirectTransport):
    """Direct transport whose wire eats the first transmission of chosen
    LOAD_PROGRAM sequence numbers (they still count as sent)."""

    def __init__(self, device, device_ip, device_port, drop_seqs=()):
        super().__init__(device, device_ip, device_port)
        self._drop = set(drop_seqs)

    def send(self, payload):
        from repro.net.protocol import Command

        frame = self._frame_for(payload)
        if payload and payload[0] == Command.LOAD_PROGRAM:
            seq = struct.unpack("!H", payload[1:3])[0]
            if seq in self._drop:
                self._drop.discard(seq)
                return
        self.device.inject_frame(frame)


class TestSelectiveRetransmission:
    """Regression: load_binary used to resend the *entire* payload set
    on every retry and to under-count nudge transmissions."""

    BASE = 0x4000_1000

    def _load(self, drop_seqs, blob=bytes(range(32)), chunk=4):
        emulator = HardwareEmulator("128.252.153.2", 2000)
        transport = ChunkDroppingTransport(emulator, "128.252.153.2", 2000,
                                           drop_seqs)
        client = LiquidClient(transport)
        transmissions = client.load_binary(self.BASE, blob, chunk)
        return transmissions, transport, emulator, blob

    def test_lossless_load_sends_each_chunk_exactly_once(self):
        transmissions, transport, emulator, blob = self._load(drop_seqs=())
        assert transmissions == 8
        assert transmissions == transport.sent_payloads
        offset = self.BASE - emulator.memory_base
        assert bytes(emulator.memory[offset:offset + len(blob)]) == blob

    def test_retry_resends_only_the_lost_chunks(self):
        transmissions, transport, emulator, blob = self._load(
            drop_seqs={3, 5})
        # 8 first-round sends + exactly the 2 lost chunks again.
        assert transmissions == 10
        offset = self.BASE - emulator.memory_base
        assert bytes(emulator.memory[offset:offset + len(blob)]) == blob

    def test_transmission_count_matches_the_wire(self):
        transmissions, transport, _, _ = self._load(drop_seqs={0, 6, 7})
        assert transmissions == transport.sent_payloads == 11

    def test_load_gives_up_when_nothing_arrives(self):
        class BlackHole(DirectTransport):
            def send(self, payload):
                self._frame_for(payload)  # swallowed

        emulator = HardwareEmulator("128.252.153.2", 2000)
        transport = BlackHole(emulator, "128.252.153.2", 2000)
        client = LiquidClient(transport, max_retries=2, poll_rounds=2)
        from repro.control import ControlTimeout

        with pytest.raises(ControlTimeout):
            client.load_binary(self.BASE, b"\x01\x02\x03\x04")


class TestTransportDropCounters:
    """Regression: _unwrap_responses silently swallowed bad frames;
    now they are counted and exposed alongside the payload counters."""

    def _transport(self, platform):
        return DirectTransport(platform, platform.config.device_ip,
                               platform.config.control_port)

    def test_corrupt_frame_counted(self, platform):
        transport = self._transport(platform)
        assert transport._unwrap_responses([b"\xde\xad\xbe\xef"]) == []
        assert transport.dropped_corrupt == 1
        assert transport.received_payloads == 0

    def test_misaddressed_frame_counted(self, platform):
        from repro.net.packets import build_udp_packet, parse_ip

        transport = self._transport(platform)
        stranger = build_udp_packet(
            transport.device_ip, parse_ip("10.0.0.1"),
            transport.device_port, 9999, b"not for us")
        assert transport._unwrap_responses([stranger]) == []
        assert transport.dropped_misaddressed == 1

    def test_stats_exposes_all_counters(self, platform):
        transport = self._transport(platform)
        stats = transport.stats()
        assert set(stats) == {"sent_payloads", "received_payloads",
                              "dropped_corrupt", "dropped_misaddressed"}

    def test_lossy_corruption_shows_up_in_drop_counter(self, platform):
        transport = LossyTransport(platform, platform.config.device_ip,
                                   platform.config.control_port,
                                   channel_config=ChannelConfig(corrupt=0.3),
                                   seed=123)
        client = LiquidClient(transport)
        result = client.run_image(make_image(9),
                                  result_addr=DEFAULT_MAP.result_addr)
        assert result.result_word == 9
        # Frames corrupted on the device->client channel must be counted,
        # not silently discarded.
        if transport.to_client.corrupted:
            assert transport.dropped_corrupt > 0
        assert transport.dropped_corrupt <= transport.to_client.corrupted


class TestServlet:
    @pytest.fixture
    def servlet(self, client):
        return ControlServlet(client)

    def test_status_action(self, servlet):
        page = servlet.handle_request({"action": "status"})
        assert page.startswith("200")
        assert "POLLING" in page

    def test_load_start_read_flow(self, servlet):
        base, blob = make_image(64).flatten()
        page = servlet.handle_request({
            "action": "load", "address": hex(base), "hex": blob.hex()})
        assert page.startswith("200")
        assert servlet.handle_request({"action": "start"}).startswith("200")
        page = servlet.handle_request({
            "action": "read", "address": hex(DEFAULT_MAP.result_addr)})
        assert page.endswith("00000040")  # 64

    def test_unknown_action(self, servlet):
        assert servlet.handle_request({"action": "nuke"}).startswith("400")

    def test_bad_request_reported(self, servlet):
        page = servlet.handle_request({"action": "load", "hex": "zz"})
        assert page.startswith("400")

    def test_console_action(self, servlet):
        servlet.handle_request({"action": "status"})
        page = servlet.handle_request({"action": "console"})
        assert "LEON status" in page

    def test_restart_action(self, servlet):
        assert servlet.handle_request({"action": "restart"}).startswith("200")


class TestHardwareEmulator:
    """The paper's Java HW emulator: protocol-compatible with the
    platform, used to debug the control software without hardware."""

    @pytest.fixture
    def emulated_client(self):
        emulator = HardwareEmulator("128.252.153.2", 2000)
        transport = DirectTransport(emulator, "128.252.153.2", 2000)
        return LiquidClient(transport), emulator

    def test_status(self, emulated_client):
        client, _ = emulated_client
        assert client.status().state == LeonState.POLLING

    def test_load_and_read_back(self, emulated_client):
        client, _ = emulated_client
        client.load_binary(0x4000_1000, b"\xca\xfe\xba\xbe")
        assert client.read_memory(0x4000_1000, 4) == b"\xca\xfe\xba\xbe"

    def test_start_completes_instantly_with_fake_cycles(self, emulated_client):
        client, emulator = emulated_client
        client.load_binary(0x4000_1000, b"\x00" * 8)
        client.start()
        status = client.status()
        assert status.state == LeonState.DONE
        assert status.cycles == emulator.fake_cycles

    def test_emulator_matches_platform_protocol(self, emulated_client):
        """Every payload the client sends must be understood by both the
        emulator and the real platform — the property that made the
        paper's emulator useful."""
        client, _ = emulated_client
        client.restart()
        client.load_binary(0x4000_1000, bytes(range(100)))
        client.start()
        client.read_memory(0x4000_1000, 16)
        # No exceptions: all five command types handled.

    def test_out_of_range_read_is_error(self, emulated_client):
        client, _ = emulated_client
        with pytest.raises(DeviceError):
            client.read_memory(0x0000_1000, 4)


class TestListener:
    def test_records_and_filters(self):
        from repro.net.protocol import LoadAck, StatusResponse
        listener = ResponseListener()
        listener.record(StatusResponse(LeonState.DONE, 5))
        listener.record(LoadAck(1, 2))
        assert len(listener) == 2
        assert len(listener.of_type(LoadAck)) == 1

    def test_console_formats_known_types(self):
        from repro.net.protocol import (
            ErrorResponse,
            MemoryData,
            Started,
            StatusResponse,
        )
        listener = ResponseListener()
        listener.record(StatusResponse(LeonState.RUNNING, 10))
        listener.record(Started(0x4000_1000))
        listener.record(MemoryData(0x4000_0008, b"\x00\x00\x00\x2a"))
        listener.record(ErrorResponse(9, "boom"))
        lines = listener.console_lines()
        assert "RUNNING" in lines[0]
        assert "0x40001000" in lines[1]
        assert "0000002a" in lines[2]
        assert "boom" in lines[3]
