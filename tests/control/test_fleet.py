"""Fleet scheduler tests: fairness, supervision, determinism, obs and
the servlet's multi-tenant actions.

The fleet is the scaled-up form of the paper's web-accessible lab: N
emulated FPX nodes behind one scheduler, sharing a reconfiguration
cache.  Chaos devices reuse the scripted fault plans from
``repro.net.faults`` — "device-down" wedges a node hard enough that
only the supervisor (invalidate + requeue + quarantine) saves its jobs.
"""

import pytest

from repro.control import ControlServlet
from repro.control.client import ControlTimeout
from repro.control.fleet import (
    ChaosClientFactory,
    FleetScheduler,
    fleet_client_factory,
    quantile,
)
from repro.core import ArchitectureConfig, Job, ReconfigurationCache
from repro.core.config import BASELINE
from repro.obs import MetricsRegistry
from repro.toolchain.driver import compile_c_program

pytestmark = pytest.mark.chaos

ALT = BASELINE.with_dcache_size(8192)


@pytest.fixture(scope="module")
def image():
    return compile_c_program("int main(void) { return 6 * 7; }")


def submit_batch(fleet, image, tenants, jobs_each, configs=(BASELINE,)):
    for tenant in tenants:
        for index in range(jobs_each):
            fleet.submit(tenant, Job(image=image,
                                     config=configs[index % len(configs)],
                                     name=f"{tenant}-{index}"))


class TestScheduling:
    def test_every_job_completes_exactly_once(self, image):
        fleet = FleetScheduler(devices=2)
        submit_batch(fleet, image, ("alice", "bob"), 4)
        results = fleet.drain()
        assert len(results) == 8
        assert all(r.result.ok for r in results)
        assert all(r.result.result_word == 42 for r in results)
        identities = {(r.tenant, r.sequence) for r in results}
        assert len(identities) == 8
        assert fleet.jobs_failed == 0 and fleet.jobs_requeued == 0

    def test_weighted_round_robin_order(self, image):
        # Weight 3 vs 1 on a single device: the rotation visits heavy
        # three times per turn of light.
        fleet = FleetScheduler(devices=1, tenant_weights={"heavy": 3})
        submit_batch(fleet, image, ("heavy", "light"), 6)
        results = fleet.drain()
        first_eight = [r.tenant for r in results[:8]]
        assert first_eight == ["heavy", "heavy", "heavy", "light"] * 2

    def test_unweighted_tenants_alternate(self, image):
        fleet = FleetScheduler(devices=1)
        submit_batch(fleet, image, ("alice", "bob"), 3)
        assert [r.tenant for r in fleet.drain()] \
            == ["alice", "bob"] * 3

    def test_priority_dispatches_first_within_tenant(self, image):
        fleet = FleetScheduler(devices=1)
        fleet.submit("t", Job(image=image, config=BASELINE, name="routine"))
        fleet.submit("t", Job(image=image, config=BASELINE, name="routine2"))
        urgent = fleet.submit("t", Job(image=image, config=BASELINE,
                                       name="urgent"), priority=5)
        results = fleet.drain()
        assert results[0].result.name == "urgent"
        assert results[0].sequence == urgent.sequence

    def test_config_affinity_batches_reconfigurations(self, image):
        # Jobs alternate architectures A,B,A,B but a single device runs
        # them A,A,B,B: exactly one reconfiguration per architecture.
        fleet = FleetScheduler(devices=1)
        submit_batch(fleet, image, ("t",), 4, configs=(BASELINE, ALT))
        results = fleet.drain()
        [device] = fleet.devices
        assert device.runtime.reconfigurations == 2
        assert device.runtime.noop_configs == 2
        assert [r.result.config_key for r in results] \
            == [BASELINE.key()] * 2 + [ALT.key()] * 2

    def test_rejects_unknown_factory_and_empty_fleet(self):
        with pytest.raises(ValueError, match="unknown devices"):
            FleetScheduler(devices=2,
                           client_factories={"fpx99": fleet_client_factory})
        with pytest.raises(ValueError, match="at least one device"):
            FleetScheduler(devices=0)


class TestSharedCache:
    def test_runtimes_share_the_fleet_cache(self):
        # Regression: `cache or ReconfigurationCache()` discarded the
        # shared cache because an *empty* cache is falsy via __len__,
        # leaving every device a private cache and the fleet ledger's
        # cache section permanently zero.
        shared = ReconfigurationCache()
        fleet = FleetScheduler(devices=3, cache=shared)
        assert fleet.cache is shared
        assert all(device.runtime.cache is shared
                   for device in fleet.devices)

    def test_tenants_reuse_each_others_bitfiles(self, image):
        fleet = FleetScheduler(devices=2)
        submit_batch(fleet, image, ("alice", "bob"), 2)
        fleet.drain()
        cache = fleet.ledger()["cache"]
        # One synthesis fleet-wide; the second device's first configure
        # is a cache hit on the other tenant's bitfile.
        assert cache["entries"] == 1
        assert cache["misses"] == 1
        assert cache["hits"] >= 1
        assert cache["seconds_saved"] > 0


def chaos_fleet(image, jobs_each=4):
    """Three devices, one of which boots wedged (device-down) twice
    before coming back merely lossy."""
    fleet = FleetScheduler(
        devices=["fpx00", "fpx01", "fpx02"],
        client_factories={"fpx02": ChaosClientFactory(
            ["device-down", "device-down", "burst-loss"], seed=11)},
        quarantine_after=2, quarantine_ticks=6)
    submit_batch(fleet, image, ("alice", "bob", "carol"), jobs_each,
                 configs=(BASELINE, ALT))
    return fleet


class TestSupervision:
    @pytest.fixture(scope="class")
    def chaos_run(self, image):
        fleet = chaos_fleet(image)
        fleet.drain()
        return fleet

    def test_no_job_is_lost_to_a_wedged_device(self, chaos_run):
        ledger = chaos_run.ledger()
        assert ledger["jobs"]["submitted"] == 12
        assert ledger["jobs"]["completed"] == 12
        assert ledger["jobs"]["failed"] == 0
        assert ledger["jobs"]["requeued"] >= 1

    def test_wedged_device_quarantined_then_recovers(self, chaos_run):
        fpx02 = chaos_run.ledger()["devices"]["fpx02"]
        assert fpx02["failures"] >= 2
        assert fpx02["quarantines"] >= 1
        assert fpx02["recoveries"] >= 1
        # After probation it rejoined with a healthy transport and did
        # real work.
        assert fpx02["jobs"] >= 1

    def test_failures_charge_backoff_on_the_device_clock(self, chaos_run):
        [fpx02] = [d for d in chaos_run.devices
                   if d.device_id == "fpx02"]
        # busy_seconds counts only completed work; the clock also
        # carries failed attempts and exponential backoff.
        assert fpx02.clock > fpx02.busy_seconds

    def test_permanently_dead_device_fails_jobs_terminally(self, image):
        fleet = FleetScheduler(
            devices=["fpx00"],
            client_factories={"fpx00": ChaosClientFactory(["device-down"],
                                                          seed=3)},
            max_job_attempts=2, quarantine_after=99)
        fleet.submit("t", Job(image=image, config=BASELINE, name="doomed"))
        [result] = fleet.drain()
        assert not result.result.ok
        assert result.attempts == 2
        assert "after 2 attempts" in result.result.error
        assert fleet.jobs_failed == 1
        assert fleet.jobs_requeued == 1

    def test_failed_probe_invalidates_the_device(self, image):
        calls = {"clients": 0}

        def flaky_status_factory(platform):
            client = fleet_client_factory(platform)
            if calls["clients"] == 0:
                # run_image itself ends with a status() call; the
                # *second* one on this client is the supervisor's probe.
                real_status = client.status
                state = {"status_calls": 0}

                def failing_status():
                    state["status_calls"] += 1
                    if state["status_calls"] >= 2:
                        raise ControlTimeout("probe: injected wedge")
                    return real_status()

                client.status = failing_status
            calls["clients"] += 1
            return client

        fleet = FleetScheduler(
            devices=["fpx00"],
            client_factories={"fpx00": flaky_status_factory},
            probe_every=1)
        submit_batch(fleet, image, ("t",), 2)
        results = fleet.drain()
        assert all(r.result.ok for r in results)
        [device] = fleet.devices
        assert device.probes >= 1
        assert device.probe_failures == 1
        # The failed probe forced a rebuild before the second job.
        assert device.runtime.reconfigurations == 2


@pytest.mark.slow
class TestDeterminism:
    def test_two_chaos_runs_are_byte_identical(self, image):
        def run():
            fleet = chaos_fleet(image, jobs_each=3)
            fleet.drain()
            return fleet.canonical_results()

        first = run()
        assert first == run()
        assert '"ok":true' in first

    def test_canonical_results_sorted_by_tenant_and_admission(self, image):
        fleet = FleetScheduler(devices=2)
        submit_batch(fleet, image, ("b", "a"), 2)
        fleet.drain()
        import json
        rows = json.loads(fleet.canonical_results())
        keys = [(row["tenant"], row["sequence"]) for row in rows]
        assert keys == sorted(keys)


class TestQuantile:
    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 1.0) == 4.0

    def test_empty_and_bounds(self):
        assert quantile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestFleetObs:
    @pytest.fixture(scope="class")
    def snapshot(self, image):
        fleet = FleetScheduler(devices=2)
        submit_batch(fleet, image, ("alice", "bob"), 2)
        fleet.drain()
        registry = MetricsRegistry()
        fleet.publish_obs(registry)
        return fleet, registry.snapshot()

    def test_totals_and_per_tenant_series(self, snapshot):
        fleet, snap = snapshot
        counters = snap["counters"]
        assert counters["fleet.jobs_submitted"] == 4
        assert counters["fleet.jobs_failed"] == 0
        assert counters["fleet.jobs_completed{tenant=alice}"] == 2
        assert counters["fleet.jobs_completed{tenant=bob}"] == 2
        assert counters["fleet.cache_misses"] == 1

    def test_latency_histograms_and_gauges(self, snapshot):
        fleet, snap = snapshot
        hist = snap["histograms"]["fleet.job_latency_seconds{tenant=alice}"]
        assert hist["count"] == 2
        gauges = snap["gauges"]
        p50 = gauges["fleet.job_latency_p50_seconds{tenant=alice}"]
        p99 = gauges["fleet.job_latency_p99_seconds{tenant=alice}"]
        assert 0 < p50 <= p99
        assert gauges["fleet.queue_depth{tenant=alice}"] == 0

    def test_device_series(self, snapshot):
        fleet, snap = snapshot
        utilizations = [snap["gauges"][f"fleet.device_utilization"
                                       f"{{device={d.device_id}}}"]
                        for d in fleet.devices]
        assert all(0.0 <= u <= 1.0 for u in utilizations)
        assert sum(snap["counters"][f"fleet.device_jobs"
                                    f"{{device={d.device_id}}}"]
                   for d in fleet.devices) == 4


class TestFleetServlet:
    @pytest.fixture()
    def fleet(self):
        return FleetScheduler(devices=1)

    @pytest.fixture()
    def servlet(self, fleet):
        return ControlServlet(fleet=fleet)

    def submit_form(self, image, tenant="web", **extra):
        [(base, blob)] = image.segments.items()
        form = {"action": "submit", "tenant": tenant,
                "address": hex(base), "hex": blob.hex(),
                "entry": hex(image.entry)}
        form.update(extra)
        return form

    def test_submit_drain_results_flow(self, servlet, fleet, image):
        page = servlet.handle_request(self.submit_form(image, name="smoke"))
        assert page.startswith("202 queued job 'smoke'")
        page = servlet.handle_request({"action": "fleet"})
        assert "queued jobs: 1" in page and "fpx00: HEALTHY" in page
        page = servlet.handle_request({"action": "drain"})
        assert page.startswith("200 drained: 1 completed, 0 failed")
        page = servlet.handle_request({"action": "results",
                                       "tenant": "web"})
        assert "web/smoke: result 0x0000002a" in page

    def test_submit_honours_priority_and_dcache(self, servlet, fleet,
                                                image):
        servlet.handle_request(self.submit_form(image, name="plain"))
        servlet.handle_request(self.submit_form(
            image, name="tuned", priority="2", dcache_size="8192"))
        fleet.drain()
        first = fleet.completed[0].result
        assert first.name == "tuned"
        assert first.config_key == BASELINE.with_dcache_size(8192).key()

    def test_fleet_actions_require_a_fleet(self, image):
        servlet = ControlServlet()
        assert servlet.handle_request({"action": "drain"}) \
            == "503 no fleet attached for action 'drain'"
        assert servlet.handle_request({"action": "status"}) \
            == "503 no device attached for action 'status'"

    def test_bad_submit_is_a_400(self, servlet):
        page = servlet.handle_request({"action": "submit",
                                       "hex": "deadbeef"})
        assert page.startswith("400 bad request")
