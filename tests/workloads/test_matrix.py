"""sweep_matrix: self-checked workload x config sweeps, deterministic
through the ResultCache."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    ArchitectureConfig,
    ConfigurationSpace,
    ResultCache,
    SweepRunner,
)
from repro.workloads import get

WORKLOADS = [get("crc32"), get("strsearch")]


def small_space() -> ConfigurationSpace:
    space = ConfigurationSpace(ArchitectureConfig())
    space.add_dimension("dcache_size", [1024, 4096])
    return space


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("matrix")


@pytest.fixture(scope="module")
def outcome(cache_dir):
    cache = ResultCache(cache_dir)
    return SweepRunner(cache=cache).sweep_matrix(WORKLOADS, small_space())


class TestMatrixShape:
    def test_one_cell_per_pair(self, outcome):
        assert len(outcome.cells) == len(WORKLOADS) * small_space().size
        assert outcome.workloads() == [w.name for w in WORKLOADS]
        assert len(outcome.config_keys()) == small_space().size

    def test_every_cell_self_checked(self, outcome):
        assert outcome.failed_checks() == []
        for cell in outcome.cells:
            assert cell.check_ok
            assert cell.wclass == get(cell.workload).wclass

    def test_winners_cover_every_workload_and_class(self, outcome):
        by_workload = outcome.winner_by_workload()
        assert set(by_workload) == {w.name for w in WORKLOADS}
        by_class = outcome.winner_by_class()
        assert set(by_class) == {w.wclass for w in WORKLOADS}
        for key in by_class.values():
            assert key in outcome.config_keys()

    def test_report_text_names_everything(self, outcome):
        text = outcome.report_text()
        for workload in WORKLOADS:
            assert workload.name in text
        assert "per-class winners" in text
        assert "CHECK-FAILED" not in text


class TestMatrixDeterminism:
    def test_rerun_is_all_cache_hits_and_byte_identical(
            self, outcome, cache_dir):
        rerun = SweepRunner(cache=ResultCache(cache_dir)).sweep_matrix(
            WORKLOADS, small_space())
        assert rerun.stats.simulated == 0
        assert rerun.stats.cache_hits == rerun.stats.points
        assert rerun.canonical_json() == outcome.canonical_json()

    def test_canonical_json_is_stable(self, outcome):
        first = outcome.canonical_json()
        assert first == outcome.canonical_json()
        report = json.loads(first)
        assert report["metric"] == "seconds"
        assert len(report["cells"]) == len(outcome.cells)
        for cell in report["cells"]:
            assert cell["check_ok"] is True

    def test_failing_check_is_reported_not_hidden(self, tmp_path):
        class Wrong:
            """A workload whose reference model lies."""
            name = "crc32_wrong"
            wclass = "dsp"

            def image(self, seed=0):
                return get("crc32").image(seed)

            def check(self, result_word, seed=0):
                return False

        outcome = SweepRunner(cache=ResultCache(tmp_path)).sweep_matrix(
            [Wrong()], small_space())
        assert len(outcome.failed_checks()) == small_space().size
        assert "CHECK-FAILED" in outcome.report_text()

    def test_empty_matrix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one workload"):
            SweepRunner(cache=ResultCache(tmp_path)).sweep_matrix(
                [], small_space())
