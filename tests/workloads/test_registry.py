"""Registry invariants and both-engine self-checks.

The registry's promise to its consumers (difftest, sweep_matrix, CI):
enough diverse workloads to make the per-class winner question
meaningful, deterministic generation, and a self-check that passes on
both execution engines — no golden files anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.space import DIMENSION_SETTERS
from repro.workloads import (
    CLASSES,
    DEFAULT_SEED,
    REGISTRY,
    Workload,
    all_workloads,
    by_class,
    get,
    register,
)

WORKLOADS = all_workloads()
IDS = [w.name for w in WORKLOADS]


class TestRegistryShape:
    def test_enough_workloads_and_classes(self):
        # ISSUE acceptance floor: >= 6 workloads spanning >= 4 classes.
        assert len(WORKLOADS) >= 6
        assert len(by_class()) >= 4

    def test_classes_and_axes_are_declared(self):
        for workload in WORKLOADS:
            assert workload.wclass in CLASSES
            assert workload.sweep_axis in DIMENSION_SETTERS
            assert workload.description

    def test_get_and_registration_order(self):
        # all_workloads() preserves registration order but hides the
        # long-running sampling kernels; get() still reaches everything.
        assert [w.name for w in WORKLOADS] == [
            name for name in REGISTRY if not get(name).long_running]
        for name in REGISTRY:
            assert get(name).name == name
        for workload in WORKLOADS:
            assert get(workload.name) is workload
        with pytest.raises(KeyError, match="unknown workload"):
            get("no_such_kernel")

    def test_register_rejects_bad_metadata(self):
        def dummy(workload_cls="crypto", axis="dcache_size", name="tmp"):
            return Workload(
                name=name, wclass=workload_cls, description="d",
                sweep_axis=axis, generate=lambda s: {},
                render=lambda d: "int main(void) { return 0; }",
                reference=lambda d: 0, footprint=lambda d: 0)

        with pytest.raises(ValueError, match="unknown workload class"):
            register(dummy(workload_cls="graphics"))
        with pytest.raises(ValueError, match="unknown sweep axis"):
            register(dummy(axis="branch_predictor"))
        with pytest.raises(ValueError, match="duplicate"):
            register(dummy(name=WORKLOADS[0].name))


class TestDeterminism:
    @pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
    def test_generation_is_deterministic(self, workload):
        assert workload.input_for(7) == workload.input_for(7)
        assert workload.c_source(7) == workload.c_source(7)
        assert workload.expected(7) == workload.expected(7)

    @pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
    def test_seeds_change_the_input(self, workload):
        assert workload.input_for(0) != workload.input_for(1)

    @pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
    def test_footprint_is_positive(self, workload):
        assert workload.footprint_bytes() > 0


class TestSelfChecks:
    @pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
    def test_functional_engine(self, workload):
        result = workload.self_check(engine="functional", seed=DEFAULT_SEED)
        assert result.ok, result.describe()
        assert result.instructions > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
    def test_accurate_engine(self, workload):
        result = workload.self_check(engine="accurate", seed=DEFAULT_SEED)
        assert result.ok, result.describe()
        assert result.cycles >= result.instructions

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            WORKLOADS[0].self_check(engine="rtl")

    def test_check_rejects_missing_and_wrong_results(self):
        workload = WORKLOADS[0]
        assert not workload.check(None)
        assert not workload.check(workload.expected() ^ 1)
        assert workload.check(workload.expected())
