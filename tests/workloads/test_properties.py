"""Property tests: random inputs through the whole stack.

For every registry workload, hypothesis draws input seeds; each seed is
generated, rendered to C, compiled by the in-repo toolchain, executed
on the functional engine, and the RESULT word compared against the
pure-Python reference model.  Any divergence is a bug somewhere in
generator/compiler/engine — and the shrunk failing program is written
as a full assembly listing into ``tests/difftest/corpus/``, where
``test_corpus_replays`` keeps replaying it forever once committed.

``derandomize=True``: the drawn seeds are a pure function of the test,
so CI and local runs explore the same inputs (the workloads' own
seeded generators provide the actual input entropy).
"""

from __future__ import annotations

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.toolchain.cc import compile_c
from repro.toolchain.driver import crt0_source
from repro.utils import u32
from repro.workloads import all_workloads

CORPUS = pathlib.Path(__file__).parent.parent / "difftest" / "corpus"

WORKLOADS = all_workloads()
IDS = [w.name for w in WORKLOADS]


def _record_failure(workload, seed: int) -> pathlib.Path:
    """Write the failing program as a self-contained corpus listing.

    crt0 + compiled kernel is exactly what ``compile_c_program`` links,
    flattened to one assembly file so the difftest corpus replayer
    (which builds with ``with_crt0=False``, entry ``_start``) picks it
    up with no knowledge of the workload registry.
    """
    listing = crt0_source() + "\n" + compile_c(workload.c_source(seed))
    CORPUS.mkdir(exist_ok=True)
    path = CORPUS / f"shrunk_workload_{workload.name}.s"
    header = (f"! workload '{workload.name}' seed {seed}: "
              f"RESULT != reference model\n"
              f"! regenerate: repro.workloads.get"
              f"('{workload.name}').c_source({seed})\n")
    path.write_text(header + listing)
    return path


@pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=6, deadline=None, derandomize=True)
def test_random_inputs_match_reference(workload, seed):
    result = workload.self_check(engine="functional", seed=seed)
    if not result.ok:
        path = _record_failure(workload, seed)
        pytest.fail(f"{result.describe()}\nlisting written to {path} — "
                    f"commit it to the regression corpus")
    assert u32(result.result_word) == workload.expected(seed)


@pytest.mark.parametrize("workload", WORKLOADS, ids=IDS)
@given(seed=st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=6, deadline=None, derandomize=True)
def test_inputs_are_compilable_and_bounded(workload, seed):
    """Generated sources always compile, and the declared footprint
    metadata stays truthful for every seed, not just seed 0."""
    image = workload.image(seed)
    assert image.entry
    assert workload.footprint_bytes(seed) > 0
