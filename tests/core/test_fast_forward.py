"""Two-speed execution through the public surfaces:
``Simulator.run(fast_forward=...)`` and ``SweepRunner.sweep(...,
fast_forward=...)``.

The contract under test: the *measured window* of a fast-forwarded run
is byte-identical no matter how the machine reached the window — cold
accurate warmup, functional warmup, or a restored checkpoint — and the
sweep engine builds one warmed checkpoint per (image, arch_key) family
and reuses it everywhere, including across processes and from disk.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ArchitectureConfig
from repro.core.sim import Simulator
from repro.core.sweep import ResultCache, SweepRunner
from repro.obs.collect import simulator_snapshot
from repro.toolchain.driver import compile_c_program

pytestmark = pytest.mark.slow

#: Big enough that WARMUP leaves a substantial measured window (the
#: loop retires ~43k instructions; warmup covers only the first 3k).
WORKLOAD = """
unsigned data[256];
int main(void) {
    unsigned i, sum = 0;
    for (i = 0; i < 1200; i++) { sum += data[i & 255] + i; data[i & 255] = sum; }
    return (int)sum;
}
"""
WARMUP = 3_000


@pytest.fixture(scope="module")
def image():
    return compile_c_program(WORKLOAD)


def _canonical(report) -> str:
    """The identity-relevant fields of a SimReport (fastpath provenance
    deliberately excluded — it describes *how*, not *what*)."""
    return json.dumps({
        "cycles": report.cycles, "instructions": report.instructions,
        "mix": report.instruction_mix, "dcache": report.dcache,
        "icache": report.icache, "result_word": report.result_word,
        "uart": report.uart_output.hex(), "obs": report.obs,
    }, sort_keys=True, default=str)


class TestSimulatorFastForward:
    def test_warmup_engine_does_not_change_the_window(self, image):
        fast = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="fast")
        accurate = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="accurate")
        translated = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP, warmup_engine="translated")
        assert _canonical(fast) == _canonical(accurate)
        assert _canonical(translated) == _canonical(accurate)
        # the window must be substantial, or this test proves nothing
        assert fast.instructions > 10_000
        assert fast.fastpath["warmup_engine"] == "fast"
        assert accurate.fastpath["warmup_engine"] == "accurate"
        assert translated.fastpath["warmup_engine"] == "translated"

    def test_translated_checkpoint_matches_functional(self, image):
        """checkpoint() now warms on the translated engine by default;
        the captured state must be byte-identical to a functional warmup
        of the same depth, and the block cache must actually have run."""
        warm_t = Simulator(capture_memory_trace=False)
        state_t = warm_t.checkpoint(image, WARMUP)
        warm_f = Simulator(capture_memory_trace=False)
        state_f = warm_f.checkpoint(image, WARMUP, warmup_engine="fast")
        assert state_t == state_f
        assert warm_t.fastpath_blocks_translated > 0
        assert warm_t.fastpath_blocks_executed > 0
        assert warm_f.fastpath_blocks_translated == 0

    def test_checkpoint_restore_reproduces_the_window(self, image):
        direct = Simulator(capture_memory_trace=False).run(
            image, fast_forward=WARMUP)
        warm = Simulator(capture_memory_trace=False)
        state = warm.checkpoint(image, WARMUP)
        resumed = Simulator(capture_memory_trace=False).run(
            from_checkpoint=state)
        assert _canonical(resumed) == _canonical(direct)
        assert resumed.fastpath["warmup_engine"] == "checkpoint"

    def test_fast_forward_past_program_end(self, image):
        """A warmup budget larger than the whole program parks at the
        polling loop; the measured window is then empty but well-formed."""
        report = Simulator(capture_memory_trace=False).run(
            image, fast_forward=10_000_000)
        assert report.instructions == 0
        assert report.fastpath["warmup_instructions"] > 0

    def test_fast_forward_zero_is_the_seed_behavior(self, image):
        cold = Simulator(capture_memory_trace=False).run(image)
        explicit = Simulator(capture_memory_trace=False).run(
            image, fast_forward=0)
        assert _canonical(cold) == _canonical(explicit)
        assert cold.fastpath == {} and explicit.fastpath == {}

    def test_negative_fast_forward_rejected(self, image):
        with pytest.raises(ValueError):
            Simulator(capture_memory_trace=False).run(
                image, fast_forward=-1)

    def test_bad_warmup_engine_rejected(self, image):
        with pytest.raises(ValueError):
            Simulator(capture_memory_trace=False).run(
                image, fast_forward=10, warmup_engine="quantum")

    def test_obs_exposes_fastpath_counters(self, image):
        sim = Simulator(capture_memory_trace=False)
        report = sim.run(image, fast_forward=WARMUP)
        # window deltas exist in the report's schema...
        assert "fastpath.instructions" in report.obs["counters"]
        assert "fastpath.handoffs" in report.obs["counters"]
        # ...and the simulator totals show the warmup actually ran fast
        totals = simulator_snapshot(sim)["counters"]
        assert totals["fastpath.instructions"] > 0
        assert totals["fastpath.handoffs"] == 1
        assert totals["fastpath.checkpoint_captures"] == 0

    def test_obs_exposes_block_cache_counters(self, image):
        sim = Simulator(capture_memory_trace=False)
        sim.run(image, fast_forward=WARMUP, warmup_engine="translated")
        totals = simulator_snapshot(sim)["counters"]
        assert totals["fastpath.blocks_translated"] > 0
        assert totals["fastpath.blocks_executed"] > 0
        assert totals["fastpath.blocks_invalidated"] >= 0


class TestSweepFastForward:
    CONFIGS = [ArchitectureConfig().with_dcache_size(size)
               for size in (1024, 4096)]

    def test_one_checkpoint_serves_the_arch_family(self, image, tmp_path):
        cache = ResultCache(tmp_path)
        outcome = SweepRunner(cache=cache).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        # both configs share nwindows/extensions -> one checkpoint
        assert outcome.stats.checkpoints_built == 1
        assert outcome.stats.simulated == 2
        assert cache.stats.checkpoint_stores == 1

    def test_rerun_is_entirely_cached(self, image, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        runner.sweep(self.CONFIGS, image, fast_forward=WARMUP)
        again = runner.sweep(self.CONFIGS, image, fast_forward=WARMUP)
        assert again.stats.simulated == 0
        assert again.stats.checkpoints_built == 0
        assert again.stats.cache_hits == 2

    def test_checkpoint_survives_on_disk(self, image, tmp_path):
        first = SweepRunner(cache=ResultCache(tmp_path)).sweep(
            [self.CONFIGS[0]], image, fast_forward=WARMUP)
        # fresh runner+cache, results wiped from memory: the point is
        # served from disk; force a re-simulation of a sibling config to
        # prove the *checkpoint* comes back from disk too.
        cache = ResultCache(tmp_path)
        second = SweepRunner(cache=cache).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        assert second.stats.checkpoints_built == 0
        assert second.stats.checkpoint_hits == 1
        assert second.stats.simulated == 1  # only the sibling config
        assert (second.points[0].canonical_json()
                == first.points[0].canonical_json())

    def test_serial_and_parallel_agree(self, image):
        serial = SweepRunner(workers=0).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        parallel = SweepRunner(workers=2).sweep(
            self.CONFIGS, image, fast_forward=WARMUP)
        for a, b in zip(serial.points, parallel.points):
            assert a.canonical_json() == b.canonical_json()

    def test_windowed_and_whole_program_never_collide(self, image,
                                                      tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache)
        windowed = runner.sweep([self.CONFIGS[0]], image,
                                fast_forward=WARMUP)
        whole = runner.sweep([self.CONFIGS[0]], image)
        assert whole.stats.simulated == 1  # not served from the ff entry
        assert (windowed.points[0].fingerprint
                != whole.points[0].fingerprint)
        assert windowed.points[0].fingerprint.endswith(f"-ff{WARMUP}")

    def test_windowed_points_match_direct_runs(self, image):
        outcome = SweepRunner().sweep(self.CONFIGS, image,
                                      fast_forward=WARMUP)
        for config, point in zip(self.CONFIGS, outcome.points):
            direct = Simulator(config, capture_memory_trace=False).run(
                image, fast_forward=WARMUP)
            assert point.cycles == direct.cycles
            assert point.instructions == direct.instructions
            assert point.uart_hex == direct.uart_output.hex()

    def test_negative_fast_forward_rejected(self, image):
        with pytest.raises(ValueError):
            SweepRunner().sweep(self.CONFIGS, image, fast_forward=-5)
